"""Figure 23 (future work, implemented here as an extension): factoring
common field suffixes out of multiple headers saves TCAM entries — the
packet-format/parser co-optimization the paper says no existing compiler
performs."""

from __future__ import annotations

from repro.core import compile_spec
from repro.core.extensions import (
    equivalent_modulo_renaming,
    factor_common_suffixes,
)
from repro.harness.table3 import TOFINO
from repro.ir import parse_spec

FIG23 = """
header f0 { f00 : 4; common : 4; }
header f1 { f01 : 4; common : 4; }
header n  { x : 2; }
parser Fig23 {
    state start {
        extract(f0.f00);
        transition select(lookahead(1)) {
            1 : parse_f0_common;
            default : parse_f1;
        }
    }
    state parse_f0_common {
        extract(f0.common);
        transition select(f0.common) {
            0x3 : nextv0; 0x7 : nextv0; 0xB : nextv1; default : accept;
        }
    }
    state parse_f1 { extract(f1.f01); transition parse_f1_common; }
    state parse_f1_common {
        extract(f1.common);
        transition select(f1.common) {
            0x3 : nextv0; 0x7 : nextv0; 0xB : nextv1; default : accept;
        }
    }
    state nextv0 { extract(n.x); transition accept; }
    state nextv1 { transition reject; }
}
"""


def test_fig23_factoring(benchmark, report):
    spec = parse_spec(FIG23)

    def run():
        factored = factor_common_suffixes(spec)
        before = compile_spec(spec, TOFINO)
        after = compile_spec(factored.spec, TOFINO)
        return factored, before, after

    factored, before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    assert factored.changed
    assert before.ok and after.ok
    assert after.num_entries < before.num_entries
    assert equivalent_modulo_renaming(spec, factored, samples=200)
    text = (
        "Figure 23 extension: common-suffix factoring\n"
        f"  original program:  {before.num_entries} TCAM entries\n"
        f"  factored program:  {after.num_entries} TCAM entries\n"
        f"  factored states:   {factored.factored_groups}"
    )
    report("fig23_extension", text)
    print()
    print(text)
