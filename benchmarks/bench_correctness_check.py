"""§7.1 correctness validation: the Figure 22 random-simulation check plus
the bmv2/Scapy-style packet-delivery test on the byte-accurate
Ethernet-IPv4-TCP parser."""

from __future__ import annotations

from repro.harness import run_correctness_check


def test_correctness_check(benchmark, report):
    def run():
        return run_correctness_check(samples=300)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.random_check_passed
    assert result.delivered_to_target
    assert result.wrong_ip_dropped
    assert result.non_ip_dropped
    text = (
        "Correctness check (Figure 22 + bmv2-style packet test)\n"
        f"  random simulation: {result.random_samples} samples, "
        f"passed={result.random_check_passed}\n"
        f"  TCP to 10.0.0.2 delivered: {result.delivered_to_target}\n"
        f"  TCP to wrong IP dropped:   {result.wrong_ip_dropped}\n"
        f"  non-IP packet dropped:     {result.non_ip_dropped}"
    )
    report("correctness", text)
    print()
    print(text)
