"""Figure 4: the motivating example on devices A (2-bit key window) and B
(4-bit window) — synthesis (V2) vs the two-phase heuristic pipeline (V1,
represented by DPParserGen)."""

from __future__ import annotations

import pytest

from repro.harness import run_fig4

_RESULTS = []


@pytest.mark.parametrize("device_index", [0, 1], ids=["deviceB", "deviceA"])
def test_fig4_device(benchmark, device_index):
    def run():
        return run_fig4()[device_index]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    assert result.parserhawk_entries > 0
    if result.heuristic_entries > 0:
        assert result.parserhawk_entries <= result.heuristic_entries


def test_fig4_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 4: V2 (ParserHawk) vs V1 (heuristic two-phase)"]
    for r in _RESULTS:
        heuristic = (
            str(r.heuristic_entries)
            if not r.heuristic_rejected
            else r.heuristic_rejected
        )
        lines.append(
            f"  {r.device} (key<={r.key_limit} bits): "
            f"ParserHawk={r.parserhawk_entries} entries, "
            f"heuristic={heuristic} entries"
        )
    text = "\n".join(lines)
    report("fig4", text)
    print()
    print(text)
    by_dev = {r.device: r for r in _RESULTS}
    # The narrow device blows the heuristic's entry count up (6 vs 10 in
    # the paper; the ratio is what must hold).
    assert by_dev["device A"].heuristic_entries > (
        by_dev["device B"].heuristic_entries
    )
    assert by_dev["device A"].parserhawk_entries < (
        by_dev["device A"].heuristic_entries
    )
