"""Figure 5 / §3.2.2: two writings of the same semantics.  The
phase-decoupled baselines depend on the writing style; ParserHawk's output
is identical for both (it only sees the semantics)."""

from __future__ import annotations

import pytest

from repro.harness import run_fig5

_RESULTS = []


@pytest.mark.parametrize("style_index", [0, 1], ids=["Sol1", "Sol2"])
def test_fig5_style(benchmark, style_index):
    def run():
        return run_fig5()[style_index]

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS.append(result)
    assert result.parserhawk_entries > 0


def test_fig5_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Figure 5: writing-style (in)sensitivity"]
    for r in _RESULTS:
        lines.append(
            f"  {r.writing_style}: {r.spec_rule_count} spec rules -> "
            f"ParserHawk {r.parserhawk_entries} entries"
        )
    text = "\n".join(lines)
    report("fig5", text)
    print()
    print(text)
    entries = {r.parserhawk_entries for r in _RESULTS}
    assert len(entries) == 1, "ParserHawk must be style-invariant"
    assert len({r.spec_rule_count for r in _RESULTS}) == 2
