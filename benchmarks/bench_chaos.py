"""Chaos soak: a serve fleet under kill/pause/fault churn.

PR 8 scaled ``repro serve`` out to a lease-coordinated fleet
(``repro fleet``): N server processes sharing one spool root, with
heartbeats, fencing tokens, job reclamation and a restart supervisor.
This benchmark is the fleet's gate, and like ``bench_serve.py`` it
measures invariants first:

1. **Targeted reclaim + fencing** (deterministic choreography).  Worker
   A runs a deliberately slow multi-iteration CEGIS compile (injected
   per-solve stalls), is SIGSTOP'd once its checkpoint holds recorded
   counterexamples, and worker B must steal the expired lease, resume
   from the checkpoint (``cegis_replayed > 0`` — reclaimed work
   continues, it doesn't restart cold) and finish the job.  When A is
   SIGCONT'd it finishes its zombie attempt and its terminal write must
   be **fenced** into a no-op (``serve.fencing_rejected``), leaving
   exactly one terminal transition in the audit log.
2. **Random chaos** (seeded RNG).  A real ``repro fleet`` subprocess
   serves a duplicate-heavy workload while the harness SIGKILLs and
   SIGSTOP/SIGCONTs random workers and the workers chew injected
   ``serve.worker``/``serve.journal`` faults.  Gates: every acked job
   reaches a terminal journal state (zero lost), no job ever records
   two conflicting terminal transitions, and every ``done`` result is
   byte-identical to a direct in-process compile.

Usage::

    python benchmarks/bench_chaos.py [--quick] [--check]
        [--output BENCH_chaos.json] [--soak-seconds 60] [--seed 3]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen import all_base_specs  # noqa: E402
from repro.core.compiler import ParserHawkCompiler  # noqa: E402
from repro.hw.device import tofino_profile  # noqa: E402
from repro.persist.serialize import program_to_doc  # noqa: E402
from repro.serve import (  # noqa: E402
    JobJournal,
    SpoolClient,
    TERMINAL_STATES,
    make_job,
    read_fleet_pids,
)

# Fast-compiling specs for the random-chaos phase (duplicates coalesce;
# per-wave seeds force fresh compile keys).
WORKLOAD = [
    "parse_ethernet",
    "parse_mpls",
    "multi_key_diff",
    "pure_extraction",
    "lookahead_tag",
]

FLEET_INJECT = "serve.worker:WorkerCrash:6,serve.journal:PoolBroken:4"

LEASE_TTL = 1.0


def _env() -> Dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = "0"
    return env


def start_serve_worker(
    root: Path,
    owner_id: str,
    *,
    inject: Optional[str] = None,
    workers: int = 1,
) -> subprocess.Popen:
    cmd = [
        sys.executable, "-m", "repro", "serve", str(root),
        "--workers", str(workers),
        "--owner-id", owner_id,
        "--lease-ttl", str(LEASE_TTL),
    ]
    if inject:
        cmd += ["--inject", inject]
    return subprocess.Popen(
        cmd, env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def checkpointed_cex_count(root: Path) -> int:
    """Counterexamples durably recorded under the service's per-key
    checkpoint directories (the resume payload a thief replays)."""
    total = 0
    for path in (root / "ckpt").glob("**/checkpoint.json"):
        try:
            doc = json.loads(path.read_text())
            total += sum(
                len(budget["cex"])
                for arm in doc["payload"]["arms"].values()
                for budget in arm["budgets"].values()
            )
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return total


def wait_until(predicate, timeout: float, poll: float = 0.1) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(poll)
    return predicate()


def owner_counters(client: SpoolClient, owner: str) -> Dict[str, Any]:
    doc = client.fleet_metrics().get(owner) or {}
    return doc.get("counters", {})


# ----------------------------------------------------------------------
# Phase 1: targeted SIGSTOP steal — reclaim with resume, stale writer
# fenced.
# ----------------------------------------------------------------------
def run_targeted(args: argparse.Namespace) -> Dict[str, Any]:
    root = Path(args.dir).resolve() / "targeted"
    root.mkdir(parents=True, exist_ok=True)
    client = SpoolClient(root)
    device = tofino_profile()
    source = all_base_specs()["parse_icmp"].to_source()
    report: Dict[str, Any] = {"phase": "targeted"}

    # Worker A crawls: every SAT solve stalls, so the multi-iteration
    # CEGIS run leaves a comfortable window to pause it mid-compile.
    a = start_serve_worker(
        root, "chaos-a", inject="sat.solve:hang=0.35:*"
    )
    b: Optional[subprocess.Popen] = None
    stopped = False
    try:
        req = client.submit(
            source, device,
            options={"directed_seed_tests": False, "seed": args.seed},
        )
        ack = client.wait_ack(req, timeout=60.0)
        report["accepted"] = bool(ack and ack.get("accepted"))
        if not report["accepted"]:
            return report

        # Wait for recorded CEGIS progress, then stop A cold.
        report["checkpoint_seen"] = wait_until(
            lambda: checkpointed_cex_count(root) >= 1, timeout=120.0
        )
        os.kill(a.pid, signal.SIGSTOP)
        stopped = True

        # B steals the expired lease and resumes from the checkpoint.
        b = start_serve_worker(root, "chaos-b")
        job = client.wait_job(req, timeout=300.0)
        report["job_state"] = job.state if job else "missing"
        report["reclaims"] = job.reclaims if job else 0
        report["final_owner"] = job.lease_owner if job else None
        stats = (job.result_doc or {}).get("stats", {}) if job else {}
        report["cegis_replayed"] = int(stats.get("cegis_replayed", 0))

        # Resume A: its zombie attempt finishes and must be fenced.
        os.kill(a.pid, signal.SIGCONT)
        stopped = False
        report["stale_writer_fenced"] = wait_until(
            lambda: owner_counters(client, "chaos-a").get(
                "serve.fencing_rejected", 0
            ) >= 1,
            timeout=300.0,
        )

        journal = JobJournal(root / "journal")
        rows = [
            r for r in journal.terminal_log_entries() if r[0] == req
        ]
        report["terminal_rows"] = [
            {"state": r[1], "token": r[2], "owner": r[3]} for r in rows
        ]
        report["ok"] = (
            report["job_state"] == "done"
            and report["reclaims"] >= 1
            and report["final_owner"] == "chaos-b"
            and report["cegis_replayed"] > 0
            and report["stale_writer_fenced"]
            and len(rows) == 1
            and rows[0][3] == "chaos-b"
        )
        return report
    finally:
        if stopped:
            os.kill(a.pid, signal.SIGCONT)
        client.request_stop()
        for proc in (a, b):
            if proc is None:
                continue
            try:
                proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=30)


# ----------------------------------------------------------------------
# Phase 2: random chaos against a real `repro fleet`.
# ----------------------------------------------------------------------
def submit_wave(
    client: SpoolClient, device, seed: int, copies: int
) -> Dict[str, Dict[str, Any]]:
    specs = all_base_specs()
    requests: Dict[str, Dict[str, Any]] = {}
    for name in WORKLOAD:
        source = specs[name].to_source()
        options = {"seed": seed}
        for copy in range(copies):
            rid = client.submit(
                source, device,
                tenant=f"tenant-{copy % 2}", options=options,
            )
            requests[rid] = {
                "spec": name, "source": source, "options": dict(options),
            }
    return requests


def collect_acks(
    client: SpoolClient,
    requests: Dict[str, Dict[str, Any]],
    timeout: float,
) -> None:
    deadline = time.monotonic() + timeout
    for rid, info in requests.items():
        if info.get("ack", {}) and info["ack"].get("accepted"):
            continue
        info["ack"] = client.wait_ack(
            rid, timeout=max(1.0, deadline - time.monotonic())
        )


def resubmit_rejected(
    client: SpoolClient,
    requests: Dict[str, Dict[str, Any]],
    timeout: float,
) -> int:
    """Honor retry-after acks until everything is accepted or the
    window closes (fleet restarts make transient rejections normal)."""
    retries = 0
    device = tofino_profile()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pending = [
            (rid, info) for rid, info in requests.items()
            if info.get("ack") is not None
            and not info["ack"].get("accepted")
            and not info["ack"].get("permanent")
        ]
        # Requests with no ack at all (worker died pre-ack) are simply
        # re-spooled under the same req_id: the protocol is idempotent.
        pending += [
            (rid, info) for rid, info in requests.items()
            if info.get("ack") is None
        ]
        if not pending:
            break
        for rid, info in pending:
            ack = info.get("ack") or {}
            time.sleep(min(1.0, float(ack.get("retry_after", 0.2))))
            (client.acks / f"{rid}.json").unlink(missing_ok=True)
            client.submit(
                info["source"], device,
                options=info["options"], req_id=rid,
            )
            retries += 1
            info["ack"] = client.wait_ack(
                rid, timeout=max(1.0, deadline - time.monotonic())
            )
    return retries


def run_chaos(args: argparse.Namespace) -> Dict[str, Any]:
    root = Path(args.dir).resolve() / "fleet"
    root.mkdir(parents=True, exist_ok=True)
    client = SpoolClient(root)
    device = tofino_profile()
    rng = random.Random(args.seed)
    report: Dict[str, Any] = {
        "phase": "chaos",
        "workers": args.workers,
        "inject": FLEET_INJECT,
    }

    fleet = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet", str(root),
            "--workers", str(args.workers),
            "--threads", "1",
            "--lease-ttl", str(LEASE_TTL),
            "--restart-budget", "64",
            "--drain-timeout", "60",
            "--inject", FLEET_INJECT,
        ],
        env=_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    kills = stops = 0
    requests: Dict[str, Dict[str, Any]] = {}
    try:
        if not wait_until(
            lambda: len(read_fleet_pids(root)) >= args.workers,
            timeout=60.0,
        ):
            report["error"] = "fleet never came up"
            return report

        t0 = time.monotonic()
        wave = 0
        stopped_pid: Optional[int] = None
        stopped_at = 0.0
        while time.monotonic() - t0 < args.soak_seconds:
            wave += 1
            fresh = submit_wave(
                client, device, seed=args.seed + wave,
                copies=2 if args.quick else 3,
            )
            requests.update(fresh)
            collect_acks(client, fresh, timeout=20.0)

            # One chaos action per wave, seeded: kill or pause a
            # random worker.  A paused worker outlives its lease TTL,
            # so its jobs are stolen and its late writes fenced.
            pids = read_fleet_pids(root)
            if stopped_pid is not None and (
                time.monotonic() - stopped_at > 2.5 * LEASE_TTL
            ):
                try:
                    os.kill(stopped_pid, signal.SIGCONT)
                except ProcessLookupError:
                    pass
                stopped_pid = None
            if pids:
                owner = rng.choice(sorted(pids))
                victim = pids[owner]
                if rng.random() < 0.5:
                    try:
                        os.kill(victim, signal.SIGKILL)
                        kills += 1
                    except ProcessLookupError:
                        pass
                elif stopped_pid is None:
                    try:
                        os.kill(victim, signal.SIGSTOP)
                        stopped_pid = victim
                        stopped_at = time.monotonic()
                        stops += 1
                    except ProcessLookupError:
                        pass
            time.sleep(2.0)
        if stopped_pid is not None:
            try:
                os.kill(stopped_pid, signal.SIGCONT)
            except ProcessLookupError:
                pass

        # Chaos over: let the fleet catch up, resubmitting anything
        # that was rejected or never acked during the churn.
        collect_acks(client, requests, timeout=60.0)
        report["client_retries"] = resubmit_rejected(
            client, requests, timeout=120.0
        )
        acked = {
            rid: info for rid, info in requests.items()
            if info.get("ack") and info["ack"].get("accepted")
        }
        report["submitted"] = len(requests)
        report["accepted"] = len(acked)
        # A permanent rejection under pure fault churn is always a bug
        # (every chaos spec is valid): surface them for diagnosis.
        report["permanent_rejections"] = [
            {"req_id": rid, "reason": info["ack"].get("reason", "")}
            for rid, info in requests.items()
            if info.get("ack") and not info["ack"].get("accepted")
            and info["ack"].get("permanent")
        ]
        report["kills"] = kills
        report["stops"] = stops

        wait_deadline = time.monotonic() + (300 if args.quick else 600)
        lost: List[str] = []
        for rid in acked:
            job = client.wait_job(
                rid, timeout=max(1.0, wait_deadline - time.monotonic())
            )
            acked[rid]["job"] = job
            if job is None or job.state not in TERMINAL_STATES:
                lost.append(rid)
        report["lost_jobs"] = lost
    finally:
        client.request_stop()
        try:
            fleet.wait(timeout=120)
        except subprocess.TimeoutExpired:
            fleet.kill()
            fleet.wait(timeout=30)

    # Invariant: no job ever records two conflicting terminal states.
    journal = JobJournal(root / "journal")
    terminal_states: Dict[str, set] = {}
    for job_id, state, _token, _owner in journal.terminal_log_entries():
        terminal_states.setdefault(job_id, set()).add(state)
    conflicts = sorted(
        jid for jid, states in terminal_states.items() if len(states) > 1
    )
    report["terminal_log_jobs"] = len(terminal_states)
    report["conflicting_terminals"] = conflicts

    # Reclamation actually happened under chaos (jobs changed hands).
    reclaimed = [
        rid for rid, info in requests.items()
        if info.get("job") is not None and info["job"].reclaims > 0
    ]
    report["reclaimed_jobs"] = len(reclaimed)

    # Answer fidelity: every done, non-degraded result byte-identical
    # to a direct in-process compile (one per compile key).
    divergent: List[str] = []
    checked = 0
    truth_cache: Dict[str, str] = {}
    for rid, info in requests.items():
        job = info.get("job")
        if job is None or job.state != "done" or job.degraded:
            continue
        if job.compile_key not in truth_cache:
            probe = make_job(
                info["source"], device, options=info["options"]
            )
            result = ParserHawkCompiler(probe.build_options()).compile(
                probe.build_spec(), probe.build_device()
            )
            truth_cache[job.compile_key] = json.dumps(
                {
                    "status": result.status,
                    "program": (
                        program_to_doc(result.program)
                        if result.program is not None
                        else None
                    ),
                },
                sort_keys=True,
            )
        doc = job.result_doc or {}
        served = json.dumps(
            {
                "status": doc.get("status"),
                "program": doc.get("program"),
            },
            sort_keys=True,
        )
        if served != truth_cache[job.compile_key]:
            divergent.append(rid)
        checked += 1
    report["results_checked"] = checked
    report["divergent_results"] = divergent
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--output", default="BENCH_chaos.json")
    parser.add_argument("--dir", default="chaos-soak")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument(
        "--soak-seconds", type=float, default=None,
        help="random-chaos window (default: 25 with --quick, 60 without)",
    )
    parser.add_argument(
        "--skip-targeted", action="store_true",
        help="run only the random-chaos phase (debug aid)",
    )
    args = parser.parse_args(argv)
    if args.soak_seconds is None:
        args.soak_seconds = 25.0 if args.quick else 60.0

    report: Dict[str, Any] = {
        "bench": "chaos_soak",
        "quick": args.quick,
        "seed": args.seed,
        "lease_ttl": LEASE_TTL,
    }
    t0 = time.monotonic()
    if not args.skip_targeted:
        report["targeted"] = run_targeted(args)
    report["chaos"] = run_chaos(args)
    report["elapsed_seconds"] = round(time.monotonic() - t0, 2)

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures: List[str] = []
    targeted = report.get("targeted")
    if targeted is not None and not targeted.get("ok"):
        failures.append(
            "targeted reclaim/fencing phase failed: "
            + json.dumps(
                {
                    k: targeted.get(k)
                    for k in (
                        "job_state", "reclaims", "final_owner",
                        "cegis_replayed", "stale_writer_fenced",
                        "terminal_rows",
                    )
                }
            )
        )
    chaos = report["chaos"]
    if chaos.get("error"):
        failures.append(f"chaos phase: {chaos['error']}")
    if chaos.get("accepted", 0) < chaos.get("submitted", 1):
        failures.append(
            f"only {chaos.get('accepted')}/{chaos.get('submitted')} "
            "chaos requests were ever accepted"
        )
    if chaos.get("permanent_rejections"):
        failures.append(
            f"permanent rejections: {chaos['permanent_rejections']}"
        )
    if chaos.get("lost_jobs"):
        failures.append(f"lost acked jobs: {chaos['lost_jobs']}")
    if chaos.get("conflicting_terminals"):
        failures.append(
            "conflicting terminal transitions: "
            f"{chaos['conflicting_terminals']}"
        )
    if chaos.get("divergent_results"):
        failures.append(
            f"results diverged: {chaos['divergent_results']}"
        )
    if chaos.get("results_checked", 0) == 0:
        failures.append("no done results to verify")
    if chaos.get("kills", 0) == 0 and chaos.get("stops", 0) == 0:
        failures.append("chaos loop never actually disturbed a worker")

    if failures:
        for line in failures:
            print(f"CHECK FAIL: {line}", file=sys.stderr)
        return 1 if args.check else 0
    print(
        "CHECK OK: zero lost jobs, no conflicting terminals, "
        "reclaim resumed from checkpoints, stale writers fenced",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
