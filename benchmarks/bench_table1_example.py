"""Table 1 / Figure 7: the Spec1/Spec2 worked examples."""

from __future__ import annotations

import pytest

from repro.harness import run_table1_examples

_RESULTS = []


def test_table1_examples(benchmark, report):
    results = benchmark.pedantic(run_table1_examples, rounds=1, iterations=1)
    _RESULTS.extend(results)
    by_name = {r.name: r for r in results}
    # Spec1's unconditional chain collapses to one row; Spec2 needs the
    # conditional pair plus the exit (Table 1's three rows).
    assert by_name["Spec1"].entries == 1
    assert by_name["Spec2"].entries == 3
    lines = ["Table 1: Spec1/Spec2 TCAM rows"]
    for r in results:
        lines.append(f"  {r.name}: {r.entries} entries")
        for row in r.rows:
            lines.append(f"    {row}")
    text = "\n".join(lines)
    report("table1", text)
    print()
    print(text)
