"""Work-stealing portfolio benchmark: worker sweep, schedule A/B, and
single-stream parity (PR 9).

PR 9 broke the fixed arm-per-future portfolio into migratable
(arm, budget-slice) work units executed by long-lived workers that steal
units when idle, with counterexamples shared over a topic-addressed bus.
This benchmark sweeps the worker axis (1/2/4/8) over seeded Table-3 rows
through the steal scheduler and records wall clocks, winners, and the
scheduler's own counters (units dispatched / stolen / migrated, bus
prunes).  ``--check`` gates the invariants that must hold on *any*
machine:

* every compile in the sweep succeeds, and the winner's status and
  resource counts are identical at every worker count and under
  ``--schedule=static`` — the scheduler is not allowed to change
  answers;
* multi-worker walls stay within a bounded overhead envelope of the
  single-stream wall (catches slicing/IPC pathologies);
* with ``--baseline-tree`` (a git worktree of the pre-PR-9 commit), the
  single-stream path stays within ``SINGLE_STREAM_LIMIT`` of the old
  tree, measured by an interleaved same-machine fresh-subprocess A/B.

**Why wall-clock speedup is recorded but not gated.**  The sweep's
geomean speedup at the top worker count is recorded in the summary, but
a ≥ N× gate would be dishonest on this suite: measured per-arm solo
times across all 29 Table-3 rows (Tofino and IPU, default and ablated
options) show the priority-0 arm — full device key budget — is always
the *cheapest* valid arm; tighter-key arms are equal or strictly harder.
The sequential path runs arms best-priority-first and exits on the first
valid winner, so its wall is already the single-arm optimum, and any
racing schedule must pay at least that arm's CPU.  Racing buys
robustness (a fallback when an arm's cost inverts or a tight arm is
infeasible) and answer-preserving scale-out, not wall-clock on rows
whose cheapest arm is also the most preferred.  On machines with real
cores the sweep degrades gracefully toward speedup ≈ 1.0; on a
single-core box it measures the (gated) overhead envelope.

Usage::

    python benchmarks/bench_steal.py [--quick] [--check]
        [--output BENCH_pr9.json] [--seed 11] [--baseline-tree PATH]

``--quick`` (CI scaling-smoke) sweeps 1 and 4 workers over the fast
rows with one repetition; the full run sweeps 1/2/4/8 workers, adds the
heavier rows, and takes the median of two repetitions.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen.suites import benchmark_by_label  # noqa: E402
from repro.core import portfolio_compile  # noqa: E402
from repro.core.options import CompileOptions  # noqa: E402
from repro.harness.table3 import TOFINO  # noqa: E402
from repro.obs import Tracer, use_tracer  # noqa: E402

# Rows whose arms ALL terminate quickly (≤ 2 s solo, measured).  This
# matters beyond bench duration: a static ``ProcessPoolExecutor`` cannot
# interrupt a running task, so ``shutdown(cancel_futures=True)`` leaves
# any in-flight slow arm grinding until its own budget expires — and a
# straggler from row N poisons every wall clock measured during row N+1
# (dramatically so on a single-core box).  Rows with infeasible-hard
# arms (e.g. "Sai V1", "Sai V2") belong in the equivalence *tests*,
# where only answers matter, not in a timing harness.
QUICK_SUITE = [
    "Parse icmp",
    "Geneve tunnel",
    "Multi-keys (diff pkt fields) -R5",
    "Dash V2",
]
# Extra rows for the full run: a 4-arm unrolled-loop row and the row
# with the widest measured arm-cost spread among all-terminating rows
# (key<=4 arms ~20x the key<=8 arms, opposite winners' entry counts —
# exercises the winner broadcast racing genuinely different layouts).
FULL_EXTRA = [
    "Parse MPLS +unroll",
    "Multi-keys (diff pkt fields)",
]

QUICK_WORKERS = [1, 4]
FULL_WORKERS = [1, 2, 4, 8]

# Multi-worker wall-clock envelope vs the same row's single-stream wall.
# On a single-core box the steal race round-robins every arm until the
# winner lands, so the wall is bounded by (#arms × winner wall) plus the
# fixed cost of spawning workers and the bus manager; the envelope
# catches slicing/IPC pathologies (e.g. thrashing micro-slices), not
# scheduling shape.
OVERHEAD_FACTOR = 8.0
OVERHEAD_CONST_SECONDS = 30.0

# Single-stream (workers=1) geomean wall vs the pre-PR-9 tree.
SINGLE_STREAM_LIMIT = 1.05

SCHEDULER_COUNTERS = (
    "portfolio.units_dispatched",
    "portfolio.units_stolen",
    "portfolio.units_migrated",
    "bus.pruned",
)


def _effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


# Per-compile budget.  Every suite arm solves in ≤ 2 s solo, so 60 s is
# ample headroom even racing on one core — and it bounds the lifetime
# of any straggler the quiescence barrier has to wait out.
ROW_BUDGET_SECONDS = 60


def _options(workers: int, seed: int, schedule: str = "steal",
             ) -> CompileOptions:
    return CompileOptions(
        parallel_workers=workers,
        schedule=schedule,
        seed=seed,
        total_max_seconds=ROW_BUDGET_SECONDS,
    )


def _quiesce(timeout: float = 75.0) -> bool:
    """Wait until every child process of this interpreter has exited.

    ``portfolio_compile`` can return while losing arms are still
    grinding in pool workers (a running task cannot be cancelled);
    measuring the next configuration against that background load
    corrupts its wall clock.  Returns False on timeout."""
    import multiprocessing

    deadline = time.monotonic() + timeout
    while multiprocessing.active_children():
        if time.monotonic() > deadline:
            return False
        time.sleep(0.1)
    return True


def _compile(label: str, workers: int, seed: int, schedule: str,
             reps: int) -> Dict[str, Any]:
    spec = benchmark_by_label(label).spec()
    walls: List[float] = []
    result = None
    counters: Dict[str, int] = {}
    for _ in range(reps):
        tracer = Tracer()
        t0 = time.monotonic()
        with use_tracer(tracer):
            result = portfolio_compile(
                spec, TOFINO, _options(workers, seed, schedule)
            )
        walls.append(time.monotonic() - t0)
        _quiesce()
        snapshot = tracer.registry.snapshot()
        counters = {
            k: snapshot.get(k, 0) for k in SCHEDULER_COUNTERS
        }
    return {
        "status": result.status,
        "wall_seconds": round(statistics.median(walls), 4),
        "wall_all": [round(w, 4) for w in walls],
        "entries": result.num_entries if result.program else None,
        "stages": result.num_stages if result.program else None,
        "counters": counters,
    }


def _answer(row: Dict[str, Any]) -> tuple:
    return (row["status"], row["entries"], row["stages"])


# Child script for the same-machine single-stream A/B: one warm-up
# compile, then the median of three timed compiles (the suite's rows
# are sub-second, where a single sample is scheduler-jitter-dominated).
# Fresh interpreter per rep so neither tree's module caches leak.
_AB_CHILD = r'''
import json, statistics, sys, time
sys.path.insert(0, sys.argv[1] + "/src")
from repro.benchgen.suites import benchmark_by_label
from repro.core import portfolio_compile
from repro.core.options import CompileOptions
from repro.harness.table3 import TOFINO
label, seed = sys.argv[2], int(sys.argv[3])
spec = benchmark_by_label(label).spec()
def opts():
    return CompileOptions(parallel_workers=1, seed=seed,
                          total_max_seconds=60)
portfolio_compile(spec, TOFINO, opts())  # warm-up (imports, pyc)
walls = []
for _ in range(3):
    t0 = time.perf_counter()
    result = portfolio_compile(spec, TOFINO, opts())
    walls.append(time.perf_counter() - t0)
print(json.dumps({
    "wall": statistics.median(walls),
    "status": result.status,
    "entries": result.num_entries if result.program else None,
    "stages": result.num_stages if result.program else None,
}))
'''


def _run_single_stream_ab(baseline_tree: Path, suite: List[str],
                          seed: int, reps: int) -> Dict[str, Any]:
    """Interleaved A/B of the workers=1 path against a pre-PR-9
    checkout on this machine: alternating fresh-subprocess compiles so
    both trees see the same load profile."""
    import subprocess

    _quiesce()   # no sweep stragglers may leak into the A/B walls
    trees = {"pr9": str(REPO_ROOT), "baseline": str(baseline_tree)}
    walls: Dict[str, Dict[str, List[float]]] = {
        t: {label: [] for label in suite} for t in trees
    }
    answers: Dict[str, Dict[str, Any]] = {t: {} for t in trees}
    for _rep in range(reps):
        for label in suite:
            for tree, path in trees.items():
                proc = subprocess.run(
                    [sys.executable, "-c", _AB_CHILD, path, label,
                     str(seed)],
                    capture_output=True, text=True, check=True)
                doc = json.loads(proc.stdout.strip().splitlines()[-1])
                walls[tree][label].append(doc["wall"])
                answers[tree][label] = (
                    doc["status"], doc["entries"], doc["stages"])
    cases = []
    logs: List[float] = []
    for label in suite:
        wb = walls["baseline"][label]
        w9 = walls["pr9"][label]
        overhead = statistics.median(w9) / statistics.median(wb)
        logs.append(math.log(max(overhead, 1e-9)))
        cases.append({
            "case": label,
            "baseline_walls": [round(w, 4) for w in wb],
            "pr9_walls": [round(w, 4) for w in w9],
            "overhead": round(overhead, 4),
            "same_answer": answers["baseline"][label]
            == answers["pr9"][label],
        })
        print(
            f"{label:30s} baseline={statistics.median(wb):6.2f}s "
            f"pr9={statistics.median(w9):6.2f}s x{overhead:.3f}",
            flush=True,
        )
    return {
        "baseline_tree": str(baseline_tree),
        "reps": reps,
        "cases": cases,
        "geomean_overhead": round(
            math.exp(sum(logs) / len(logs)), 4),
        "same_answers": all(c["same_answer"] for c in cases),
    }


def run_bench(quick: bool = False, seed: int = 11,
              baseline_tree: Optional[Path] = None) -> Dict[str, Any]:
    reps = 1 if quick else 2
    suite = QUICK_SUITE if quick else QUICK_SUITE + FULL_EXTRA
    workers = QUICK_WORKERS if quick else FULL_WORKERS
    top = max(workers)
    rows = []
    for label in suite:
        row: Dict[str, Any] = {"case": label, "sweep": {}}
        for w in workers:
            row["sweep"][str(w)] = _compile(label, w, seed, "steal", reps)
        row["static"] = _compile(label, top, seed, "static", reps)
        single = row["sweep"]["1"]
        fastest = row["sweep"][str(top)]
        row["speedup_top"] = round(
            single["wall_seconds"] / fastest["wall_seconds"]
            if fastest["wall_seconds"] else 0.0, 4)
        row["answers_identical"] = all(
            _answer(cfg) == _answer(single)
            for cfg in list(row["sweep"].values()) + [row["static"]]
        )
        row["overhead_ok"] = all(
            cfg["wall_seconds"]
            <= OVERHEAD_FACTOR * single["wall_seconds"]
            + OVERHEAD_CONST_SECONDS
            for cfg in row["sweep"].values()
        )
        sweep_walls = " ".join(
            f"{w}w={row['sweep'][str(w)]['wall_seconds']:6.2f}s"
            for w in workers
        )
        print(
            f"{label:30s} {sweep_walls} "
            f"static@{top}={row['static']['wall_seconds']:6.2f}s "
            f"x{row['speedup_top']:.2f} "
            f"stolen={row['sweep'][str(top)]['counters'].get('portfolio.units_stolen', 0)}",
            flush=True,
        )
        rows.append(row)
    logs = [
        math.log(max(r["speedup_top"], 1e-9)) for r in rows
    ]
    single_stream = (
        _run_single_stream_ab(baseline_tree, suite, seed, reps)
        if baseline_tree is not None else None
    )
    top_counters = {
        k: sum(r["sweep"][str(top)]["counters"].get(k, 0) for r in rows)
        for k in SCHEDULER_COUNTERS
    }
    report = {
        "bench": "bench_steal",
        "pr": 9,
        "quick": quick,
        "seed": seed,
        "reps": reps,
        "effective_cores": _effective_cores(),
        "worker_counts": workers,
        "rows": rows,
        "single_stream_ab": single_stream,
        "summary": {
            "geomean_speedup_top": round(
                math.exp(sum(logs) / len(logs)), 4),
            "top_workers": top,
            "all_ok": all(
                cfg["status"] == "ok"
                for r in rows
                for cfg in list(r["sweep"].values()) + [r["static"]]
            ),
            "answers_identical": all(r["answers_identical"] for r in rows),
            "overhead_ok": all(r["overhead_ok"] for r in rows),
            "units_stolen_total": top_counters["portfolio.units_stolen"],
            "units_dispatched_total": top_counters[
                "portfolio.units_dispatched"],
            "single_stream_overhead": (
                single_stream["geomean_overhead"]
                if single_stream is not None else None
            ),
            "speedup_gate": (
                "recorded, not gated: the priority-0 arm is the cheapest "
                "valid arm on every measured Table-3 row, so the "
                "sequential first-winner exit is already wall-clock "
                "optimal; gates cover answer identity, the overhead "
                "envelope, and single-stream parity instead"
            ),
        },
    }
    return report


def check_report(report: Dict[str, Any]) -> List[str]:
    """Acceptance assertions; returns a list of failure strings."""
    s = report["summary"]
    failures = []
    if not s["all_ok"]:
        bad = [
            (r["case"], name, cfg["status"])
            for r in report["rows"]
            for name, cfg in list(r["sweep"].items())
            + [("static", r["static"])]
            if cfg["status"] != "ok"
        ]
        failures.append(f"non-ok compiles in the sweep: {bad}")
    if not s["answers_identical"]:
        bad = [r["case"] for r in report["rows"]
               if not r["answers_identical"]]
        failures.append(
            f"winner status/resources changed across worker counts or "
            f"schedules: {bad}"
        )
    if not s["overhead_ok"]:
        bad = [r["case"] for r in report["rows"] if not r["overhead_ok"]]
        failures.append(
            f"multi-worker wall exceeded the overhead envelope "
            f"({OVERHEAD_FACTOR}x single + {OVERHEAD_CONST_SECONDS}s): "
            f"{bad}"
        )
    if s["units_dispatched_total"] <= 0:
        failures.append(
            "steal scheduler dispatched no units at the top worker count"
        )
    single = report.get("single_stream_ab")
    if single is not None:
        if single["geomean_overhead"] > SINGLE_STREAM_LIMIT:
            failures.append(
                f"single-stream geomean x{single['geomean_overhead']:.3f} "
                f"vs the baseline tree exceeds x{SINGLE_STREAM_LIMIT}"
            )
        if not single["same_answers"]:
            failures.append(
                "single-stream answers differ from the baseline tree"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="1/4-worker sweep, fast rows only (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless acceptance criteria hold")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the JSON report here")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--baseline-tree", type=Path, default=None,
        help="pre-PR-9 checkout for the single-stream parity A/B "
             "(git worktree add --detach /tmp/pr8repo <pre-PR9-sha>)")
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, seed=args.seed,
                       baseline_tree=args.baseline_tree)
    print()
    print(json.dumps(report["summary"], indent=2))
    if args.output:
        args.output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.output}")
    if args.check:
        failures = check_report(report)
        if failures:
            print("\nCHECK FAILURES:")
            for f in failures:
                print(f"  - {f}")
            return 1
        print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
