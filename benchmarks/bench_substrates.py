"""Throughput microbenchmarks for the substrates (not paper experiments,
but useful to track the reproduction's own performance): the CDCL solver,
the reference simulator, the implementation simulator and packet
crafting."""

from __future__ import annotations

import random

from repro.benchgen import benchmark_by_label
from repro.core import compile_spec
from repro.harness.table3 import TOFINO
from repro.ir import Bits, parse_spec, simulate_spec
from repro.packets import Ether, IPv4, TCP
from repro.smt.sat import SatSolver, lit


def test_sat_solver_php5(benchmark):
    """Pigeonhole(5) UNSAT proof throughput."""

    def run():
        n = 5
        s = SatSolver()
        for p in range(n + 1):
            s.add_clause([lit(p * n + h) for h in range(n)])
        for h in range(n):
            for p1 in range(n + 1):
                for p2 in range(p1 + 1, n + 1):
                    s.add_clause(
                        [lit(p1 * n + h, False), lit(p2 * n + h, False)]
                    )
        assert s.solve() is False

    benchmark(run)


def test_spec_simulator_throughput(benchmark):
    spec = benchmark_by_label("Sai V2").spec()
    rng = random.Random(0)
    inputs = [Bits(rng.getrandbits(48), 48) for _ in range(50)]

    def run():
        for bits in inputs:
            simulate_spec(spec, bits)

    benchmark(run)


def test_impl_simulator_throughput(benchmark):
    spec = benchmark_by_label("Parse Ethernet").spec()
    program = compile_spec(spec, TOFINO).program
    rng = random.Random(0)
    inputs = [Bits(rng.getrandbits(32), 32) for _ in range(50)]

    def run():
        for bits in inputs:
            program.simulate(bits)

    benchmark(run)


def test_packet_crafting_throughput(benchmark):
    def run():
        pkt = Ether() / IPv4(dst=0x0A000002) / TCP()
        return pkt.to_bytes()

    benchmark(run)
