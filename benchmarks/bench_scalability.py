"""§8 scalability observation: compile time grows steeply with spec
complexity (state count / search-space size).

The paper notes "an exponential increase of compilation time when the
parser spec becomes more complex" and proposes divide-and-conquer as
future work.  This sweep compiles synthetic layered parsers of growing
state count and records the trend (it must be monotone-ish and the search
space strictly growing)."""

from __future__ import annotations

import pytest

from repro.core import compile_spec
from repro.harness.table3 import TOFINO

SIZES = [2, 3, 4, 6]

_RESULTS = []


def chain_spec(num_states: int):
    """A deterministic dispatch chain: state i keys on its own 4-bit field
    with two exact arms (continue / accept) plus a default reject."""
    from repro.ir import parse_spec

    lines = []
    fields = "; ".join(f"f{i} : 4" for i in range(num_states))
    lines.append(f"header h {{ {fields}; }}")
    lines.append(f"parser Scale{num_states} {{")
    for i in range(num_states):
        name = "start" if i == 0 else f"s{i}"
        succ = f"s{i + 1}" if i + 1 < num_states else "accept"
        lines.append(f"    state {name} {{")
        lines.append(f"        extract(h.f{i});")
        lines.append(f"        transition select(h.f{i}) {{")
        lines.append(f"            {5 + i} : {succ};")
        lines.append(f"            {10 + i} : accept;")
        lines.append("            default : reject;")
        lines.append("        }")
        lines.append("    }")
    lines.append("}")
    return parse_spec("\n".join(lines))


@pytest.mark.parametrize("num_states", SIZES)
def test_scalability_sweep(benchmark, num_states):
    spec = chain_spec(num_states)

    def run():
        return compile_spec(spec, TOFINO)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.message
    _RESULTS.append(
        (num_states, result.stats.total_seconds,
         result.stats.search_space_bits, result.num_entries)
    )


def test_scalability_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_RESULTS) == len(SIZES)
    lines = ["Scalability sweep (synthetic layered parsers, Tofino profile)",
             "  states | compile (s) | search space (bits) | entries"]
    for states, seconds, bits, entries in _RESULTS:
        lines.append(
            f"  {states:6d} | {seconds:11.2f} | {bits:19d} | {entries}"
        )
    text = "\n".join(lines)
    report("scalability", text)
    print()
    print(text)
    # The search space grows monotonically with the chain length.
    bits = [b for _s, _t, b, _e in _RESULTS]
    assert bits == sorted(bits) and bits[-1] > bits[0]
