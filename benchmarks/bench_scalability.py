"""§8 scalability observation: compile time grows steeply with spec
complexity (state count / search-space size).

The paper notes "an exponential increase of compilation time when the
parser spec becomes more complex" and proposes divide-and-conquer as
future work.  This sweep compiles synthetic layered parsers of growing
state count and records the trend (it must be monotone-ish and the search
space strictly growing).

A second sweep scales the *worker* axis: the same Table-3 rows compiled
through the work-stealing portfolio at 1/2/4/8 workers.  Its invariant
is correctness, not speed (this harness may run on a single core): the
winner's status and resource counts must be identical at every worker
count — the scheduler is not allowed to change answers.  Wall clocks
are recorded in the report for machines where the sweep is meaningful;
``benchmarks/bench_steal.py`` is the dedicated scheduler benchmark
(worker sweep, steal-vs-static A/B, overhead envelope, single-stream
parity against the pre-PR-9 tree)."""

from __future__ import annotations

import pytest

from repro.core import CompileOptions, compile_spec, portfolio_compile
from repro.harness.table3 import TOFINO

SIZES = [2, 3, 4, 6]

_RESULTS = []


def chain_spec(num_states: int):
    """A deterministic dispatch chain: state i keys on its own 4-bit field
    with two exact arms (continue / accept) plus a default reject."""
    from repro.ir import parse_spec

    lines = []
    fields = "; ".join(f"f{i} : 4" for i in range(num_states))
    lines.append(f"header h {{ {fields}; }}")
    lines.append(f"parser Scale{num_states} {{")
    for i in range(num_states):
        name = "start" if i == 0 else f"s{i}"
        succ = f"s{i + 1}" if i + 1 < num_states else "accept"
        lines.append(f"    state {name} {{")
        lines.append(f"        extract(h.f{i});")
        lines.append(f"        transition select(h.f{i}) {{")
        lines.append(f"            {5 + i} : {succ};")
        lines.append(f"            {10 + i} : accept;")
        lines.append("            default : reject;")
        lines.append("        }")
        lines.append("    }")
    lines.append("}")
    return parse_spec("\n".join(lines))


@pytest.mark.parametrize("num_states", SIZES)
def test_scalability_sweep(benchmark, num_states):
    spec = chain_spec(num_states)

    def run():
        return compile_spec(spec, TOFINO)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.message
    _RESULTS.append(
        (num_states, result.stats.total_seconds,
         result.stats.search_space_bits, result.num_entries)
    )


def test_scalability_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_RESULTS) == len(SIZES)
    lines = ["Scalability sweep (synthetic layered parsers, Tofino profile)",
             "  states | compile (s) | search space (bits) | entries"]
    for states, seconds, bits, entries in _RESULTS:
        lines.append(
            f"  {states:6d} | {seconds:11.2f} | {bits:19d} | {entries}"
        )
    text = "\n".join(lines)
    report("scalability", text)
    print()
    print(text)
    # The search space grows monotonically with the chain length.
    bits = [b for _s, _t, b, _e in _RESULTS]
    assert bits == sorted(bits) and bits[-1] > bits[0]


# -- worker-count sweep (Table-3 rows through the steal scheduler) ------

WORKER_COUNTS = [1, 2, 4, 8]

# Fast Table-3 rows (every arm terminates quickly) so the sweep measures
# scheduler behaviour, not solver tail latency.
SWEEP_ROWS = ["Parse icmp", "Geneve tunnel", "Multi-key (same pkt field)"]

_SWEEP = []


def _sweep_options(workers: int) -> CompileOptions:
    return CompileOptions(
        parallel_workers=workers,
        total_max_seconds=120,
        seed=5,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("label", SWEEP_ROWS)
def test_worker_sweep(benchmark, label, workers):
    from repro.benchgen import benchmark_by_label

    spec = benchmark_by_label(label).spec()

    def run():
        return portfolio_compile(spec, TOFINO, _sweep_options(workers))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, f"{label} @ {workers} workers: {result.message}"
    _SWEEP.append(
        (workers, label, result.status, result.num_entries,
         result.num_stages)
    )


def test_worker_sweep_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_SWEEP) == len(WORKER_COUNTS) * len(SWEEP_ROWS)
    by_workers = {
        w: sorted((r[1:]) for r in _SWEEP if r[0] == w)
        for w in WORKER_COUNTS
    }
    lines = ["Worker sweep (steal schedule, Table-3 rows, Tofino profile)",
             "  workers | per-row (status, entries, stages)"]
    for workers in WORKER_COUNTS:
        cells = ", ".join(
            f"{r[1]}/{r[2]}e/{r[3]}s" for r in by_workers[workers]
        )
        lines.append(f"  {workers:7d} | {cells}")
    text = "\n".join(lines)
    report("worker_sweep", text)
    print()
    print(text)
    # Winner identity across the whole sweep: every worker count agrees
    # on status and resource counts, row by row.
    baseline = by_workers[WORKER_COUNTS[0]]
    for workers in WORKER_COUNTS[1:]:
        assert by_workers[workers] == baseline, (
            f"answers changed at {workers} workers: "
            f"{by_workers[workers]} != {baseline}"
        )
