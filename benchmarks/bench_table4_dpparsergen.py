"""Table 4: ParserHawk vs DPParserGen over the motivating examples with
parameterized hardware resources (key width / lookahead / extraction)."""

from __future__ import annotations

import pytest

from repro.harness import format_table4, run_table4
from repro.harness.table4 import TABLE4_CONFIGS

_ROWS_CACHE = []


@pytest.mark.parametrize(
    "config", TABLE4_CONFIGS, ids=[c[0] for c in TABLE4_CONFIGS]
)
def test_table4_row(benchmark, config):
    def run():
        return run_table4(configs=[config])[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS_CACHE.append(row)
    if not row.dp_rejected:
        assert row.ph_entries <= row.dp_entries, row.label


def test_table4_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS_CACHE) == len(TABLE4_CONFIGS)
    text = format_table4(_ROWS_CACHE)
    report("table4", text)
    print()
    print(text)
    rows = {r.label: r for r in _ROWS_CACHE}
    # Paper shapes: when the key fits, both compile (DP may still lose on
    # merging); when the key must split, ParserHawk is strictly better;
    # and the redundant-entry example collapses to a single row (1 vs 10).
    assert rows["ME-2 (4-bit window)"].ph_entries < (
        rows["ME-2 (4-bit window)"].dp_entries
    )
    assert rows["ME-3 (16-bit window)"].ph_entries == 1
    assert rows["ME-3 (16-bit window)"].dp_entries >= 9
    assert rows["Large tran key"].ph_entries < rows["Large tran key"].dp_entries
