"""§7 headline: the geometric-mean optimization speed-up.

For a representative subset of Table 3 rows we compile twice — all
optimizations ON vs all OFF (the naive encoding), the latter under a
wall-clock cap standing in for the paper's 24-hour timeout — and aggregate
the speed-ups.  The paper reports a geometric mean of 309.44x with >80% of
benchmarks compiling within a minute; the shape to hold here is a large
(>>1) geometric mean with every row's OPT arm finishing in seconds."""

from __future__ import annotations

import pytest

from repro.benchgen import benchmark_by_label
from repro.harness import run_row, summarize_speedups
from repro.harness.reporting import fmt_speedup

# A spread of benchmark families (small/medium/loopy/wide-key).
SUBSET = [
    "Parse Ethernet",
    "Parse icmp",
    "Parse MPLS",
    "Multi-keys (diff pkt fields)",
    "Pure Extraction states",
    "Sai V1",
    "Dash V2",
]

ORIG_CAP = 15.0

_ROWS_CACHE = []


@pytest.mark.parametrize("label", SUBSET)
def test_speedup_row(benchmark, label):
    bench = benchmark_by_label(label)

    def run():
        return run_row(
            bench,
            "tofino",
            include_orig=True,
            orig_cap_seconds=ORIG_CAP,
            validate_samples=100,
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS_CACHE.append(row)
    assert row.validated


def test_speedup_summary_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS_CACHE) == len(SUBSET)
    summary = summarize_speedups(_ROWS_CACHE)
    lines = [str(summary), ""]
    for row in _ROWS_CACHE:
        lines.append(
            f"{row.label:35s} opt={row.opt_seconds:7.2f}s "
            f"orig={row.orig_seconds} "
            f"speedup={fmt_speedup(row.opt_seconds, row.orig_seconds)}"
        )
    text = "\n".join(lines)
    report("speedup_summary", text)
    print()
    print(text)
    # Paper shape: the optimizations help overall (the geometric mean is
    # well above 1) and every OPT compile is fast.  Note two honesty
    # caveats, documented in EXPERIMENTS.md: the Orig arm's single random
    # seed test makes per-row speedups noisy, and Opt3 (pre-allocated
    # extraction) is structural in our skeleton, so the Orig arm is less
    # naive than the paper's fully-symbolic encoding.
    assert summary.geomean_speedup > 2.0, summary
    assert summary.under_one_minute == 1.0
