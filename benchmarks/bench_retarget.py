"""§7.3 retargetability: the same specification compiled for both device
families by the same compiler — only the device profile changes."""

from __future__ import annotations

import pytest

from repro.benchgen.suites import DASH_V2, SAI_V1
from repro.harness import run_retarget


@pytest.mark.parametrize(
    "source,name", [(SAI_V1, "sai_v1"), (DASH_V2, "dash_v2")]
)
def test_retarget(benchmark, report, source, name):
    def run():
        return run_retarget(source=source)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.both_valid
    assert result.tofino_entries > 0
    assert result.ipu_stages > 0
    text = (
        f"Retarget {result.benchmark}: tofino={result.tofino_entries} "
        f"entries, ipu={result.ipu_stages} stages\n\n"
        f"{result.tofino_config}\n{result.ipu_config}"
    )
    report(f"retarget_{name}", text)
    print()
    print(text.splitlines()[0])
