"""Table 5: the Opt4/Opt5 ablation on Sai V1, Dash V1 and Large tran key.

Each cell is one compilation with a specific optimization subset; the
paper's claim is roughly an order of magnitude from each of Opt4 and Opt5
(our "Other OPT" arm may hit its cap, mirroring the paper's timeouts)."""

from __future__ import annotations

import pytest

from repro.harness import format_table5, run_table5
from repro.harness.table5 import ABLATION_BENCHMARKS

_ROWS_CACHE = []


@pytest.mark.parametrize("label", ABLATION_BENCHMARKS)
def test_table5_benchmark(benchmark, label):
    def run():
        return run_table5("tofino", benchmarks=[label], cap_seconds=45.0)[0]

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS_CACHE.append(row)
    full = row.seconds["+ OPT4, 5"]
    other = row.seconds["Other OPT"]
    # The fully-optimized arm never loses to the ablated arm.
    assert row.capped["Other OPT"] or full <= other * 1.5, row.seconds
    assert not row.capped["+ OPT4, 5"], row.seconds


def test_table5_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS_CACHE) == len(ABLATION_BENCHMARKS)
    text = format_table5(_ROWS_CACHE)
    report("table5", text)
    print()
    print(text)
    # At least one benchmark shows a clear (>2x) win from Opt4+Opt5.
    gains = []
    for row in _ROWS_CACHE:
        full = max(row.seconds["+ OPT4, 5"], 1e-3)
        other = row.seconds["Other OPT"]
        gains.append(other / full)
    assert max(gains) > 2.0, gains
