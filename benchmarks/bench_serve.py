"""Serve soak benchmark: durability and answer-fidelity under faults.

PR 7 added ``repro serve`` — an admission-controlled job layer over the
compiler with retry/backoff, coalescing, a per-(tenant, key) circuit
breaker, and a crash-safe journal.  Its headline property is robustness,
so unlike the other benchmarks this one measures *invariants* first and
wall clocks second:

1. **Zero lost work.** A real server subprocess runs with WorkerCrash
   faults injected at ``serve.worker``; a load generator spools a
   duplicate-heavy workload at it, the server is SIGKILL'd mid-run and
   restarted, and every request that was ever acked ``accepted`` must
   reach a terminal journal state.
2. **Answer fidelity.** Every job that finishes ``done`` (and was not
   stale-served) must carry a result *byte-identical* — canonical
   program document plus entries/stages resource counts — to a direct
   in-process ``compile()`` of the same spec/device/options.
3. **Saturation behavior.** A burst beyond queue capacity must be
   rejected with non-terminal retry-after acks (backpressure, not
   errors), and a well-behaved client that honors them must eventually
   land all of its work.

Usage::

    python benchmarks/bench_serve.py [--quick] [--check]
        [--output BENCH_serve.json] [--duration 45] [--seed 3]
        [--no-kill] [--inject SPEC]

``--quick`` shrinks the workload for CI smoke; ``--check`` exits
non-zero if any invariant fails (lost jobs, divergent results, no
observed retries while faults were injected, burst not backpressured).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen import all_base_specs  # noqa: E402
from repro.core.compiler import ParserHawkCompiler  # noqa: E402
from repro.hw.device import tofino_profile  # noqa: E402
from repro.persist.serialize import (  # noqa: E402
    program_from_doc,
    program_to_doc,
)
from repro.serve import SpoolClient, TERMINAL_STATES, make_job  # noqa: E402

# Fast-compiling base specs (each well under a second on the reference
# machine) so the soak exercises queueing/retry/coalescing machinery,
# not solver time.  Each entry is submitted COPIES times with an
# identical compile key — the duplicates must coalesce.
WORKLOAD = [
    "parse_ethernet",
    "parse_icmp",
    "parse_mpls",
    "multi_key_diff",
    "pure_extraction",
    "geneve_tunnel",
    "lookahead_tag",
    "dash_v1",
    "finance_feed",
]

DEFAULT_INJECT = "serve.worker:WorkerCrash:4"


def serve_cmd(
    root: Path,
    *,
    workers: int,
    capacity: int,
    duration: Optional[float],
    inject: Optional[str],
) -> List[str]:
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        str(root),
        "--workers",
        str(workers),
        "--capacity",
        str(capacity),
    ]
    if duration is not None:
        cmd += ["--duration", str(duration)]
    if inject:
        cmd += ["--inject", inject]
    return cmd


def start_server(root: Path, **kwargs: Any) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONHASHSEED"] = "0"
    return subprocess.Popen(
        serve_cmd(root, **kwargs),
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def submit_workload(
    client: SpoolClient,
    device,
    seed: int,
    copies: int,
    certify: bool = False,
) -> Dict[str, Dict[str, Any]]:
    """Spool every workload spec ``copies`` times; returns request docs
    keyed by req_id (spec name + options kept for later verification)."""
    specs = all_base_specs()
    requests: Dict[str, Dict[str, Any]] = {}
    for name in WORKLOAD:
        source = specs[name].to_source()
        options: Dict[str, Any] = {"seed": seed}
        if certify:
            options["certify"] = True
        for copy in range(copies):
            tenant = f"tenant-{copy % 2}"
            req_id = client.submit(
                source,
                device,
                tenant=tenant,
                options=options,
            )
            requests[req_id] = {
                "spec": name,
                "source": source,
                "tenant": tenant,
                "options": dict(options),
            }
    return requests


def await_acks(
    client: SpoolClient,
    requests: Dict[str, Dict[str, Any]],
    timeout: float,
) -> None:
    deadline = time.monotonic() + timeout
    for req_id, info in requests.items():
        remaining = max(1.0, deadline - time.monotonic())
        info["ack"] = client.wait_ack(req_id, timeout=remaining)


def resubmit_until_accepted(
    client: SpoolClient,
    requests: Dict[str, Dict[str, Any]],
    timeout: float,
) -> int:
    """A well-behaved client: honor retry-after on transient rejections
    until every request is accepted (or permanently rejected)."""
    retries = 0
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pending = [
            (rid, info)
            for rid, info in requests.items()
            if info.get("ack") is not None
            and not info["ack"].get("accepted")
            and not info["ack"].get("permanent")
        ]
        if not pending:
            break
        for rid, info in pending:
            time.sleep(min(2.0, float(info["ack"].get("retry_after", 0.5))))
            (client.acks / f"{rid}.json").unlink(missing_ok=True)
            client.submit(
                info["source"],
                tofino_profile(),
                tenant=info.get("tenant", "default"),
                options=info["options"],
                req_id=rid,
            )
            retries += 1
            info["ack"] = client.wait_ack(
                rid, timeout=max(1.0, deadline - time.monotonic())
            )
    return retries


def direct_compile_doc(
    info: Dict[str, Any], device
) -> Dict[str, Any]:
    """The ground truth: compile the same spec/device/options directly,
    in-process, through the same validation path the service uses."""
    job = make_job(
        info["source"], device, options=info["options"]
    )
    result = ParserHawkCompiler(job.build_options()).compile(
        job.build_spec(), job.build_device()
    )
    return {
        "status": result.status,
        "program": (
            program_to_doc(result.program)
            if result.program is not None
            else None
        ),
        "entries": result.num_entries,
        "stages": result.num_stages,
    }


def run_soak(args: argparse.Namespace) -> Dict[str, Any]:
    root = Path(args.dir or "serve-soak").resolve()
    root.mkdir(parents=True, exist_ok=True)
    device = tofino_profile()
    client = SpoolClient(root)
    copies = 2 if args.quick else 3
    report: Dict[str, Any] = {
        "bench": "serve_soak",
        "quick": args.quick,
        "inject": args.inject,
        "copies": copies,
        "workload": list(WORKLOAD),
    }

    # Phase 1: faulty server + load + mid-run SIGKILL.
    t0 = time.monotonic()
    server = start_server(
        root,
        workers=args.workers,
        capacity=args.capacity,
        duration=args.duration,
        inject=args.inject,
    )
    requests = submit_workload(
        client, device, args.seed, copies, certify=args.certify
    )
    await_acks(client, requests, timeout=60.0)
    acked = {
        rid: info
        for rid, info in requests.items()
        if info.get("ack") and info["ack"].get("accepted")
    }
    report["submitted"] = len(requests)
    report["accepted_before_kill"] = len(acked)

    if not args.no_kill:
        # SIGKILL mid-run: no graceful shutdown, no final journal
        # writes — recovery must come entirely from the journal.
        time.sleep(0.5)
        server.send_signal(signal.SIGKILL)
        server.wait(timeout=30)
        report["killed"] = True
    else:
        report["killed"] = False

    # Phase 2: restart drains everything (recovery re-adopts the
    # journaled jobs; unacked inbox files are reprocessed idempotently).
    # In sustained-soak mode the faults keep churning on this server
    # too — retries, not the absence of faults, must land the work.
    server2 = start_server(
        root,
        workers=args.workers,
        capacity=args.capacity,
        duration=None,
        inject=args.inject if args.soak_seconds > 0 else None,
    )
    try:
        await_acks(client, requests, timeout=60.0)
        client_retries = resubmit_until_accepted(
            client, requests, timeout=60.0
        )

        # Sustained load: keep spooling fresh waves (new seeds, so new
        # compile keys — real compiles, not cache hits) until the soak
        # window closes.
        wave = 0
        while time.monotonic() - t0 < args.soak_seconds:
            wave += 1
            fresh = submit_workload(
                client,
                device,
                args.seed + wave,
                copies=1,
                certify=args.certify,
            )
            await_acks(client, fresh, timeout=30.0)
            client_retries += resubmit_until_accepted(
                client, fresh, timeout=30.0
            )
            requests.update(fresh)
            time.sleep(1.0)
        report["waves"] = wave
        report["client_retries_after_backpressure"] = client_retries
        acked = {
            rid: info
            for rid, info in requests.items()
            if info.get("ack") and info["ack"].get("accepted")
        }
        report["accepted_total"] = len(acked)

        wait_deadline = time.monotonic() + (120 if args.quick else 300)
        lost: List[str] = []
        for rid in acked:
            job = client.wait_job(
                rid, timeout=max(1.0, wait_deadline - time.monotonic())
            )
            acked[rid]["job"] = job
            if job is None or job.state not in TERMINAL_STATES:
                lost.append(rid)
        report["lost_jobs"] = lost

        # Phase 3: saturation burst against a tiny window — submit far
        # beyond capacity at once; count backpressure rejections.
        burst_root_metrics = client.metrics() or {}
        client.request_stop()
        server2.wait(timeout=60)
    finally:
        if server2.poll() is None:
            server2.kill()
            server2.wait(timeout=30)
    report["soak_seconds"] = round(time.monotonic() - t0, 2)

    # Verification: every done, non-degraded job must match a direct
    # in-process compile byte-for-byte.
    divergent: List[str] = []
    checked = 0
    direct_cache: Dict[str, Dict[str, Any]] = {}
    for rid, info in acked.items():
        job = info.get("job")
        if job is None or job.state != "done" or job.degraded:
            continue
        key = job.compile_key
        if key not in direct_cache:
            direct_cache[key] = direct_compile_doc(info, device)
        truth = direct_cache[key]
        doc = job.result_doc or {}
        served_program = (
            program_from_doc(doc["program"])
            if doc.get("program") is not None
            else None
        )
        served = {
            "status": doc.get("status"),
            "program": doc.get("program"),
            "entries": (
                served_program.num_entries
                if served_program is not None
                else -1
            ),
            "stages": (
                served_program.num_stages
                if served_program is not None
                else -1
            ),
        }
        if json.dumps(served, sort_keys=True) != json.dumps(
            truth, sort_keys=True
        ):
            divergent.append(rid)
        checked += 1
    report["results_checked"] = checked
    report["divergent_results"] = divergent

    states: Dict[str, int] = {}
    coalesced = 0
    for info in acked.values():
        job = info.get("job")
        state = job.state if job is not None else "missing"
        states[state] = states.get(state, 0) + 1
        if job is not None and job.coalesced_into:
            coalesced += 1
    report["terminal_states"] = states
    report["coalesced_jobs"] = coalesced

    counters = (burst_root_metrics or {}).get("counters", {})
    report["server_counters"] = {
        k: v
        for k, v in sorted(counters.items())
        if k.startswith("serve.")
    }
    return report


def run_burst(args: argparse.Namespace) -> Dict[str, Any]:
    """Saturation: a burst beyond capacity must draw retry-after acks."""
    root = Path(args.dir or "serve-soak").resolve() / "burst"
    root.mkdir(parents=True, exist_ok=True)
    client = SpoolClient(root)
    device = tofino_profile()
    source = all_base_specs()["multi_key_same"].to_source()
    capacity = 2
    burst = 8
    server = start_server(
        root, workers=1, capacity=capacity, duration=None, inject=None
    )
    try:
        req_ids = []
        for i in range(burst):
            # Distinct keys (different seeds) so nothing coalesces and
            # the bounded queue actually fills.
            req_ids.append(
                client.submit(source, device, options={"seed": i})
            )
        acks = {}
        for rid in req_ids:
            acks[rid] = client.wait_ack(rid, timeout=60.0)
        rejected = [
            rid
            for rid, ack in acks.items()
            if ack and not ack.get("accepted")
        ]
        transient = [
            rid
            for rid in rejected
            if not acks[rid].get("permanent")
            and float(acks[rid].get("retry_after", 0)) > 0
        ]
        client.request_stop()
        server.wait(timeout=120)
    finally:
        if server.poll() is None:
            server.kill()
            server.wait(timeout=30)
    return {
        "burst": burst,
        "capacity": capacity,
        "rejected": len(rejected),
        "rejected_with_retry_after": len(transient),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--check", action="store_true")
    parser.add_argument("--output", default="BENCH_serve.json")
    parser.add_argument("--dir", default=None, help="service directory")
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--capacity", type=int, default=32)
    parser.add_argument("--inject", default=DEFAULT_INJECT)
    parser.add_argument(
        "--soak-seconds",
        type=float,
        default=0.0,
        help="after the kill/restart, keep spooling fresh waves (with "
        "faults still injected) until this much wall clock has passed",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="submit every job with certify=true so the service cache "
        "holds offline-checkable equivalence certificates",
    )
    parser.add_argument(
        "--no-kill",
        action="store_true",
        help="skip the mid-run SIGKILL (debug aid)",
    )
    args = parser.parse_args(argv)

    report = run_soak(args)
    report["saturation"] = run_burst(args)

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))

    failures: List[str] = []
    if report["accepted_total"] < report["submitted"]:
        failures.append(
            f"only {report['accepted_total']}/{report['submitted']} "
            "requests were ever accepted"
        )
    if report["lost_jobs"]:
        failures.append(f"lost jobs: {report['lost_jobs']}")
    if report["divergent_results"]:
        failures.append(
            f"results diverged from direct compile: "
            f"{report['divergent_results']}"
        )
    if report["results_checked"] == 0:
        failures.append("no done results to verify")
    if args.inject and not args.no_kill:
        retried = report["server_counters"].get("serve.retries", 0)
        recovered = report["server_counters"].get(
            "serve.jobs_recovered", 0
        )
        if retried == 0 and recovered == 0:
            failures.append(
                "faults were injected and the server was killed, yet "
                "no retry or recovery was observed"
            )
    sat = report["saturation"]
    if sat["rejected_with_retry_after"] == 0:
        failures.append(
            "burst beyond capacity produced no retry-after backpressure"
        )

    if failures:
        for line in failures:
            print(f"CHECK FAIL: {line}", file=sys.stderr)
        return 1 if args.check else 0
    print("CHECK OK: zero lost jobs, all results identical", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
