"""Table 3 (Tofino half): compile every benchmark row for the single-TCAM
target, recording ParserHawk's resources and compile time against the
emulated vendor compiler.

The measured quantity per benchmark is one full ParserHawk compilation
(front-end + budget search + CEGIS + back-end), exactly the paper's
"OPT time" column."""

from __future__ import annotations

import pytest

from repro.benchgen import TABLE3_ROWS
from repro.harness import format_table3, run_row

_ROWS_CACHE = []


@pytest.mark.parametrize(
    "bench", TABLE3_ROWS, ids=[b.row_label for b in TABLE3_ROWS]
)
def test_table3_tofino_row(benchmark, bench):
    def run():
        return run_row(bench, "tofino", validate_samples=150)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS_CACHE.append(row)
    # Paper shape: ParserHawk output is always validated and never uses
    # more entries than the vendor compiler when both compile.
    assert row.validated
    if not row.baseline_rejected:
        assert row.ph_entries <= row.baseline_entries, (
            f"{row.label}: {row.ph_entries} > {row.baseline_entries}"
        )


def test_table3_tofino_report(benchmark, report):
    """Aggregate shape checks + emit the regenerated table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS_CACHE) == len(TABLE3_ROWS)
    text = format_table3(_ROWS_CACHE)
    report("table3_tofino", text)
    report(
        "table3_tofino_profile",
        "\n\n".join(
            f"== {row.label} ==\n{row.profile}" for row in _ROWS_CACHE
        ),
    )
    print()
    print(text)
    # Resource invariance across semantically-equivalent mutations: rows of
    # the same family report identical entry counts.
    by_family = {}
    for row, bench in zip(_ROWS_CACHE, TABLE3_ROWS):
        by_family.setdefault(bench.base, set()).add(row.ph_entries)
    for family, counts in by_family.items():
        if family == "parse_mpls":
            # The unrolled variant legitimately differs from the loop form.
            assert len(counts) <= 2, (family, counts)
        else:
            assert len(counts) == 1, (family, counts)
