"""Table 3 (IPU half): compile every benchmark row for the pipelined
target.  Loops are auto-unrolled (the vendor compiler rejects them) and
stages are minimized lexicographically before entries."""

from __future__ import annotations

import pytest

from repro.benchgen import TABLE3_ROWS
from repro.harness import format_table3, run_row

_ROWS_CACHE = []


@pytest.mark.parametrize(
    "bench", TABLE3_ROWS, ids=[b.row_label for b in TABLE3_ROWS]
)
def test_table3_ipu_row(benchmark, bench):
    def run():
        return run_row(bench, "ipu", validate_samples=150)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    _ROWS_CACHE.append(row)
    assert row.validated
    if not row.baseline_rejected:
        assert row.ph_stages <= row.baseline_stages, (
            f"{row.label}: {row.ph_stages} > {row.baseline_stages}"
        )


def test_table3_ipu_report(benchmark, report):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(_ROWS_CACHE) == len(TABLE3_ROWS)
    text = format_table3(_ROWS_CACHE)
    report("table3_ipu", text)
    report(
        "table3_ipu_profile",
        "\n\n".join(
            f"== {row.label} ==\n{row.profile}" for row in _ROWS_CACHE
        ),
    )
    print()
    print(text)
    # The paper's headline rejections must reproduce: the vendor IPU
    # compiler rejects the loopy MPLS rows and the dead-entry mutations.
    rejected = {
        row.label: row.baseline_rejected
        for row in _ROWS_CACHE
        if row.baseline_rejected
    }
    assert any("Parse MPLS" in label for label in rejected), rejected
    assert "Parser loop rej" in rejected.values()
    # ParserHawk compiled every row the vendor rejected.
    assert all(row.ph_stages > 0 for row in _ROWS_CACHE)
