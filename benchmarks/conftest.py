"""Shared infrastructure for the experiment benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation (§7).  Compile-style benchmarks run once per row
(``benchmark.pedantic(rounds=1)``) because a single compilation IS the
experiment; throughput-style benchmarks (simulators, SAT) use normal
pytest-benchmark rounds.

Regenerated tables are appended to ``benchmarks/_reports/`` so the paper
comparison in EXPERIMENTS.md can be refreshed from a plain
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "_reports"


def write_report(name: str, text: str) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.txt"
    path.write_text(text + "\n")


@pytest.fixture(scope="session")
def report():
    return write_report
