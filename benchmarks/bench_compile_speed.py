"""Compile-speed benchmark: SAT hot-path speedup vs the PR-4 baseline.

PR 5 flattened the SAT solver's hot path (clause arena + lazy watcher
maintenance), added SatELite preprocessing for the standalone DIMACS
path, and hash-conses bit-blasted gates.  This benchmark measures the
end-to-end effect on the compile pipeline against the **checked-in**
``BENCH_pr4.json`` baseline: each case's reuse-on wall clock is compared
to the same case's recorded PR-4 reuse-on wall, and ``--check`` requires
the geomean of those per-case speedups to clear the target — with the
per-case resource counts (entries/stages) and statuses *identical* to
the baseline, so the speedup cannot come from changed answers.

The PR-4 reuse ON/OFF A/B is retained (the incremental engine's win is
orthogonal to the solver speedup and should survive it), as is the
bit-blaster constant-folding A/B.

The suite pins budgets (``max_extra_entries`` 0-2) and sets each case's
time slice below its winner's solve time, so every case exercises the
escalation schedule's retry path and the winning budget — and with it
the resource counts — stays deterministic across modes and PRs.

Usage::

    python benchmarks/bench_compile_speed.py [--quick] [--check]
        [--output BENCH_pr5.json] [--baseline BENCH_pr4.json] [--seed 0]
        [--pr4-tree PATH] [--certify-ab]
    python benchmarks/bench_compile_speed.py --eqsat-ab [--quick]
        [--check] [--output BENCH_pr10.json]

``--eqsat-ab`` is a standalone mode (PR 10): an interleaved in-process
A/B of ``CompileOptions.eqsat`` on vs off over canonical Table-3 rows
(overhead guard — saturating an already-canonical spec must be nearly
free) and redundantly-written R1-R5 variants of the same parsers (the
win — the e-graph collapses symmetric candidates before bit-blasting).
Gates: byte-identical resource answers, Figure 22 simulation of every
eqsat-compiled program against the *input* spec, candidate-space
reduction on every mutated row, canonical-row overhead and whole-suite
geomean limits.

``--quick`` runs one repetition per case (CI perf-smoke) and relaxes the
vs-PR4 gate to a no-major-regression check (geomean >= 0.8, i.e. fail
only on a >25% slowdown — single-rep walls on shared CI runners are
noisy).  The full run uses three repetitions, reports the median, and
requires a >= 1.3x geomean speedup over the PR-4 baseline.

A recorded baseline's *absolute* walls only transfer across machines —
and across hours on a shared machine — up to the machine-speed drift,
which routinely exceeds the speedups being measured.  Wall-clock
comparisons against ``BENCH_pr4.json`` therefore serve as a regression
*guard*; the speedup *proof* is the interleaved same-machine A/B:
pass ``--pr4-tree`` pointing at a checkout of the pre-PR-5 commit
(``git worktree add --detach /tmp/pr4repo <pre-PR5-sha>``) and the
bench compiles every case on both trees in alternation, in fresh
subprocesses, under identical load — and ``--check`` then applies the
1.3x full-mode gate to that A/B's geomean instead of the recorded
walls.  Resource counts and statuses must match the recorded baseline
either way.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen.suites import benchmark_by_label  # noqa: E402
from repro.core.compiler import compile_spec  # noqa: E402
from repro.core.options import CompileOptions  # noqa: E402
from repro.hw.device import tofino_profile  # noqa: E402
from repro.smt import bitblast  # noqa: E402

# (label, key_limit, max_extra_entries, budget_time_slice).  Slices sit
# below each case's measured winner time so the schedule retries; pinned
# entry budgets keep the winner identical across modes.  The last case is
# infeasible at its budget — it measures UNSAT *retirement* speed.
SUITE = [
    ("Sai V2", 8, 0, 0.25),
    ("Finance feed", 5, 2, 0.5),
    ("Large tran key", 8, 2, 0.25),
    ("Multi-keys (diff pkt fields)", 4, 0, 0.1),
    ("Dash V2", 4, 0, 0.05),
    ("Sai V1", 8, 0, 0.05),
    ("Multi-key (same pkt field)", 4, 0, 0.25),
]

# Constant folding at the *gate* level only matters where constants
# reach the bit-blaster unfolded.  The default compile path (§6.4
# constant synthesis) matches candidate constants concretely, so the A/B
# runs the paper's ablation arm (opt4 off): its free value/mask encoding
# floods the blaster with per-bit constant AND inputs.
FOLD_CASE = ("Multi-keys (diff pkt fields)", 6)

DEFAULT_BASELINE = REPO_ROOT / "BENCH_pr4.json"

# Geomean of per-case (pr4 reuse-on wall / current reuse-on wall).
VS_PR4_TARGET_FULL = 1.3
VS_PR4_TARGET_QUICK = 0.8  # fail only on a >25% regression

# Certified compiles (DRAT logging in every CEGIS solver) may cost at
# most this much end-to-end; the default path has logging off entirely.
CERTIFY_OVERHEAD_LIMIT = 1.10

# Equality-saturation A/B (PR 10): canonical Table-3 rows measure the
# overhead of saturating a spec eqsat cannot improve; mutated rows (the
# same parsers written redundantly via R1-R5) measure the win from
# collapsing symmetric candidates before bit-blasting.  Settings differ
# from SUITE: slices of >= 1.0s keep budget retirement off the noisy
# wall-clock path so both arms reach identical answers run after run.
EQSAT_SUITE = [
    # (label, key_limit, max_extra_entries, time_slice, mutated)
    ("Parse Ethernet", 8, 2, 1.0, False),
    ("Parse icmp", 8, 2, 1.0, False),
    ("Large tran key", 8, 2, 1.0, False),
    ("Multi-keys (diff pkt fields)", 8, 2, 1.0, False),
    ("Dash V2", 8, 2, 1.0, False),
    # Sai V2's winning budget sits near the 1.0s slice boundary without
    # eqsat; a 4.0s slice keeps its answer deterministic in both arms
    # even under competing machine load.
    ("Sai V2", 8, 2, 4.0, False),
    ("Parse Ethernet +R1", 8, 2, 1.0, True),
    ("Parse icmp +R5", 8, 2, 1.0, True),
    ("Large tran key +R1 +R4", 8, 2, 1.0, True),
    ("Large tran key +R3 +R4", 8, 2, 1.0, True),
    ("Multi-keys (diff pkt fields) +R5", 8, 2, 1.0, True),
    ("Multi-key (same pkt field) -R5", 8, 2, 1.0, True),
    ("Sai V2 +R1 +R2", 8, 2, 4.0, True),
    ("Dash V2 +R1 +R2", 8, 2, 1.0, True),
]
# Saturating an already-canonical spec must be close to free.  The full
# three-rep run gates the canonical rows' median overhead at 1.05x; a
# single --quick rep on a shared runner can't resolve 5% on sub-second
# compiles, so it only guards against gross regressions.
EQSAT_CANONICAL_OVERHEAD_FULL = 1.05
EQSAT_CANONICAL_OVERHEAD_QUICK = 1.30
# ... and over the whole suite (mutated rows included) eqsat must not
# lose time on net, with byte-identical resource counts.
EQSAT_GEOMEAN_TARGET = 1.0


def _options(reuse: bool, extra: int, tslice: float,
             seed: int, certify: bool = False,
             eqsat: bool = False) -> CompileOptions:
    return CompileOptions(
        test_reuse=reuse,
        seed=seed,
        # Paper-fidelity seeding (one random test): counterexamples carry
        # the run, which is the regime incremental reuse targets.
        directed_seed_tests=False,
        total_max_seconds=120,
        budget_time_slice=tslice,
        max_extra_entries=extra,
        certify=certify,
        eqsat=eqsat,
    )


def _run_case(label: str, kl: int, extra: int, tslice: float,
              reuse: bool, reps: int, seed: int) -> Dict[str, Any]:
    spec = benchmark_by_label(label).spec()
    device = tofino_profile(key_limit=kl)
    walls: List[float] = []
    result = None
    for _ in range(reps):
        t0 = time.monotonic()
        result = compile_spec(spec, device, _options(reuse, extra,
                                                     tslice, seed))
        walls.append(time.monotonic() - t0)
    stats = result.stats
    return {
        "status": result.status,
        "wall_seconds": statistics.median(walls),
        "wall_all": [round(w, 4) for w in walls],
        "cegis_iterations": stats.cegis_iterations,
        "sat_conflicts": stats.sat_conflicts,
        "sat_clauses_added": stats.sat_clauses_added,
        "sat_gate_cache_hits": stats.sat_gate_cache_hits,
        "pool_tests_reused": stats.pool_tests_reused,
        "warm_resumes": stats.warm_resumes,
        "budget_retries": stats.budget_retries,
        "entries": result.num_entries if result.program else None,
        "stages": result.num_stages if result.program else None,
    }


def _ablation_compile(seed: int) -> Dict[str, Any]:
    """One compile of FOLD_CASE under whatever bitblast module flags the
    caller has set; reports the answer-relevant fields."""
    label, kl = FOLD_CASE
    spec = benchmark_by_label(label).spec()
    device = tofino_profile(key_limit=kl)
    opts = CompileOptions(
        test_reuse=True,
        seed=seed,
        directed_seed_tests=False,
        total_max_seconds=120,
        budget_time_slice=30.0,
        opt4_constant_synthesis=False,
    )
    result = compile_spec(spec, device, opts)
    return {
        "status": result.status,
        "sat_clauses_added": result.stats.sat_clauses_added,
        "sat_gate_cache_hits": result.stats.sat_gate_cache_hits,
        "entries": result.num_entries if result.program else None,
    }


def _ab_summary(out: Dict[str, Any], on_key: str, off_key: str) -> None:
    on, off = out[on_key], out[off_key]
    out["clause_reduction"] = (
        1.0 - on["sat_clauses_added"] / off["sat_clauses_added"]
        if off["sat_clauses_added"] else 0.0
    )
    out["same_status"] = on["status"] == off["status"]
    out["same_entries"] = on["entries"] == off["entries"]


# Child script for the same-machine A/B: one warm-up compile, one timed
# compile, stats on stdout as JSON.  Run in a fresh interpreter per rep
# so neither tree's module caches or interned terms leak into the other.
_AB_CHILD = r'''
import json, sys, time
sys.path.insert(0, sys.argv[1] + "/src")
from repro.benchgen.suites import benchmark_by_label
from repro.core.compiler import compile_spec
from repro.core.options import CompileOptions
from repro.hw.device import tofino_profile
label, kl, extra, tslice, seed = (
    sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), float(sys.argv[5]),
    int(sys.argv[6]))
spec = benchmark_by_label(label).spec()
device = tofino_profile(key_limit=kl)
def opts():
    return CompileOptions(test_reuse=True, seed=seed,
                          directed_seed_tests=False, total_max_seconds=120,
                          budget_time_slice=tslice, max_extra_entries=extra)
compile_spec(spec, device, opts())  # warm-up (imports, pyc, caches)
t0 = time.perf_counter()
result = compile_spec(spec, device, opts())
print(json.dumps({
    "wall": time.perf_counter() - t0,
    "status": result.status,
    "entries": result.num_entries if result.program else None,
    "stages": result.num_stages if result.program else None,
}))
'''


def _run_pr4_same_machine_ab(
    pr4_tree: Path, seed: int, reps: int
) -> Dict[str, Any]:
    """Interleaved A/B against a pre-PR-5 checkout on this machine.

    Each rep compiles every case once per tree, alternating trees
    case-by-case, so both sides see the same load profile; walls are
    medians (and mins) over reps of fresh-subprocess compiles."""
    import subprocess

    walls: Dict[str, Dict[str, List[float]]] = {
        t: {c[0]: [] for c in SUITE} for t in ("pr4", "pr5")
    }
    answers: Dict[str, Dict[str, Any]] = {"pr4": {}, "pr5": {}}
    trees = {"pr5": str(REPO_ROOT), "pr4": str(pr4_tree)}
    for _rep in range(reps):
        for label, kl, extra, tslice in SUITE:
            for tree, path in trees.items():
                proc = subprocess.run(
                    [sys.executable, "-c", _AB_CHILD, path, label,
                     str(kl), str(extra), str(tslice), str(seed)],
                    capture_output=True, text=True, check=True)
                doc = json.loads(proc.stdout.strip().splitlines()[-1])
                walls[tree][label].append(doc["wall"])
                answers[tree][label] = (
                    doc["status"], doc["entries"], doc["stages"])
    cases = []
    logs_med: List[float] = []
    logs_min: List[float] = []
    for label, *_ in SUITE:
        w4, w5 = walls["pr4"][label], walls["pr5"][label]
        med = statistics.median(w4) / statistics.median(w5)
        mn = min(w4) / min(w5)
        logs_med.append(math.log(max(med, 1e-9)))
        logs_min.append(math.log(max(mn, 1e-9)))
        cases.append({
            "case": label,
            "pr4_walls": [round(w, 4) for w in w4],
            "pr5_walls": [round(w, 4) for w in w5],
            "speedup_median": round(med, 4),
            "speedup_min": round(mn, 4),
            "same_answer": answers["pr4"][label] == answers["pr5"][label],
        })
    return {
        "pr4_tree": str(pr4_tree),
        "reps": reps,
        "cases": cases,
        "geomean_median": round(
            math.exp(sum(logs_med) / len(logs_med)), 4),
        "geomean_min": round(math.exp(sum(logs_min) / len(logs_min)), 4),
        "same_answers": all(c["same_answer"] for c in cases),
    }


def _run_fold_ab(seed: int) -> Dict[str, Any]:
    """Constant-folding A/B on one case: clause counts with gate folding
    on vs off, same compile otherwise.  Toggles the module flag so every
    solver the compile builds inherits the setting.  The gate cache is
    disabled for BOTH arms: it deduplicates exactly the constant-heavy
    repeated structure that folding collapses, so with the cache on the
    fold-off arm recovers nearly all of folding's savings and the A/B
    would measure the cache, not folding."""
    label, _ = FOLD_CASE
    out: Dict[str, Any] = {"case": label, "opt4_constant_synthesis": False}
    saved_fold, saved_cache = bitblast.FOLD_CONSTANTS, bitblast.GATE_CACHE
    try:
        bitblast.GATE_CACHE = False
        for fold in (True, False):
            bitblast.FOLD_CONSTANTS = fold
            out["fold_on" if fold else "fold_off"] = _ablation_compile(seed)
    finally:
        bitblast.FOLD_CONSTANTS = saved_fold
        bitblast.GATE_CACHE = saved_cache
    _ab_summary(out, "fold_on", "fold_off")
    return out


def _run_gate_cache_ab(seed: int) -> Dict[str, Any]:
    """Gate-cache A/B on the same case, with folding OFF in both arms so
    the cache sees the repeated constant-substituted structure the
    default compile path never leaves behind.  Measures the hash-consing
    layer's own clause reduction and checks it changes no answer."""
    label, _ = FOLD_CASE
    out: Dict[str, Any] = {"case": label, "fold_constants": False}
    saved_fold, saved_cache = bitblast.FOLD_CONSTANTS, bitblast.GATE_CACHE
    try:
        bitblast.FOLD_CONSTANTS = False
        for cache in (True, False):
            bitblast.GATE_CACHE = cache
            out["cache_on" if cache else "cache_off"] = _ablation_compile(seed)
    finally:
        bitblast.FOLD_CONSTANTS = saved_fold
        bitblast.GATE_CACHE = saved_cache
    _ab_summary(out, "cache_on", "cache_off")
    out["cache_hits"] = out["cache_on"]["sat_gate_cache_hits"]
    return out


def _run_certify_ab(seed: int, reps: int) -> Dict[str, Any]:
    """Interleaved certify on/off A/B over the whole suite.

    ``certify=True`` turns on DRAT proof logging in every CEGIS solver
    (one append per derived clause); with no cache/checkpoint directory
    nothing is persisted, so the A/B isolates the logging overhead from
    IO.  Arms alternate case-by-case so both see the same machine load;
    per-case overhead is median(certified)/median(plain) and the gate
    (``--check``) requires the geomean to stay <= CERTIFY_OVERHEAD_LIMIT
    with identical answers.
    """
    walls: Dict[str, Dict[str, List[float]]] = {
        arm: {c[0]: [] for c in SUITE} for arm in ("certify", "plain")
    }
    answers: Dict[str, Dict[str, Any]] = {"certify": {}, "plain": {}}
    for _rep in range(reps):
        for label, kl, extra, tslice in SUITE:
            spec = benchmark_by_label(label).spec()
            device = tofino_profile(key_limit=kl)
            if _rep == 0:
                # Untimed warm-up so the first timed arm doesn't absorb
                # cold caches (imports, interned terms, pyc loads).
                compile_spec(spec, device,
                             _options(True, extra, tslice, seed))
            arms = [("certify", True), ("plain", False)]
            if _rep % 2:
                arms.reverse()        # neither arm always goes first
            for arm, certify in arms:
                t0 = time.monotonic()
                result = compile_spec(
                    spec, device,
                    _options(True, extra, tslice, seed, certify=certify))
                walls[arm][label].append(time.monotonic() - t0)
                answers[arm][label] = (
                    result.status,
                    result.num_entries if result.program else None,
                    result.num_stages if result.program else None,
                )
    cases = []
    logs: List[float] = []
    for label, *_ in SUITE:
        wc = walls["certify"][label]
        wp = walls["plain"][label]
        overhead = (
            statistics.median(wc) / statistics.median(wp)
            if statistics.median(wp) else 1.0
        )
        logs.append(math.log(max(overhead, 1e-9)))
        cases.append({
            "case": label,
            "certify_walls": [round(w, 4) for w in wc],
            "plain_walls": [round(w, 4) for w in wp],
            "overhead": round(overhead, 4),
            "same_answer": answers["certify"][label]
            == answers["plain"][label],
        })
        print(
            f"{label:30s} certify={statistics.median(wc):6.2f}s "
            f"plain={statistics.median(wp):6.2f}s "
            f"x{overhead:.3f}",
            flush=True,
        )
    return {
        "reps": reps,
        "cases": cases,
        "geomean_overhead": round(
            math.exp(sum(logs) / len(logs)), 4),
        "same_answers": all(c["same_answer"] for c in cases),
    }


def _clear_eqsat_caches() -> None:
    """Reset every eqsat-only memo so each timed on-arm compile pays the
    full saturation cost (the warm-up would otherwise pre-populate them
    and the A/B would under-report the overhead)."""
    from repro.core import skeleton as _skeleton
    from repro.ir import eqsat as _eqsat

    _eqsat._SATURATE_CACHE.clear()
    _eqsat._semantic_rule_canon.cache_clear()
    _skeleton._semantic_dest_sets.cache_clear()


def _candidate_product(spec, device, extra: int, tslice: float,
                       seed: int, eqsat: bool) -> int:
    """Static size of the enumeration space the encoder bit-blasts for
    one (spec, arm): product over states of the per-state candidate
    counts at the entry lower bound (``Skeleton.candidate_space``)."""
    from repro.core.normalize import prepare_spec
    from repro.core.skeleton import build_skeleton, entry_lower_bound

    opts = _options(True, extra, tslice, seed, eqsat=eqsat)
    prepared, _plan = prepare_spec(
        spec, pipelined=True, minimize_widths=False, fix_varbits=False,
        eqsat=eqsat,
    )
    sk = build_skeleton(
        prepared, device, opts,
        num_entries=entry_lower_bound(prepared, device),
    )
    return sk.candidate_space()["product"]


def _run_eqsat_ab(seed: int, reps: int) -> Dict[str, Any]:
    """Interleaved eqsat on/off A/B over EQSAT_SUITE.

    Both arms compile in-process, alternating case-by-case (order
    reversed on odd reps) so they see the same machine load; rep 0 runs
    an untimed warm-up per arm.  Eqsat-only memo caches are cleared
    before every timed on-arm compile, so the reported walls include the
    full saturation cost.  Besides walls the A/B records, per row: the
    resource answer of each arm (must be identical), a Figure 22 random
    simulation check of the on-arm program against the *input* spec, the
    static candidate-space product of each arm, and the e-graph's own
    saturation stats."""
    from repro.core.validate import random_simulation_check
    from repro.ir.eqsat import saturate_spec

    walls: Dict[str, Dict[str, List[float]]] = {
        arm: {c[0]: [] for c in EQSAT_SUITE} for arm in ("on", "off")
    }
    answers: Dict[str, Dict[str, Any]] = {"on": {}, "off": {}}
    programs: Dict[str, Any] = {}
    for _rep in range(reps):
        for label, kl, extra, tslice, _mut in EQSAT_SUITE:
            spec = benchmark_by_label(label).spec()
            device = tofino_profile(key_limit=kl)
            arms = [("on", True), ("off", False)]
            if _rep % 2:
                arms.reverse()
            for arm, eq in arms:
                if _rep == 0:  # untimed warm-up (imports, pyc, caches)
                    compile_spec(spec, device,
                                 _options(True, extra, tslice, seed,
                                          eqsat=eq))
                if eq:
                    _clear_eqsat_caches()
                t0 = time.monotonic()
                result = compile_spec(
                    spec, device,
                    _options(True, extra, tslice, seed, eqsat=eq))
                walls[arm][label].append(time.monotonic() - t0)
                answers[arm][label] = (
                    result.status,
                    result.num_entries if result.program else None,
                    result.num_stages if result.program else None,
                )
                if eq and result.program is not None:
                    programs[label] = result.program
    cases = []
    logs_all: List[float] = []
    logs_canon_overhead: List[float] = []
    logs_space: List[float] = []
    for label, kl, extra, tslice, mutated in EQSAT_SUITE:
        spec = benchmark_by_label(label).spec()
        device = tofino_profile(key_limit=kl)
        won, woff = walls["on"][label], walls["off"][label]
        speedup = (
            statistics.median(woff) / statistics.median(won)
            if statistics.median(won) else 0.0
        )
        logs_all.append(math.log(max(speedup, 1e-9)))
        if not mutated:
            logs_canon_overhead.append(math.log(max(1.0 / speedup, 1e-9)))
        p_on = _candidate_product(spec, device, extra, tslice, seed, True)
        p_off = _candidate_product(spec, device, extra, tslice, seed, False)
        if mutated:
            logs_space.append(
                math.log(max(p_off, 1) / max(p_on, 1))
            )
        simulated = None
        if label in programs:
            simulated = random_simulation_check(
                spec, programs[label], samples=300, seed=seed
            ).passed
        _saturated, stats = saturate_spec(spec)
        cases.append({
            "case": label,
            "mutated": mutated,
            "key_limit": kl,
            "on_walls": [round(w, 4) for w in won],
            "off_walls": [round(w, 4) for w in woff],
            "speedup": round(speedup, 4),
            "same_answer": answers["on"][label] == answers["off"][label],
            "answer": list(answers["on"][label]),
            "simulation_passed": simulated,
            "candidate_product_on": p_on,
            "candidate_product_off": p_off,
            "eqsat_stats": stats.as_dict(),
            "states_in": len(spec.states),
            "states_canonical": len(_saturated.states),
        })
        print(
            f"{label:36s} on={statistics.median(won):6.2f}s "
            f"off={statistics.median(woff):6.2f}s x{speedup:5.2f} "
            f"space {p_off} -> {p_on} "
            f"same={cases[-1]['same_answer']} sim={simulated}",
            flush=True,
        )
    space_reduction = (
        math.exp(sum(logs_space) / len(logs_space)) if logs_space else 1.0
    )
    return {
        "reps": reps,
        "cases": cases,
        "geomean_speedup": round(
            math.exp(sum(logs_all) / len(logs_all)), 4),
        "canonical_overhead": round(
            math.exp(sum(logs_canon_overhead) / len(logs_canon_overhead)),
            4) if logs_canon_overhead else None,
        "candidate_space_reduction_mutated": round(space_reduction, 4),
        "same_answers": all(c["same_answer"] for c in cases),
        "simulations_passed": all(
            c["simulation_passed"] is not False for c in cases
        ),
    }


def check_eqsat_report(report: Dict[str, Any]) -> List[str]:
    """Acceptance assertions for the eqsat A/B (PR 10)."""
    ab = report["eqsat_ab"]
    failures = []
    if not ab["same_answers"]:
        failures.append("eqsat changed a compile answer")
    if not ab["simulations_passed"]:
        failures.append("an eqsat-compiled program failed simulation")
    if ab["geomean_speedup"] < EQSAT_GEOMEAN_TARGET:
        failures.append(
            f"eqsat geomean x{ab['geomean_speedup']:.3f} < "
            f"x{EQSAT_GEOMEAN_TARGET} (eqsat loses time on net)"
        )
    limit = (
        EQSAT_CANONICAL_OVERHEAD_QUICK if report["quick"]
        else EQSAT_CANONICAL_OVERHEAD_FULL
    )
    if ab["canonical_overhead"] is not None and \
            ab["canonical_overhead"] > limit:
        failures.append(
            f"canonical-row overhead x{ab['canonical_overhead']:.3f} > "
            f"x{limit}"
        )
    if ab["candidate_space_reduction_mutated"] <= 1.0:
        failures.append(
            "no candidate-space reduction on mutated rows "
            f"(x{ab['candidate_space_reduction_mutated']:.3f})"
        )
    for case in ab["cases"]:
        if case["mutated"] and \
                case["candidate_product_on"] > case["candidate_product_off"]:
            failures.append(
                f"candidate space grew on mutated row {case['case']}"
            )
    return failures


def _load_baseline(path: Path) -> Optional[Dict[str, Dict[str, Any]]]:
    """Checked-in PR-4 reuse-on rows keyed by case label, or None."""
    if not path.exists():
        return None
    data = json.loads(path.read_text())
    return {c["case"]: c["reuse_on"] for c in data.get("cases", [])}


def run_bench(quick: bool = False, seed: int = 0,
              baseline_path: Path = DEFAULT_BASELINE,
              pr4_tree: Optional[Path] = None,
              certify_ab: bool = False) -> Dict[str, Any]:
    reps = 1 if quick else 3
    baseline = _load_baseline(baseline_path)
    cases = []
    for label, kl, extra, tslice in SUITE:
        row: Dict[str, Any] = {
            "case": label, "key_limit": kl,
            "max_extra_entries": extra, "time_slice": tslice,
        }
        row["reuse_on"] = _run_case(label, kl, extra, tslice, True,
                                    reps, seed)
        row["reuse_off"] = _run_case(label, kl, extra, tslice, False,
                                     reps, seed)
        on, off = row["reuse_on"], row["reuse_off"]
        row["speedup"] = (
            off["wall_seconds"] / on["wall_seconds"]
            if on["wall_seconds"] else 0.0
        )
        base = baseline.get(label) if baseline else None
        if base:
            row["pr4_wall_seconds"] = base["wall_seconds"]
            row["vs_pr4"] = (
                base["wall_seconds"] / on["wall_seconds"]
                if on["wall_seconds"] else 0.0
            )
            row["pr4_resources_identical"] = (
                on["entries"] == base["entries"]
                and on["stages"] == base["stages"]
                and on["status"] == base["status"]
            )
        vs = f" pr4 x{row['vs_pr4']:.2f}" if base else ""
        cases.append(row)
        print(
            f"{label:30s} on={on['wall_seconds']:6.2f}s "
            f"it={on['cegis_iterations']:3d} "
            f"warm={on['warm_resumes']} | "
            f"off={off['wall_seconds']:6.2f}s "
            f"it={off['cegis_iterations']:3d} | "
            f"x{row['speedup']:.2f}{vs}",
            flush=True,
        )
    geomean = math.exp(
        sum(math.log(max(c["speedup"], 1e-9)) for c in cases) / len(cases)
    )
    with_base = [c for c in cases if "vs_pr4" in c]
    geomean_vs_pr4 = (
        math.exp(sum(math.log(max(c["vs_pr4"], 1e-9)) for c in with_base)
                 / len(with_base))
        if with_base else None
    )
    its_on = sum(c["reuse_on"]["cegis_iterations"] for c in cases)
    its_off = sum(c["reuse_off"]["cegis_iterations"] for c in cases)
    fold = _run_fold_ab(seed)
    gate = _run_gate_cache_ab(seed)
    same_machine = (
        _run_pr4_same_machine_ab(pr4_tree, seed, reps)
        if pr4_tree is not None else None
    )
    certify = _run_certify_ab(seed, reps) if certify_ab else None
    report = {
        "bench": "bench_compile_speed",
        "pr": 5,
        "quick": quick,
        "seed": seed,
        "reps": reps,
        "baseline": str(baseline_path.name) if baseline else None,
        "cases": cases,
        "fold_constants_ab": fold,
        "gate_cache_ab": gate,
        "pr4_same_machine": same_machine,
        "certify_ab": certify,
        "summary": {
            "geomean_speedup": round(geomean, 4),
            "geomean_vs_pr4": (
                round(geomean_vs_pr4, 4)
                if geomean_vs_pr4 is not None else None
            ),
            "total_iterations_reuse_on": its_on,
            "total_iterations_reuse_off": its_off,
            "resources_identical": all(
                c["reuse_on"]["entries"] == c["reuse_off"]["entries"]
                and c["reuse_on"]["stages"] == c["reuse_off"]["stages"]
                and c["reuse_on"]["status"] == c["reuse_off"]["status"]
                for c in cases
            ),
            "pr4_resources_identical": all(
                c.get("pr4_resources_identical", False) for c in with_base
            ) if with_base else None,
            "gate_cache_hits_total": sum(
                c["reuse_on"]["sat_gate_cache_hits"] for c in cases
            ),
            "clause_reduction_fold": round(fold["clause_reduction"], 4),
            "clause_reduction_gate_cache": round(
                gate["clause_reduction"], 4
            ),
            "geomean_vs_pr4_same_machine": (
                same_machine["geomean_median"]
                if same_machine is not None else None
            ),
            "certify_overhead": (
                certify["geomean_overhead"]
                if certify is not None else None
            ),
        },
    }
    return report


def check_report(report: Dict[str, Any]) -> List[str]:
    """Acceptance assertions; returns a list of failure strings."""
    s = report["summary"]
    failures = []
    same_machine = report.get("pr4_same_machine")
    if same_machine is not None:
        # Apples-to-apples run against a pre-PR-5 checkout: the full
        # speedup gate applies to it; the recorded baseline then only
        # needs to clear the cross-machine regression guard.
        if same_machine["geomean_median"] < VS_PR4_TARGET_FULL:
            failures.append(
                f"same-machine geomean vs PR4 "
                f"{same_machine['geomean_median']:.3f} < {VS_PR4_TARGET_FULL}"
            )
        if not same_machine["same_answers"]:
            failures.append("same-machine A/B answers differ from PR4")
        target = VS_PR4_TARGET_QUICK
    else:
        target = (
            VS_PR4_TARGET_QUICK if report["quick"] else VS_PR4_TARGET_FULL
        )
    if report["baseline"] is None:
        failures.append("baseline BENCH_pr4.json not found")
    elif s["geomean_vs_pr4"] < target:
        failures.append(
            f"geomean vs PR4 {s['geomean_vs_pr4']:.3f} < {target}"
        )
    elif s["pr4_resources_identical"] is not True:
        failures.append(
            "resource counts or statuses differ from the PR4 baseline"
        )
    if s["total_iterations_reuse_on"] >= s["total_iterations_reuse_off"]:
        failures.append(
            f"reuse-on iterations {s['total_iterations_reuse_on']} not "
            f"strictly fewer than {s['total_iterations_reuse_off']}"
        )
    if not s["resources_identical"]:
        failures.append("resource counts differ between reuse modes")
    fold = report["fold_constants_ab"]
    if fold["clause_reduction"] <= 0:
        failures.append("constant folding did not reduce emitted clauses")
    if not (fold["same_status"] and fold["same_entries"]):
        failures.append("constant folding changed a compile answer")
    gate = report["gate_cache_ab"]
    if gate["clause_reduction"] <= 0:
        failures.append("gate cache did not reduce emitted clauses")
    if not (gate["same_status"] and gate["same_entries"]):
        failures.append("gate cache changed a compile answer")
    certify = report.get("certify_ab")
    if certify is not None:
        if certify["geomean_overhead"] > CERTIFY_OVERHEAD_LIMIT:
            failures.append(
                f"certify overhead x{certify['geomean_overhead']:.3f} > "
                f"x{CERTIFY_OVERHEAD_LIMIT}"
            )
        if not certify["same_answers"]:
            failures.append("proof logging changed a compile answer")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="single repetition per case (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless acceptance criteria hold")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_pr5.json"))
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="checked-in PR4 report to compare against")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pr4-tree", default=None,
                        help="checkout of the pre-PR-5 commit; enables the "
                             "interleaved same-machine A/B (see module doc)")
    parser.add_argument("--certify-ab", action="store_true",
                        help="also run the interleaved certify on/off A/B "
                             "(proof-logging overhead must stay <= "
                             f"{CERTIFY_OVERHEAD_LIMIT}x with --check)")
    parser.add_argument("--eqsat-ab", action="store_true",
                        help="run ONLY the equality-saturation on/off A/B "
                             "(PR 10) and write its report to --output; "
                             "--check then gates identical answers, "
                             "simulation, candidate-space reduction on "
                             "mutated rows, and the canonical-row "
                             "overhead limit")
    args = parser.parse_args(argv)

    if args.eqsat_ab:
        reps = 1 if args.quick else 3
        report = {
            "bench": "bench_compile_speed",
            "mode": "eqsat_ab",
            "pr": 10,
            "quick": args.quick,
            "seed": args.seed,
            "eqsat_ab": _run_eqsat_ab(args.seed, reps),
        }
        Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
        ab = report["eqsat_ab"]
        overhead = (
            f"x{ab['canonical_overhead']:.3f}"
            if ab["canonical_overhead"] is not None else "n/a"
        )
        print(
            f"\neqsat A/B: geomean x{ab['geomean_speedup']:.3f}  "
            f"canonical-row overhead {overhead}  "
            f"mutated candidate-space reduction "
            f"x{ab['candidate_space_reduction_mutated']:.3f}  "
            f"same_answers={ab['same_answers']}  "
            f"simulations_passed={ab['simulations_passed']}"
        )
        print(f"wrote {args.output}")
        if args.check:
            failures = check_eqsat_report(report)
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1 if failures else 0
        return 0

    report = run_bench(quick=args.quick, seed=args.seed,
                       pr4_tree=Path(args.pr4_tree) if args.pr4_tree else None,
                       baseline_path=Path(args.baseline),
                       certify_ab=args.certify_ab)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    s = report["summary"]
    vs = (
        f"{s['geomean_vs_pr4']:.3f}" if s["geomean_vs_pr4"] is not None
        else "n/a"
    )
    print(
        f"\ngeomean vs PR4 {vs}  reuse on/off {s['geomean_speedup']:.3f}  "
        f"iterations {s['total_iterations_reuse_on']} vs "
        f"{s['total_iterations_reuse_off']}  "
        f"resources_identical={s['resources_identical']}  "
        f"pr4_resources_identical={s['pr4_resources_identical']}  "
        f"fold clause reduction "
        f"{100 * s['clause_reduction_fold']:.1f}%  "
        f"gate-cache clause reduction "
        f"{100 * s['clause_reduction_gate_cache']:.1f}%"
    )
    if report["pr4_same_machine"] is not None:
        sm = report["pr4_same_machine"]
        print(
            f"same-machine vs PR4: geomean median "
            f"x{sm['geomean_median']:.3f}  min x{sm['geomean_min']:.3f}  "
            f"same_answers={sm['same_answers']}"
        )
    if report["certify_ab"] is not None:
        cab = report["certify_ab"]
        print(
            f"certify A/B: geomean overhead x{cab['geomean_overhead']:.3f} "
            f"(limit x{CERTIFY_OVERHEAD_LIMIT})  "
            f"same_answers={cab['same_answers']}"
        )
    print(f"wrote {args.output}")
    if args.check:
        failures = check_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
