"""Incremental-synthesis perf baseline: test reuse ON vs OFF.

Measures what the PR-4 incremental synthesis engine buys: each case
compiles one benchmark spec twice — with ``test_reuse`` (shared
:class:`~repro.core.testpool.TestPool` + warm :class:`CegisSession`
continuation across time slices) and with ``--no-test-reuse`` semantics
(cold re-run per slice, the pre-incremental baseline) — and records wall
clock, CEGIS iterations, SAT conflicts and emitted clauses for both.

The suite deliberately pins budgets (``max_extra_entries`` 0–2) and sets
each case's time slice below its winner's solve time, so every case
exercises the escalation schedule's retry path: the baseline repeats the
expired attempt's solves and verifications from scratch, the incremental
engine continues them.  Pinning also keeps the winning budget — and with
it the resource counts — identical between modes, which ``--check``
asserts.

A second, independent A/B toggles the bit-blaster's constant folding
(:data:`repro.smt.bitblast.FOLD_CONSTANTS`) on one mid-sized case and
records the emitted-clause counts, statuses and resource counts for
both, demonstrating folding shrinks the CNF without changing any answer.

Usage::

    python benchmarks/bench_compile_speed.py [--quick] [--check]
        [--output BENCH_pr4.json] [--seed 0]

``--quick`` runs one repetition per case (CI perf-smoke); the default is
three repetitions with the median wall time reported.  ``--check`` exits
non-zero unless reuse-on beats reuse-off by the expected margin (1.3x
geomean full, no-regression quick), uses strictly fewer total CEGIS
iterations, and matches resource counts case by case.
"""

from __future__ import annotations

import argparse
import json
import math
import statistics
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchgen.suites import benchmark_by_label  # noqa: E402
from repro.core.compiler import compile_spec  # noqa: E402
from repro.core.options import CompileOptions  # noqa: E402
from repro.hw.device import tofino_profile  # noqa: E402
from repro.smt import bitblast  # noqa: E402

# (label, key_limit, max_extra_entries, budget_time_slice).  Slices sit
# below each case's measured winner time so the schedule retries; pinned
# entry budgets keep the winner identical across modes.  The last case is
# infeasible at its budget — it measures UNSAT *retirement* speed.
SUITE = [
    ("Sai V2", 8, 0, 0.25),
    ("Finance feed", 5, 2, 0.5),
    ("Large tran key", 8, 2, 0.25),
    ("Multi-keys (diff pkt fields)", 4, 0, 0.1),
    ("Dash V2", 4, 0, 0.05),
    ("Sai V1", 8, 0, 0.05),
    ("Multi-key (same pkt field)", 4, 0, 0.25),
]

# Constant folding at the *gate* level only matters where constants
# reach the bit-blaster unfolded.  The default compile path (§6.4
# constant synthesis) matches candidate constants concretely, so the A/B
# runs the paper's ablation arm (opt4 off): its free value/mask encoding
# floods the blaster with per-bit constant AND inputs.
FOLD_CASE = ("Multi-keys (diff pkt fields)", 6)

GEOMEAN_TARGET_FULL = 1.3
GEOMEAN_TARGET_QUICK = 1.0


def _options(reuse: bool, extra: int, tslice: float,
             seed: int) -> CompileOptions:
    return CompileOptions(
        test_reuse=reuse,
        seed=seed,
        # Paper-fidelity seeding (one random test): counterexamples carry
        # the run, which is the regime incremental reuse targets.
        directed_seed_tests=False,
        total_max_seconds=120,
        budget_time_slice=tslice,
        max_extra_entries=extra,
    )


def _run_case(label: str, kl: int, extra: int, tslice: float,
              reuse: bool, reps: int, seed: int) -> Dict[str, Any]:
    spec = benchmark_by_label(label).spec()
    device = tofino_profile(key_limit=kl)
    walls: List[float] = []
    result = None
    for _ in range(reps):
        t0 = time.monotonic()
        result = compile_spec(spec, device, _options(reuse, extra,
                                                     tslice, seed))
        walls.append(time.monotonic() - t0)
    stats = result.stats
    return {
        "status": result.status,
        "wall_seconds": statistics.median(walls),
        "wall_all": [round(w, 4) for w in walls],
        "cegis_iterations": stats.cegis_iterations,
        "sat_conflicts": stats.sat_conflicts,
        "sat_clauses_added": stats.sat_clauses_added,
        "pool_tests_reused": stats.pool_tests_reused,
        "warm_resumes": stats.warm_resumes,
        "budget_retries": stats.budget_retries,
        "entries": result.num_entries if result.program else None,
        "stages": result.num_stages if result.program else None,
    }


def _run_fold_ab(seed: int) -> Dict[str, Any]:
    """Constant-folding A/B on one case: clause counts with the gate
    folding on vs off, same compile otherwise.  Toggles the module flag
    so every solver the compile builds inherits the setting."""
    label, kl = FOLD_CASE
    spec = benchmark_by_label(label).spec()
    device = tofino_profile(key_limit=kl)
    out: Dict[str, Any] = {"case": label, "opt4_constant_synthesis": False}
    saved = bitblast.FOLD_CONSTANTS
    try:
        for fold in (True, False):
            bitblast.FOLD_CONSTANTS = fold
            opts = CompileOptions(
                test_reuse=True,
                seed=seed,
                directed_seed_tests=False,
                total_max_seconds=120,
                budget_time_slice=30.0,
                opt4_constant_synthesis=False,
            )
            result = compile_spec(spec, device, opts)
            out["fold_on" if fold else "fold_off"] = {
                "status": result.status,
                "sat_clauses_added": result.stats.sat_clauses_added,
                "entries": result.num_entries if result.program else None,
            }
    finally:
        bitblast.FOLD_CONSTANTS = saved
    on, off = out["fold_on"], out["fold_off"]
    out["clause_reduction"] = (
        1.0 - on["sat_clauses_added"] / off["sat_clauses_added"]
        if off["sat_clauses_added"] else 0.0
    )
    out["same_status"] = on["status"] == off["status"]
    out["same_entries"] = on["entries"] == off["entries"]
    return out


def run_bench(quick: bool = False, seed: int = 0) -> Dict[str, Any]:
    reps = 1 if quick else 3
    cases = []
    for label, kl, extra, tslice in SUITE:
        row: Dict[str, Any] = {
            "case": label, "key_limit": kl,
            "max_extra_entries": extra, "time_slice": tslice,
        }
        row["reuse_on"] = _run_case(label, kl, extra, tslice, True,
                                    reps, seed)
        row["reuse_off"] = _run_case(label, kl, extra, tslice, False,
                                     reps, seed)
        on, off = row["reuse_on"], row["reuse_off"]
        row["speedup"] = (
            off["wall_seconds"] / on["wall_seconds"]
            if on["wall_seconds"] else 0.0
        )
        cases.append(row)
        print(
            f"{label:30s} on={on['wall_seconds']:6.2f}s "
            f"it={on['cegis_iterations']:3d} "
            f"warm={on['warm_resumes']} | "
            f"off={off['wall_seconds']:6.2f}s "
            f"it={off['cegis_iterations']:3d} | "
            f"x{row['speedup']:.2f}",
            flush=True,
        )
    geomean = math.exp(
        sum(math.log(max(c["speedup"], 1e-9)) for c in cases) / len(cases)
    )
    its_on = sum(c["reuse_on"]["cegis_iterations"] for c in cases)
    its_off = sum(c["reuse_off"]["cegis_iterations"] for c in cases)
    fold = _run_fold_ab(seed)
    report = {
        "bench": "bench_compile_speed",
        "pr": 4,
        "quick": quick,
        "seed": seed,
        "reps": reps,
        "cases": cases,
        "fold_constants_ab": fold,
        "summary": {
            "geomean_speedup": round(geomean, 4),
            "total_iterations_reuse_on": its_on,
            "total_iterations_reuse_off": its_off,
            "resources_identical": all(
                c["reuse_on"]["entries"] == c["reuse_off"]["entries"]
                and c["reuse_on"]["stages"] == c["reuse_off"]["stages"]
                and c["reuse_on"]["status"] == c["reuse_off"]["status"]
                for c in cases
            ),
            "clause_reduction_fold": round(fold["clause_reduction"], 4),
        },
    }
    return report


def check_report(report: Dict[str, Any]) -> List[str]:
    """Acceptance assertions; returns a list of failure strings."""
    s = report["summary"]
    target = GEOMEAN_TARGET_QUICK if report["quick"] else GEOMEAN_TARGET_FULL
    failures = []
    if s["geomean_speedup"] < target:
        failures.append(
            f"geomean speedup {s['geomean_speedup']:.3f} < {target}"
        )
    if s["total_iterations_reuse_on"] >= s["total_iterations_reuse_off"]:
        failures.append(
            f"reuse-on iterations {s['total_iterations_reuse_on']} not "
            f"strictly fewer than {s['total_iterations_reuse_off']}"
        )
    if not s["resources_identical"]:
        failures.append("resource counts differ between reuse modes")
    fold = report["fold_constants_ab"]
    if fold["clause_reduction"] <= 0:
        failures.append("constant folding did not reduce emitted clauses")
    if not (fold["same_status"] and fold["same_entries"]):
        failures.append("constant folding changed a compile answer")
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="single repetition per case (CI smoke)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless acceptance criteria hold")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_pr4.json"))
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    report = run_bench(quick=args.quick, seed=args.seed)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    s = report["summary"]
    print(
        f"\ngeomean speedup {s['geomean_speedup']:.3f}  "
        f"iterations {s['total_iterations_reuse_on']} vs "
        f"{s['total_iterations_reuse_off']}  "
        f"resources_identical={s['resources_identical']}  "
        f"fold clause reduction "
        f"{100 * s['clause_reduction_fold']:.1f}%"
    )
    print(f"wrote {args.output}")
    if args.check:
        failures = check_report(report)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
