"""Exporters for traces: JSON span trees and pretty-text summaries."""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Union

from .tracer import Span, Tracer

Traceable = Union[Tracer, Span, Dict[str, Any]]


def _root_span(trace: Traceable) -> Span:
    if isinstance(trace, Tracer):
        return trace.finish()
    if isinstance(trace, dict):
        return Span.from_dict(trace)
    return trace


def to_dict(trace: Traceable) -> Dict[str, Any]:
    return _root_span(trace).to_dict()


def to_json(trace: Traceable, indent: int = 2) -> str:
    return json.dumps(to_dict(trace), indent=indent)


def aggregate(trace: Traceable) -> Dict[str, Dict[str, Any]]:
    """Per-span-name totals: call count, wall seconds, summed counters.

    ``seconds`` is inclusive (a span's children are inside its interval),
    so rows don't sum to the root's time — they answer "how long was this
    kind of work on the stack".
    """
    rows: Dict[str, Dict[str, Any]] = {}

    def visit(span: Span) -> None:
        row = rows.setdefault(
            span.name, {"calls": 0, "seconds": 0.0, "counters": {}}
        )
        row["calls"] += 1
        row["seconds"] += span.elapsed()
        for key, value in span.counters.items():
            row["counters"][key] = row["counters"].get(key, 0) + value
        for child in span.children:
            visit(child)

    visit(_root_span(trace))
    return rows


def _render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = [" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def _fmt_counters(counters: Dict[str, Any]) -> str:
    parts = []
    for key in sorted(counters):
        value = counters[key]
        if isinstance(value, float):
            parts.append(f"{key}={value:g}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def format_profile(trace: Traceable) -> str:
    """A per-span-name summary table (the ``--profile`` output)."""
    root = _root_span(trace)
    rows = aggregate(root)
    total = root.elapsed() or 1e-9
    body: List[List[str]] = []
    for name, row in sorted(
        rows.items(), key=lambda kv: kv[1]["seconds"], reverse=True
    ):
        body.append([
            name,
            str(row["calls"]),
            f"{row['seconds']:.3f}",
            f"{100.0 * row['seconds'] / total:.1f}%",
            _fmt_counters(row["counters"]),
        ])
    return _render_table(
        ["span", "calls", "seconds", "% of total", "counters"], body
    )


def format_span_tree(
    trace: Traceable, max_depth: int = 0, min_seconds: float = 0.0
) -> str:
    """An indented rendering of the span tree.

    ``max_depth=0`` means unlimited; ``min_seconds`` prunes fast leaves
    (their parent gets a ``... (+N pruned)`` marker) so benchmark reports
    stay readable."""
    lines: List[str] = []

    def visit(span: Span, depth: int) -> None:
        indent = "  " * depth
        extra = f"  [{_fmt_counters(span.counters)}]" if span.counters else ""
        attrs = (
            " ".join(f"{k}={v}" for k, v in span.attrs.items())
        )
        attrs = f" ({attrs})" if attrs else ""
        lines.append(
            f"{indent}{span.name}{attrs}: {span.elapsed():.3f}s{extra}"
        )
        if max_depth and depth + 1 >= max_depth:
            if span.children:
                lines.append(f"{indent}  ... (+{len(span.children)} pruned)")
            return
        pruned = 0
        for child in span.children:
            if child.elapsed() < min_seconds and not child.children:
                pruned += 1
                continue
            visit(child, depth + 1)
        if pruned:
            lines.append(f"{indent}  ... (+{pruned} pruned)")

    visit(_root_span(trace), 0)
    return "\n".join(lines)
