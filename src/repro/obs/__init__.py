"""Observability: structured tracing + metrics for the compile pipeline.

Quick start::

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        result = compile_spec(spec, device)
    print(tracer.render_profile())
    open("trace.json", "w").write(tracer.export_json())

The default ambient tracer is a no-op (:class:`NullTracer`); instrumented
code calls :func:`get_tracer` and pays near-zero cost when tracing is off.
"""

from .export import aggregate, format_profile, format_span_tree, to_json
from .registry import CounterRegistry
from .tracer import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "CounterRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "aggregate",
    "format_profile",
    "format_span_tree",
    "get_tracer",
    "set_tracer",
    "to_json",
    "use_tracer",
]
