"""Flat, mergeable counter registry.

Processes don't share memory, so "process-safe" here means *snapshot and
merge*: a ``ProcessPoolExecutor`` worker accumulates into its own
registry, ships :meth:`CounterRegistry.snapshot` back with its result,
and the parent folds it in with :meth:`CounterRegistry.merge`.  Within a
process the registry is thread-safe.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping, Tuple, Union

Number = Union[int, float]


class CounterRegistry:
    """Named monotonic counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: Dict[str, Number] = {}

    def add(self, name: str, delta: Number = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + delta

    def get(self, name: str, default: Number = 0) -> Number:
        return self._counts.get(name, default)

    def snapshot(self) -> Dict[str, Number]:
        """A picklable copy, suitable for crossing a process boundary."""
        with self._lock:
            return dict(self._counts)

    def merge(self, other: Mapping[str, Number]) -> None:
        """Fold another registry's snapshot into this one."""
        with self._lock:
            for name, value in other.items():
                self._counts[name] = self._counts.get(name, 0) + value

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()

    def items(self) -> Iterator[Tuple[str, Number]]:
        return iter(self.snapshot().items())

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __repr__(self) -> str:
        return f"CounterRegistry({self._counts!r})"
