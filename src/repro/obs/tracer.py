"""Structured tracing for the compile pipeline.

A :class:`Tracer` records a tree of :class:`Span` objects — one per unit
of pipeline work (compile → portfolio arm → budget attempt → CEGIS
iteration → SAT solve / verify) — each with wall time, free-form
attributes, and named counters (conflicts, decisions, propagations,
counterexamples, budgets retired, ...).

The ambient tracer is resolved with :func:`get_tracer`; the default is a
:class:`NullTracer` whose spans still measure wall time (so
``CompileStats`` timing derives from spans uniformly) but record nothing
else, keeping the disabled-path overhead to two clock reads and one small
allocation per span.

Worker processes cannot share a tracer with their parent.  Instead a
worker runs under its own ``Tracer``, serializes the finished span tree
with :meth:`Span.to_dict` plus a :class:`~repro.obs.registry.CounterRegistry`
snapshot, and the parent grafts them back with :meth:`Tracer.attach` /
``registry.merge`` (see ``core/parallel.py``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Union

from .registry import CounterRegistry

Number = Union[int, float]


class Span:
    """One timed unit of work; a context manager.

    Spans created by a real :class:`Tracer` are linked into its tree on
    ``__enter__``; free-floating spans (from :class:`NullTracer`) only
    measure wall time.
    """

    __slots__ = ("name", "attrs", "start", "end", "counters", "children",
                 "_tracer", "_seconds")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = attrs or {}
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.counters: Dict[str, Number] = {}
        self.children: List["Span"] = []
        self._tracer = tracer
        self._seconds: Optional[float] = None  # fixed value for rehydrated spans

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "Span":
        self.start = time.monotonic()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, *_exc) -> bool:
        self.end = time.monotonic()
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- data ------------------------------------------------------------
    def elapsed(self) -> float:
        """Wall seconds; live spans report time-so-far."""
        if self._seconds is not None:
            return self._seconds
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.monotonic()
        return end - self.start

    def count(self, name: str, delta: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def total(self, counter: str) -> Number:
        """Sum of ``counter`` over this span and all descendants."""
        value: Number = self.counters.get(counter, 0)
        for child in self.children:
            value += child.total(counter)
        return value

    def counter_totals(self) -> Dict[str, Number]:
        """All counters summed over the subtree rooted here."""
        totals: Dict[str, Number] = dict(self.counters)
        for child in self.children:
            for key, value in child.counter_totals().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # -- (de)serialization -----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "name": self.name,
            "seconds": round(self.elapsed(), 6),
        }
        if self.attrs:
            doc["attrs"] = dict(self.attrs)
        if self.counters:
            doc["counters"] = dict(self.counters)
        if self.children:
            doc["children"] = [c.to_dict() for c in self.children]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Span":
        span = cls(doc.get("name", "?"), attrs=dict(doc.get("attrs", {})))
        span._seconds = float(doc.get("seconds", 0.0))
        span.counters = dict(doc.get("counters", {}))
        span.children = [cls.from_dict(c) for c in doc.get("children", [])]
        return span

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.elapsed():.4f}s, "
            f"{len(self.children)} child(ren))"
        )


class Tracer:
    """Records a span tree plus a flat counter registry."""

    enabled = True

    def __init__(self, name: str = "trace") -> None:
        self.registry = CounterRegistry()
        self.root = Span(name)
        self.root.start = time.monotonic()
        self._stack: List[Span] = [self.root]

    # -- span plumbing ---------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A new span; entering it nests it under the current span."""
        return Span(name, attrs=attrs or None, tracer=self)

    def _push(self, span: Span) -> None:
        self._stack[-1].children.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exits out of order (e.g. an exception unwound through
        # several spans): pop back to just below `span`.
        while len(self._stack) > 1:
            top = self._stack.pop()
            if top is span:
                break

    @property
    def current(self) -> Span:
        return self._stack[-1]

    # -- counters ----------------------------------------------------------
    def count(self, name: str, delta: Number = 1) -> None:
        """Add to the current span's counters and the flat registry."""
        self._stack[-1].count(name, delta)
        self.registry.add(name, delta)

    # -- worker merge ------------------------------------------------------
    def attach(self, span: Union[Span, Dict[str, Any]]) -> Span:
        """Graft a finished span (or its dict form) under the current span.

        Used to merge span trees exported by ``ProcessPoolExecutor``
        workers back into the parent's trace."""
        if isinstance(span, dict):
            span = Span.from_dict(span)
        self._stack[-1].children.append(span)
        return span

    # -- export ------------------------------------------------------------
    def finish(self) -> Span:
        """Close the root span (idempotent) and return it."""
        if self.root.end is None:
            self.root.end = time.monotonic()
        return self.root

    def to_dict(self) -> Dict[str, Any]:
        return self.finish().to_dict()

    def export_json(self, indent: int = 2) -> str:
        from .export import to_json

        return to_json(self, indent=indent)

    def render_profile(self) -> str:
        from .export import format_profile

        return format_profile(self)


class NullTracer:
    """Default no-op tracer: spans time themselves but nothing is kept."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> Span:
        return Span(name)

    def count(self, name: str, delta: Number = 1) -> None:
        pass

    def attach(self, span: Union[Span, Dict[str, Any]]) -> None:
        pass


_NULL_TRACER = NullTracer()
_current: ContextVar[Union[Tracer, NullTracer]] = ContextVar(
    "repro_tracer", default=_NULL_TRACER
)


def get_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (a :class:`NullTracer` unless one is installed)."""
    return _current.get()


def set_tracer(tracer: Optional[Union[Tracer, NullTracer]]) -> None:
    _current.set(tracer if tracer is not None else _NULL_TRACER)


@contextmanager
def use_tracer(
    tracer: Optional[Union[Tracer, NullTracer]]
) -> Iterator[Union[Tracer, NullTracer]]:
    """Install ``tracer`` as the ambient tracer for the dynamic extent."""
    tracer = tracer if tracer is not None else _NULL_TRACER
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)
