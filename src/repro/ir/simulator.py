"""Reference simulator for parser specifications: ``Spec(I) -> OD``.

This is the executable ground truth the CEGIS loop verifies against (the
paper simulates the parser "using Python execution" to produce test-case
outputs, §5.2; this module is that execution).

Semantics choices (documented here because every downstream component —
synthesis encoder, implementation simulator, baselines — must agree):

* Input runs out mid-extraction or mid-lookahead  ->  ``reject``
  (P4's PacketTooShort behaviour).
* A select with no matching rule                  ->  ``reject``
  (P4-16 semantics: missing default means error.NoMatch / reject).
* A select key that references a field the path never extracted raises
  :class:`SimulationError` — that is a specification bug, not a packet
  outcome, and the static analysis in :mod:`repro.ir.analysis` flags it.
* Loops are bounded by ``max_steps``; exceeding it yields ``overrun``.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from .bits import Bits
from .spec import ACCEPT, REJECT, FieldKey, LookaheadKey, ParserSpec

OUTCOME_ACCEPT = "accept"
OUTCOME_REJECT = "reject"
OUTCOME_OVERRUN = "overrun"


class SimulationError(Exception):
    """The specification itself misbehaved (not a packet-dependent event)."""


@dataclass
class ParseResult:
    """Outcome of parsing one input bitstream."""

    outcome: str
    od: Dict[str, int] = dc_field(default_factory=dict)
    od_widths: Dict[str, int] = dc_field(default_factory=dict)
    consumed: int = 0
    path: List[str] = dc_field(default_factory=list)

    @property
    def accepted(self) -> bool:
        return self.outcome == OUTCOME_ACCEPT

    def same_output(self, other: "ParseResult") -> bool:
        """Dictionary equality as defined in §4: same outcome, same fields,
        same values (varbit fields must also agree on actual width)."""
        return (
            self.outcome == other.outcome
            and self.od == other.od
            and self.od_widths == other.od_widths
        )

    def describe_difference(self, other: "ParseResult") -> str:
        if self.outcome != other.outcome:
            return f"outcome {self.outcome} vs {other.outcome}"
        for key in sorted(set(self.od) | set(other.od)):
            mine = self.od.get(key)
            theirs = other.od.get(key)
            if mine != theirs:
                return f"field {key}: {mine} vs {theirs}"
            if self.od_widths.get(key) != other.od_widths.get(key):
                return (
                    f"field {key} width: {self.od_widths.get(key)} "
                    f"vs {other.od_widths.get(key)}"
                )
        return "no difference"


def equivalent_behavior(a: ParseResult, b: ParseResult) -> bool:
    """The §4 correctness relation used by CEGIS: outcomes must agree, and
    accepted packets must yield identical output dictionaries.  Rejected
    packets are dropped by the device, so their partial dictionaries are
    not observable and are not compared."""
    if a.outcome != b.outcome:
        return False
    if a.outcome != OUTCOME_ACCEPT:
        return True
    return a.od == b.od and a.od_widths == b.od_widths


def simulate_spec(spec: ParserSpec, bits: Bits, max_steps: int = 64) -> ParseResult:
    """Run the specification FSM on an input bitstream."""
    od: Dict[str, int] = {}
    od_widths: Dict[str, int] = {}
    path: List[str] = []
    stack_counts: Dict[str, int] = {}
    cursor = 0
    current = spec.start
    for _ in range(max_steps):
        state = spec.states[current]
        path.append(current)
        # 1. Extraction.
        for fname in state.extracts:
            fdef = spec.fields[fname]
            if fdef.is_varbit:
                if fdef.length_field is None:
                    raise SimulationError(
                        f"varbit field {fname} has no length binding"
                    )
                if fdef.length_field not in od:
                    raise SimulationError(
                        f"varbit field {fname} length source "
                        f"{fdef.length_field} not yet extracted"
                    )
                width = od[fdef.length_field] * fdef.length_multiplier
                if width > fdef.width:
                    return ParseResult(
                        OUTCOME_REJECT, od, od_widths, cursor, path
                    )
            else:
                width = fdef.width
            if cursor + width > len(bits):
                return ParseResult(OUTCOME_REJECT, od, od_widths, cursor, path)
            if fdef.is_stack:
                index = stack_counts.get(fname, 0)
                if index >= fdef.stack_depth:
                    # Stack overflow rejects the packet; this bounds loops.
                    return ParseResult(OUTCOME_REJECT, od, od_widths, cursor, path)
                stack_counts[fname] = index + 1
                od_key = fdef.instance_key(index)
            else:
                od_key = fname
            od[od_key] = bits.slice(cursor, width).uint() if width else 0
            od_widths[od_key] = width
            cursor += width
        # 2. Transition.
        if state.is_unconditional:
            dest = state.rules[0].next_state
        else:
            key_values: List[int] = []
            key_widths: List[int] = []
            for part in state.key:
                if isinstance(part, FieldKey):
                    fdef = spec.fields[part.field]
                    if fdef.is_stack:
                        count = stack_counts.get(part.field, 0)
                        if count == 0:
                            raise SimulationError(
                                f"state {state.name} keys on empty stack "
                                f"{part.field}"
                            )
                        od_key = fdef.instance_key(count - 1)
                    else:
                        od_key = part.field
                    if od_key not in od:
                        raise SimulationError(
                            f"state {state.name} keys on unextracted field "
                            f"{part.field}"
                        )
                    value = (od[od_key] >> part.lo) & (
                        (1 << part.width) - 1
                    )
                    key_values.append(value)
                    key_widths.append(part.width)
                else:
                    assert isinstance(part, LookaheadKey)
                    start = cursor + part.offset
                    if start + part.width > len(bits):
                        return ParseResult(
                            OUTCOME_REJECT, od, od_widths, cursor, path
                        )
                    key_values.append(bits.slice(start, part.width).uint())
                    key_widths.append(part.width)
            dest = None
            for rule in state.rules:
                if rule.matches(key_values, key_widths):
                    dest = rule.next_state
                    break
            if dest is None:
                return ParseResult(OUTCOME_REJECT, od, od_widths, cursor, path)
        if dest == ACCEPT:
            return ParseResult(OUTCOME_ACCEPT, od, od_widths, cursor, path)
        if dest == REJECT:
            return ParseResult(OUTCOME_REJECT, od, od_widths, cursor, path)
        current = dest
    return ParseResult(OUTCOME_OVERRUN, od, od_widths, cursor, path)


@dataclass
class TraceStep:
    """One state execution in a traced run (used by the directed test
    generator to aim mutations at transition-key bit positions)."""

    state: str
    cursor_at_entry: int
    key_positions: List[int]           # absolute input bit per key bit, MSB first
    key_width: int
    rule_index: Optional[int]          # which rule fired (None = no match)
    key_value: int = 0                 # concatenated key value observed


def trace_spec(
    spec: ParserSpec, bits: Bits, max_steps: int = 64
) -> Tuple[ParseResult, List[TraceStep]]:
    """Like :func:`simulate_spec` but also records, per executed state, the
    absolute input positions feeding its transition key."""
    od: Dict[str, int] = {}
    od_pos: Dict[str, Tuple[int, int]] = {}
    od_widths: Dict[str, int] = {}
    path: List[str] = []
    steps: List[TraceStep] = []
    stack_counts: Dict[str, int] = {}
    cursor = 0
    current = spec.start

    def finish(outcome: str) -> Tuple[ParseResult, List[TraceStep]]:
        return ParseResult(outcome, od, od_widths, cursor, path), steps

    for _ in range(max_steps):
        state = spec.states[current]
        path.append(current)
        entry_cursor = cursor
        for fname in state.extracts:
            fdef = spec.fields[fname]
            if fdef.is_varbit:
                if fdef.length_field is None or fdef.length_field not in od:
                    raise SimulationError(f"varbit {fname} length unavailable")
                width = od[fdef.length_field] * fdef.length_multiplier
                if width > fdef.width:
                    return finish(OUTCOME_REJECT)
            else:
                width = fdef.width
            if cursor + width > len(bits):
                return finish(OUTCOME_REJECT)
            if fdef.is_stack:
                index = stack_counts.get(fname, 0)
                if index >= fdef.stack_depth:
                    return finish(OUTCOME_REJECT)
                stack_counts[fname] = index + 1
                od_key = fdef.instance_key(index)
            else:
                od_key = fname
            od[od_key] = bits.slice(cursor, width).uint() if width else 0
            od_widths[od_key] = width
            od_pos[od_key] = (cursor, width)
            cursor += width
        if state.is_unconditional:
            steps.append(TraceStep(current, entry_cursor, [], 0, 0, 0))
            dest = state.rules[0].next_state
        else:
            positions: List[int] = []
            key_values: List[int] = []
            key_widths: List[int] = []
            short = False
            for part in state.key:
                if isinstance(part, FieldKey):
                    fdef = spec.fields[part.field]
                    if fdef.is_stack:
                        count = stack_counts.get(part.field, 0)
                        if count == 0:
                            raise SimulationError(
                                f"key on empty stack {part.field}"
                            )
                        od_key = fdef.instance_key(count - 1)
                    else:
                        od_key = part.field
                    if od_key not in od:
                        raise SimulationError(
                            f"key on unextracted field {part.field}"
                        )
                    pos, width = od_pos[od_key]
                    for b in range(part.hi, part.lo - 1, -1):
                        positions.append(pos + (width - 1 - b))
                    key_values.append(
                        (od[od_key] >> part.lo) & ((1 << part.width) - 1)
                    )
                    key_widths.append(part.width)
                else:
                    start = cursor + part.offset
                    if start + part.width > len(bits):
                        short = True
                        break
                    positions.extend(range(start, start + part.width))
                    key_values.append(bits.slice(start, part.width).uint())
                    key_widths.append(part.width)
            if short:
                return finish(OUTCOME_REJECT)
            fired = None
            dest = None
            for i, rule in enumerate(state.rules):
                if rule.matches(key_values, key_widths):
                    fired = i
                    dest = rule.next_state
                    break
            combined = 0
            for v, w in zip(key_values, key_widths):
                combined = (combined << w) | v
            steps.append(
                TraceStep(
                    current, entry_cursor, positions, sum(key_widths),
                    fired, combined,
                )
            )
            if dest is None:
                return finish(OUTCOME_REJECT)
        if dest == ACCEPT:
            return finish(OUTCOME_ACCEPT)
        if dest == REJECT:
            return finish(OUTCOME_REJECT)
        current = dest
    return finish(OUTCOME_OVERRUN)


def spec_input_bound(spec: ParserSpec, max_steps: int = 64) -> int:
    """An upper bound on how many input bits any execution can touch
    (extractions plus lookahead reach), used to size verification inputs."""
    per_state: Dict[str, Tuple[int, int]] = {}
    for state in spec.states.values():
        extract = sum(spec.fields[f].width for f in state.extracts)
        reach = 0
        for part in state.key:
            if isinstance(part, LookaheadKey):
                reach = max(reach, part.offset + part.width)
        per_state[state.name] = (extract, reach)
    # Worst case: the deepest chain of states, loops bounded by max_steps.
    worst_extract = max((e for e, _ in per_state.values()), default=0)
    worst_reach = max((r for _, r in per_state.values()), default=0)
    depth = min(max_steps, max(len(spec.states) * 4, 8))
    return depth * worst_extract + worst_reach
