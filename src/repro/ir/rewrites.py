"""Semantic-preserving rewrite rules R1-R5 (paper Figure 21).

The evaluation mutates each benchmark with these rewrites to model the many
ways developers express the same parsing semantics:

* R1  add / remove redundant entries,
* R2  add / remove unreachable entries (and unreachable states),
* R3  split / merge entries (specialize or generalize a mask bit),
* R4  split / merge the transition key across chained states,
* R5  split / merge parser states along extraction boundaries.

Every function takes a :class:`ParserSpec` and returns a new spec; all are
semantics-preserving (property-tested in ``tests/ir/test_rewrites.py``).
A mutation that finds no applicable site returns the spec unchanged —
callers can detect this via identity comparison.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from .analysis import unreachable_states
from .spec import (
    ACCEPT,
    REJECT,
    FieldKey,
    LookaheadKey,
    ParserSpec,
    Rule,
    SpecState,
    ValueMask,
)


def _fresh_name(spec: ParserSpec, base: str) -> str:
    index = 0
    while f"{base}_{index}" in spec.states:
        index += 1
    return f"{base}_{index}"


def _full_mask(pattern: ValueMask, width: int) -> int:
    if pattern.wildcard:
        return 0
    if pattern.mask is None:
        return (1 << width) - 1
    return pattern.mask & ((1 << width) - 1)


# ---------------------------------------------------------------------------
# R1: redundant entries
# ---------------------------------------------------------------------------

def add_redundant_entries(
    spec: ParserSpec, rng: Optional[random.Random] = None, copies: int = 1
) -> ParserSpec:
    """+R1: duplicate an existing rule immediately after itself.  First-match
    semantics make the copy dead weight — unless a compiler blindly allocates
    a TCAM entry for it."""
    rng = rng or random.Random(0)
    candidates = [
        (name, idx)
        for name, state in spec.states.items()
        if not state.is_unconditional
        for idx in range(len(state.rules))
    ]
    if not candidates:
        return spec
    name, idx = rng.choice(candidates)
    state = spec.states[name]
    rules = list(state.rules)
    for _ in range(copies):
        rules.insert(idx + 1, rules[idx])
    return spec.replace_state(
        SpecState(state.name, state.extracts, state.key, tuple(rules))
    )


def remove_redundant_entries(spec: ParserSpec) -> ParserSpec:
    """-R1: drop rules subsumed by an earlier rule with the same destination.

    Rule j is subsumed by earlier rule i when every key value matching j also
    matches i (mask_i ⊆ mask_j bit-wise and values agree on mask_i)."""
    new_states: Dict[str, SpecState] = {}
    changed = False
    for name, state in spec.states.items():
        if state.is_unconditional:
            new_states[name] = state
            continue
        widths = [k.width for k in state.key]
        folded = [rule.combined_value_mask(widths) for rule in state.rules]
        keep: List[Rule] = []
        kept_folded: List[Tuple[int, int, str]] = []
        for rule, (value, mask) in zip(state.rules, folded):
            subsumed = False
            for pv, pm, pdest in kept_folded:
                covers = (pm & mask) == pm and (value & pm) == (pv & pm)
                if covers and pdest == rule.next_state:
                    subsumed = True
                    break
            if subsumed:
                changed = True
                continue
            keep.append(rule)
            kept_folded.append((value, mask, rule.next_state))
        new_states[name] = SpecState(
            state.name, state.extracts, state.key, tuple(keep)
        )
    if not changed:
        return spec
    return spec.with_states(new_states, spec.start, spec.state_order)


# ---------------------------------------------------------------------------
# R2: unreachable entries / states
# ---------------------------------------------------------------------------

def add_unreachable_entries(
    spec: ParserSpec, rng: Optional[random.Random] = None
) -> ParserSpec:
    """+R2: append a rule after a catch-all rule (it can never fire), or —
    when no state ends in a catch-all — add an entire unreachable state."""
    rng = rng or random.Random(0)
    candidates = []
    for name, state in spec.states.items():
        if state.is_unconditional:
            continue
        widths = [k.width for k in state.key]
        for idx, rule in enumerate(state.rules):
            _value, mask = rule.combined_value_mask(widths)
            if mask == 0:  # catch-all: anything after it is dead
                candidates.append((name, idx))
                break
    if candidates:
        name, idx = rng.choice(candidates)
        state = spec.states[name]
        dead_dest = rng.choice(
            [ACCEPT, REJECT] + [s for s in spec.states if s != name]
        )
        dead = Rule(
            tuple(ValueMask(0) for _ in state.key), dead_dest
        )
        rules = list(state.rules)
        rules.insert(idx + 1, dead)
        return spec.replace_state(
            SpecState(state.name, state.extracts, state.key, tuple(rules))
        )
    # Fall back: a whole state nothing transitions to.
    orphan = _fresh_name(spec, "orphan")
    states = dict(spec.states)
    states[orphan] = SpecState(orphan, (), (), (Rule((), ACCEPT),))
    return spec.with_states(states, spec.start, spec.state_order + [orphan])


def remove_unreachable_entries(spec: ParserSpec) -> ParserSpec:
    """-R2: drop rules after a catch-all and drop unreachable states."""
    new_states: Dict[str, SpecState] = {}
    for name, state in spec.states.items():
        if state.is_unconditional:
            new_states[name] = state
            continue
        widths = [k.width for k in state.key]
        keep: List[Rule] = []
        for rule in state.rules:
            keep.append(rule)
            _value, mask = rule.combined_value_mask(widths)
            if mask == 0:
                break  # everything after a catch-all is unreachable
        new_states[name] = SpecState(
            state.name, state.extracts, state.key, tuple(keep)
        )
    trimmed = spec.with_states(new_states, spec.start, spec.state_order)
    dead = unreachable_states(trimmed)
    if not dead:
        return trimmed
    kept = {n: s for n, s in trimmed.states.items() if n not in dead}
    order = [n for n in trimmed.state_order if n not in dead]
    return trimmed.with_states(kept, trimmed.start, order)


# ---------------------------------------------------------------------------
# R3: split / merge entries
# ---------------------------------------------------------------------------

def split_entries(
    spec: ParserSpec, rng: Optional[random.Random] = None
) -> ParserSpec:
    """+R3: replace one rule having a wildcard bit with the two rules that
    specialize that bit (same destination, same position in the list)."""
    rng = rng or random.Random(0)
    candidates = []
    for name, state in spec.states.items():
        if state.is_unconditional:
            continue
        widths = [k.width for k in state.key]
        total = sum(widths)
        for idx, rule in enumerate(state.rules):
            value, mask = rule.combined_value_mask(widths)
            free_bits = [
                b for b in range(total) if not (mask >> b) & 1
            ]
            if free_bits:
                candidates.append((name, idx, free_bits))
    if not candidates:
        return spec
    name, idx, free_bits = rng.choice(candidates)
    bit = rng.choice(free_bits)
    state = spec.states[name]
    widths = [k.width for k in state.key]
    value, mask = state.rules[idx].combined_value_mask(widths)
    new_mask = mask | (1 << bit)
    rules = list(state.rules)
    dest = rules[idx].next_state
    rule0 = _rule_from_folded(value & ~(1 << bit), new_mask, widths, dest)
    rule1 = _rule_from_folded(value | (1 << bit), new_mask, widths, dest)
    rules[idx : idx + 1] = [rule0, rule1]
    return spec.replace_state(
        SpecState(state.name, state.extracts, state.key, tuple(rules))
    )


def merge_entries(spec: ParserSpec) -> ParserSpec:
    """-R3: merge adjacent rule pairs with identical masks and destinations
    whose values differ in exactly one mask bit."""
    new_states: Dict[str, SpecState] = {}
    changed = False
    for name, state in spec.states.items():
        if state.is_unconditional:
            new_states[name] = state
            continue
        widths = [k.width for k in state.key]
        rules = list(state.rules)
        merged = True
        while merged:
            merged = False
            for i in range(len(rules) - 1):
                a, b = rules[i], rules[i + 1]
                if a.next_state != b.next_state:
                    continue
                av, am = a.combined_value_mask(widths)
                bv, bm = b.combined_value_mask(widths)
                if am != bm:
                    continue
                diff = (av ^ bv) & am
                if diff and (diff & (diff - 1)) == 0:
                    new_mask = am & ~diff
                    rules[i : i + 2] = [
                        _rule_from_folded(
                            av & new_mask, new_mask, widths, a.next_state
                        )
                    ]
                    merged = True
                    changed = True
                    break
        new_states[name] = SpecState(
            state.name, state.extracts, state.key, tuple(rules)
        )
    if not changed:
        return spec
    return spec.with_states(new_states, spec.start, spec.state_order)


def _rule_from_folded(
    value: int, mask: int, widths: List[int], dest: str
) -> Rule:
    """Unfold a whole-key (value, mask) back into per-key-part patterns."""
    patterns: List[ValueMask] = []
    remaining = sum(widths)
    for width in widths:
        remaining -= width
        part_value = (value >> remaining) & ((1 << width) - 1)
        part_mask = (mask >> remaining) & ((1 << width) - 1)
        if part_mask == 0:
            patterns.append(ValueMask(0, wildcard=True))
        elif part_mask == (1 << width) - 1:
            patterns.append(ValueMask(part_value))
        else:
            patterns.append(ValueMask(part_value, part_mask))
    return Rule(tuple(patterns), dest)


# ---------------------------------------------------------------------------
# R4: split / merge the transition key
# ---------------------------------------------------------------------------

def split_transition_key(
    spec: ParserSpec,
    state_name: Optional[str] = None,
    split_at: Optional[int] = None,
) -> ParserSpec:
    """+R4: split one state's wide key check into a two-level chain.

    The state keeps the high ``key_width - split_at`` bits of its key; for
    every distinct high-part among its rules a fresh chained state checks the
    low ``split_at`` bits.  The chained states extract nothing, so lookahead
    offsets and field references remain valid.  Rules with wildcard bits
    inside the split boundary are left alone (a site with only maskable
    rules is chosen automatically when ``state_name`` is None)."""
    target = None
    for name, state in spec.states.items():
        if state_name is not None and name != state_name:
            continue
        if state.is_unconditional or state.key_width < 2:
            continue
        target = state
        break
    if target is None:
        return spec
    widths = [k.width for k in target.key]
    total = sum(widths)
    cut = split_at if split_at is not None else total // 2
    if not 0 < cut < total:
        return spec

    folded = [r.combined_value_mask(widths) for r in target.rules]
    low_mask_all = (1 << cut) - 1

    # Find the trailing catch-all (default) if present.
    default_dest = None
    body = list(zip(target.rules, folded))
    if body and folded[-1][1] == 0:
        default_dest = target.rules[-1].next_state
        body = body[:-1]
    # Bail out when any non-default rule has wildcard high bits: chaining
    # would need overlapping groups.
    for _rule, (value, mask) in body:
        if (mask >> cut) != (1 << (total - cut)) - 1:
            return spec

    high_key, low_key = _split_key_parts(target.key, cut)
    groups: Dict[int, List[Tuple[int, int, str]]] = {}
    group_order: List[int] = []
    for rule, (value, mask) in body:
        high = value >> cut
        if high not in groups:
            groups[high] = []
            group_order.append(high)
        groups[high].append((value & low_mask_all, mask & low_mask_all, rule.next_state))

    new_spec = spec
    states = dict(spec.states)
    order = list(spec.state_order)
    high_rules: List[Rule] = []
    low_widths = [k.width for k in low_key]
    for high in group_order:
        child_name = _fresh_name(
            ParserSpec(spec.name, spec.fields, states, spec.start, order),
            f"{target.name}_k{high:x}",
        )
        child_rules = [
            _rule_from_folded(lv, lm, low_widths, dest)
            for lv, lm, dest in groups[high]
        ]
        if default_dest is not None:
            child_rules.append(
                Rule(tuple(ValueMask(0, wildcard=True) for _ in low_key), default_dest)
            )
        states[child_name] = SpecState(
            child_name, (), tuple(low_key), tuple(child_rules)
        )
        order.append(child_name)
        high_rules.append(
            _rule_from_folded(
                high,
                (1 << (total - cut)) - 1,
                [k.width for k in high_key],
                child_name,
            )
        )
    if default_dest is not None:
        high_rules.append(
            Rule(tuple(ValueMask(0, wildcard=True) for _ in high_key), default_dest)
        )
    states[target.name] = SpecState(
        target.name, target.extracts, tuple(high_key), tuple(high_rules)
    )
    return new_spec.with_states(states, spec.start, order)


def _split_key_parts(key, cut: int):
    """Split a key-part tuple so the low ``cut`` bits form the second key."""
    # Walk from the least-significant end (last part's low bits).
    high: List = []
    low: List = []
    remaining = cut
    for part in reversed(key):
        if remaining == 0:
            high.insert(0, part)
            continue
        if part.width <= remaining:
            low.insert(0, part)
            remaining -= part.width
            continue
        # Split inside this part.
        if isinstance(part, FieldKey):
            low.insert(0, FieldKey(part.field, part.lo + remaining - 1, part.lo))
            high.insert(0, FieldKey(part.field, part.hi, part.lo + remaining))
        else:
            assert isinstance(part, LookaheadKey)
            # Wire order: first bits are most significant.
            high_width = part.width - remaining
            high.insert(0, LookaheadKey(part.offset, high_width))
            low.insert(0, LookaheadKey(part.offset + high_width, remaining))
        remaining = 0
    return tuple(high), tuple(low)


def merge_transition_key(spec: ParserSpec) -> ParserSpec:
    """-R4: inverse of the split — collapse a state whose every non-default
    rule targets a distinct extraction-free keyed child back into a single
    state with the concatenated key."""
    for name, state in spec.states.items():
        if state.is_unconditional:
            continue
        widths = [k.width for k in state.key]
        body: List[Rule] = list(state.rules)
        default_dest = None
        if body and body[-1].combined_value_mask(widths)[1] == 0:
            default_dest = body[-1].next_state
            body = body[:-1]
        if not body:
            continue
        children = []
        ok = True
        for rule in body:
            value, mask = rule.combined_value_mask(widths)
            child_name = rule.next_state
            if mask != (1 << sum(widths)) - 1 or child_name not in spec.states:
                ok = False
                break
            child = spec.states[child_name]
            if child.extracts or child.is_unconditional:
                ok = False
                break
            # Child must be reachable only through this state.
            preds = [
                s
                for s in spec.states.values()
                for r in s.rules
                if r.next_state == child_name
            ]
            if len(preds) != 1:
                ok = False
                break
            children.append((value, child))
        if not ok or not children:
            continue
        base_key = children[0][1].key
        if any(c.key != base_key for _v, c in children):
            continue
        child_widths = [k.width for k in base_key]
        merged_key = tuple(state.key) + tuple(base_key)
        merged_widths = widths + child_widths
        merged_rules: List[Rule] = []
        child_total = sum(child_widths)
        for high_value, child in children:
            for rule in child.rules:
                lv, lm = rule.combined_value_mask(child_widths)
                if lm == 0 and default_dest is not None and (
                    rule.next_state == default_dest
                ):
                    continue  # child default duplicates the parent default
                merged_rules.append(
                    _rule_from_folded(
                        (high_value << child_total) | lv,
                        (((1 << sum(widths)) - 1) << child_total) | lm,
                        merged_widths,
                        rule.next_state,
                    )
                )
        if default_dest is not None:
            merged_rules.append(
                Rule(
                    tuple(ValueMask(0, wildcard=True) for _ in merged_key),
                    default_dest,
                )
            )
        states = {
            n: s
            for n, s in spec.states.items()
            if n not in {c.name for _v, c in children}
        }
        states[name] = SpecState(
            name, state.extracts, merged_key, tuple(merged_rules)
        )
        order = [
            n for n in spec.state_order if n in states
        ]
        return spec.with_states(states, spec.start, order)
    return spec


# ---------------------------------------------------------------------------
# R5: split / merge parser states
# ---------------------------------------------------------------------------

def split_states(
    spec: ParserSpec, state_name: Optional[str] = None, at: Optional[int] = None
) -> ParserSpec:
    """+R5: split a state extracting >= 2 fields into a chain of two states;
    the first extracts a prefix then transitions unconditionally."""
    target = None
    for name, state in spec.states.items():
        if state_name is not None and name != state_name:
            continue
        if len(state.extracts) >= 2:
            target = state
            break
    if target is None:
        return spec
    cut = at if at is not None else len(target.extracts) // 2
    if not 0 < cut < len(target.extracts):
        return spec
    tail_name = _fresh_name(spec, f"{target.name}_tail")
    states = dict(spec.states)
    states[target.name] = SpecState(
        target.name,
        tuple(target.extracts[:cut]),
        (),
        (Rule((), tail_name),),
    )
    states[tail_name] = SpecState(
        tail_name, tuple(target.extracts[cut:]), target.key, target.rules
    )
    order = list(spec.state_order)
    order.insert(order.index(target.name) + 1, tail_name)
    return spec.with_states(states, spec.start, order)


def merge_states(spec: ParserSpec) -> ParserSpec:
    """-R5: merge a state with a single unconditional successor when the
    successor has no other predecessors (and neither keys on lookahead that
    the merge would invalidate — extraction order is preserved so lookahead
    offsets stay correct)."""
    for name, state in spec.states.items():
        if not state.is_unconditional:
            continue
        dest = state.rules[0].next_state
        if dest in (ACCEPT, REJECT) or dest == name:
            continue
        preds = [
            s.name
            for s in spec.states.values()
            for r in s.rules
            if r.next_state == dest
        ]
        if preds != [name]:
            continue
        succ = spec.states[dest]
        if dest == spec.start:
            continue
        merged = SpecState(
            name,
            tuple(state.extracts) + tuple(succ.extracts),
            succ.key,
            succ.rules,
        )
        states = {n: s for n, s in spec.states.items() if n != dest}
        states[name] = merged
        order = [n for n in spec.state_order if n != dest]
        return spec.with_states(states, spec.start, order)
    return spec


# ---------------------------------------------------------------------------
# Registry used by the benchmark mutation driver
# ---------------------------------------------------------------------------

REWRITES = {
    "+R1": add_redundant_entries,
    "-R1": remove_redundant_entries,
    "+R2": add_unreachable_entries,
    "-R2": remove_unreachable_entries,
    "+R3": split_entries,
    "-R3": merge_entries,
    "+R4": split_transition_key,
    "-R4": merge_transition_key,
    "+R5": split_states,
    "-R5": merge_states,
}


def apply_rewrites(spec: ParserSpec, names: List[str]) -> ParserSpec:
    """Apply a sequence of rewrite names like ``["+R1", "-R3"]``."""
    out = spec
    for name in names:
        if name not in REWRITES:
            raise KeyError(f"unknown rewrite {name!r}")
        out = REWRITES[name](out)
    return out
