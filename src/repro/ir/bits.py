"""An immutable bit-string with network (MSB-first) ordering.

Packet parsing consumes bits from the front of the wire stream, so this
class indexes bit 0 as the FIRST bit on the wire (the most significant bit
of the first byte).  Field values extracted from a slice are interpreted
big-endian, matching how P4 targets deposit header fields.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union


class Bits:
    """Immutable sequence of bits, wire order."""

    __slots__ = ("_value", "_length")

    def __init__(self, value: int = 0, length: int = 0) -> None:
        if length < 0:
            raise ValueError("negative bit length")
        self._length = length
        self._value = value & ((1 << length) - 1) if length else 0

    # -- constructors -----------------------------------------------------
    @classmethod
    def from_int(cls, value: int, length: int) -> "Bits":
        if value < 0:
            raise ValueError("Bits.from_int needs a non-negative value")
        if length < value.bit_length():
            raise ValueError(
                f"value {value} does not fit in {length} bits"
            )
        return cls(value, length)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bits":
        return cls(int.from_bytes(data, "big"), 8 * len(data))

    @classmethod
    def from_str(cls, text: str) -> "Bits":
        """From a string of '0'/'1' characters (spaces/underscores ignored)."""
        clean = text.replace(" ", "").replace("_", "")
        if clean and set(clean) - {"0", "1"}:
            raise ValueError(f"not a bit string: {text!r}")
        if not clean:
            return cls()
        return cls(int(clean, 2), len(clean))

    @classmethod
    def concat(cls, parts: Iterable["Bits"]) -> "Bits":
        value = 0
        length = 0
        for part in parts:
            value = (value << len(part)) | part._value
            length += len(part)
        return cls(value, length)

    @classmethod
    def zeros(cls, length: int) -> "Bits":
        return cls(0, length)

    @classmethod
    def ones(cls, length: int) -> "Bits":
        return cls((1 << length) - 1, length)

    # -- accessors ---------------------------------------------------------
    def __len__(self) -> int:
        return self._length

    def __bool__(self) -> bool:
        return self._length > 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Bits)
            and self._length == other._length
            and self._value == other._value
        )

    def __hash__(self) -> int:
        return hash((self._value, self._length))

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "Bits"]:
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                raise ValueError("Bits slicing requires step 1")
            return self.slice(start, stop - start)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range")
        shift = self._length - 1 - index
        return (self._value >> shift) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield self[i]

    def slice(self, start: int, length: int) -> "Bits":
        """``length`` bits beginning at wire offset ``start``."""
        if start < 0 or length < 0 or start + length > self._length:
            raise IndexError(
                f"slice(start={start}, length={length}) out of range "
                f"for {self._length} bits"
            )
        shift = self._length - start - length
        return Bits(self._value >> shift, length)

    def uint(self) -> int:
        """The big-endian unsigned integer value of the whole string."""
        return self._value

    def __add__(self, other: "Bits") -> "Bits":
        if not isinstance(other, Bits):
            return NotImplemented
        return Bits.concat([self, other])

    def to_bytes(self) -> bytes:
        """Pack into bytes (must be a whole number of bytes)."""
        if self._length % 8:
            raise ValueError(f"length {self._length} is not byte aligned")
        return self._value.to_bytes(self._length // 8, "big")

    def to01(self) -> str:
        return format(self._value, f"0{self._length}b") if self._length else ""

    def __repr__(self) -> str:
        if self._length <= 64:
            return f"Bits('{self.to01()}')"
        return f"Bits(<{self._length} bits>)"
