"""Equality saturation over the parser-spec IR.

``core/normalize.py``'s greedy canonicalization applies each cleanup
rewrite destructively and keeps whatever it reaches, so the spec the
skeleton enumerates — and with it the candidate space the encoder
bit-blasts — still depends on how the input was *written* whenever the
greedy pass cannot see through a rewrite composition (a mask-bit split
the adjacent-merge rule cannot undo, a key chain whose collapse only
becomes profitable after a state merge, ...).  This module removes that
dependence the way "Scaling Program Synthesis Based Technology Mapping
with Equality Saturation" (PAPERS.md) does for technology mapping:

* an **e-graph** whose e-classes start as the spec's states; each class
  holds hash-consed e-nodes ``(extracts, key, rules)`` with rule
  destinations referring to e-classes, so congruent states (equal up to
  destination equivalence) merge via a worklist-based rebuild;
* **normal forms** applied at node construction — adjacent key parts of
  one field (and adjacent lookahead windows) fuse, and for small key
  widths the rule list is rebuilt from the state's *semantic* transition
  function (value -> destination class), which subsumes the
  R1/R2/R3 entry rewrites of Figure 21 in both directions;
* **non-destructive composition rewrites** — the -R5 extraction-boundary
  merge and the -R4 key-chain collapse add the merged node to the
  existing class instead of replacing states, so every intermediate
  shape stays available;
* a bounded, deterministic **saturation driver** (node / iteration /
  optional wall-clock budgets; classes and nodes are always visited in
  id / insertion order so compile keys stay stable run to run);
* a cost-guided **extractor** that picks one representative node per
  reachable class — fewest states first, then fewest entries, then the
  widest merged keys — and emits a canonically renamed spec whose shape
  depends only on the input's semantics.

Soundness notes (the full argument is docs/internals.md §17):

* Rule-list canonicalization rebuilds the exact first-match semantic
  function over an enumerable key space and re-covers each destination's
  value set exactly (``hw.tcam.minimal_cover_exact``), so match order
  between destinations stops mattering.  Key evaluation is untouched.
* A key never collapses to unconditional while it contains a lookahead
  part: lookahead evaluation can reject short packets, so dropping it
  would change semantics even when every value maps to one destination.
* The -R4 collapse is skipped when the parent has a trailing default and
  a child either lacks a trailing catch-all (the merged default would
  swallow values the child originally rejected) or keys on lookahead
  (the merge would evaluate the child's window on packets the parent
  default used to divert).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..obs import get_tracer
from .rewrites import _rule_from_folded
from .spec import (
    ACCEPT,
    REJECT,
    FieldKey,
    KeyPart,
    LookaheadKey,
    ParserSpec,
    Rule,
    SpecState,
    _check_spec,
)

# A rule destination inside the e-graph: an e-class id or a sentinel.
Dest = Union[int, str]
# One folded rule: (value, mask, dest) over the node's whole key width.
FoldedRule = Tuple[int, int, Dest]

# Rule lists over keys at most this wide are rebuilt from the exact
# value -> destination map (and -R4 merges are capped at this width so
# merged nodes stay exactly canonicalizable).
EXACT_CANON_MAX_WIDTH = 12
# ... unless a destination's value set is larger than this (the exact
# ternary cover is exponential in the worst case).  The threshold is a
# function of the semantics alone, so it cannot break confluence.
EXACT_CANON_MAX_VALUES = 1024


@dataclass(frozen=True)
class EqsatBudget:
    """Bounds on saturation.  ``max_seconds`` is None by default because
    a wall-clock cutoff makes the reached fixed point machine-dependent;
    the node and iteration bounds alone keep termination deterministic."""

    max_nodes: int = 4096
    max_iterations: int = 24
    max_seconds: Optional[float] = None


@dataclass
class EqsatStats:
    """What saturation did (surfaced as ``eqsat.*`` obs counters)."""

    classes: int = 0
    nodes: int = 0
    iterations: int = 0
    merges: int = 0
    added: int = 0
    saturated: bool = False
    extract_seconds: float = 0.0
    extract_states: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "classes": self.classes,
            "nodes": self.nodes,
            "iterations": self.iterations,
            "merges": self.merges,
            "added": self.added,
            "saturated": self.saturated,
            "extract_seconds": round(self.extract_seconds, 6),
            "extract_states": self.extract_states,
        }


@dataclass(frozen=True)
class ENode:
    """One hash-consed way of realizing an e-class: an extraction list,
    a (normalized) transition key, and folded rules whose destinations
    are e-class ids or the ACCEPT/REJECT sentinels."""

    extracts: Tuple[str, ...]
    key: Tuple[KeyPart, ...]
    rules: Tuple[FoldedRule, ...]

    @property
    def key_width(self) -> int:
        return sum(k.width for k in self.key)

    def dest_classes(self) -> List[int]:
        return [d for _v, _m, d in self.rules if isinstance(d, int)]

    def sort_token(self) -> str:
        """A deterministic, id-free order token (dests stringified so
        int class ids and sentinel strings compare)."""
        return repr(
            (
                self.extracts,
                tuple(str(k) for k in self.key),
                tuple((v, m, str(d)) for v, m, d in self.rules),
            )
        )


# ---------------------------------------------------------------------------
# Normal forms
# ---------------------------------------------------------------------------

def normalize_key(key: Sequence[KeyPart]) -> Tuple[KeyPart, ...]:
    """Fuse adjacent field slices of one field and adjacent lookahead
    windows.  Concatenation order is the fold order (first part = most
    significant bits), so fusing never moves a bit."""
    merged: List[KeyPart] = []
    for part in key:
        if merged:
            last = merged[-1]
            if (
                isinstance(last, FieldKey)
                and isinstance(part, FieldKey)
                and last.field == part.field
                and last.lo == part.hi + 1
            ):
                merged[-1] = FieldKey(last.field, last.hi, part.lo)
                continue
            if (
                isinstance(last, LookaheadKey)
                and isinstance(part, LookaheadKey)
                and part.offset == last.offset + last.width
            ):
                merged[-1] = LookaheadKey(last.offset, last.width + part.width)
                continue
        merged.append(part)
    return tuple(merged)


def _dest_token(dest: Dest) -> str:
    return f"c{dest}" if isinstance(dest, int) else str(dest)


@lru_cache(maxsize=4096)
def _semantic_rule_canon(
    rules: Tuple[FoldedRule, ...], width: int
) -> Optional[Tuple[FoldedRule, ...]]:
    """Rebuild a small-width rule list from its exact semantics.

    Computes the first-match value -> destination map (unmatched values
    reject, per P4 semantics), then re-emits one exact minimal ternary
    cover per destination — ordered by (set size desc, smallest member),
    both properties of the semantics, never of the input writing — and a
    trailing catch-all for the largest destination (REJECT included, so
    explicit ``default: reject`` styles converge with implicit ones).
    Returns None when a cover would be too large to rebuild exactly.
    """
    from ..hw.tcam import minimal_cover_exact

    space = 1 << width
    sets: Dict[Dest, List[int]] = {}
    for value in range(space):
        dest: Dest = REJECT
        for rv, rm, rd in rules:
            if (value & rm) == (rv & rm):
                dest = rd
                break
        sets.setdefault(dest, []).append(value)
    # Largest set (ties: smallest member) becomes the trailing default.
    order = sorted(sets, key=lambda d: (-len(sets[d]), min(sets[d])))
    default = order[0]
    out: List[FoldedRule] = []
    for dest in order[1:]:
        values = sets[dest]
        if dest == REJECT:
            continue  # a TCAM/select miss already rejects
        if len(values) > EXACT_CANON_MAX_VALUES:
            return None
        cover = minimal_cover_exact(values, width)
        for pat in sorted(cover, key=lambda p: (-p.mask, p.value)):
            out.append((pat.value & pat.mask, pat.mask, dest))
    out.append((0, 0, default))
    return tuple(out)


def _weak_rule_canon(
    rules: Sequence[FoldedRule], width: int
) -> Tuple[FoldedRule, ...]:
    """Order-preserving cleanups for keys too wide to enumerate: truncate
    after the first catch-all, drop rules a single earlier rule subsumes,
    and merge adjacent same-destination rules differing in one mask bit
    (the -R1/-R2/-R3 directions of Figure 21)."""
    kept: List[FoldedRule] = []
    for value, mask, dest in rules:
        dead = False
        for pv, pm, _pd in kept:
            if (pm & mask) == pm and (value & pm) == (pv & pm):
                dead = True  # an earlier rule always fires first
                break
        if dead:
            continue
        kept.append((value & mask, mask, dest))
        if mask == 0:
            break
    merged = True
    while merged:
        merged = False
        for i in range(len(kept) - 1):
            av, am, ad = kept[i]
            bv, bm, bd = kept[i + 1]
            if ad != bd or am != bm:
                continue
            diff = (av ^ bv) & am
            if diff and (diff & (diff - 1)) == 0:
                nm = am & ~diff
                kept[i : i + 2] = [(av & nm, nm, ad)]
                merged = True
                break
    return tuple(kept)


def make_node(
    extracts: Sequence[str],
    key: Sequence[KeyPart],
    rules: Sequence[FoldedRule],
) -> ENode:
    """Build an e-node in normal form."""
    nkey = normalize_key(key)
    width = sum(k.width for k in nkey)
    if not nkey:
        dest = rules[0][2] if rules else REJECT
        return ENode(tuple(extracts), (), ((0, 0, dest),))
    canon: Optional[Tuple[FoldedRule, ...]] = None
    if width <= EXACT_CANON_MAX_WIDTH:
        canon = _semantic_rule_canon(tuple(rules), width)
    if canon is None:
        canon = _weak_rule_canon(rules, width)
    if not canon:
        canon = ((0, 0, REJECT),)
    if len(canon) == 1 and canon[0][1] == 0 and not any(
        isinstance(part, LookaheadKey) for part in nkey
    ):
        # Every value reaches one destination and no lookahead window is
        # evaluated: the key is semantically dead, drop it.  (Lookahead
        # must stay — its evaluation rejects short packets.)
        return ENode(tuple(extracts), (), ((0, 0, canon[0][2]),))
    return ENode(tuple(extracts), nkey, canon)


# ---------------------------------------------------------------------------
# The e-graph
# ---------------------------------------------------------------------------

class EGraph:
    """An e-graph over parser-spec states.

    Classes are created once from the input spec's states and only ever
    merge, so every class keeps at least one source-state name; rewrites
    add equivalent nodes to existing classes (non-destructive), and the
    worklist rebuild restores congruence after merges.
    """

    def __init__(self, spec: ParserSpec):
        self.spec = spec
        self._uf: List[int] = []
        self._nodes: Dict[int, List[ENode]] = {}
        self._node_set: Dict[int, Set[ENode]] = {}
        self._names: Dict[int, List[str]] = {}
        self._hashcons: Dict[ENode, int] = {}
        self._parents: Dict[int, Set[int]] = {}
        self._worklist: List[int] = []
        self.merges = 0
        self.added = 0

        name_to_cid = {}
        order = [n for n in spec.state_order if n in spec.states]
        for name in spec.states:
            if name not in order:
                order.append(name)
        for name in order:
            cid = len(self._uf)
            self._uf.append(cid)
            name_to_cid[name] = cid
            self._nodes[cid] = []
            self._node_set[cid] = set()
            self._names[cid] = [name]
            self._parents[cid] = set()
        self.start_cid = name_to_cid[spec.start]
        for name in order:
            state = spec.states[name]
            widths = [k.width for k in state.key]
            folded: List[FoldedRule] = []
            for rule in state.rules:
                value, mask = rule.combined_value_mask(widths)
                dest: Dest = rule.next_state
                if dest not in (ACCEPT, REJECT):
                    dest = name_to_cid[dest]
                folded.append((value, mask, dest))
            node = make_node(state.extracts, state.key, folded)
            self._insert(name_to_cid[name], node)
        self.rebuild()

    # -- union-find --------------------------------------------------------
    def find(self, cid: int) -> int:
        root = cid
        while self._uf[root] != root:
            root = self._uf[root]
        while self._uf[cid] != root:
            self._uf[cid], cid = root, self._uf[cid]
        return root

    def class_ids(self) -> List[int]:
        return sorted({self.find(c) for c in range(len(self._uf))})

    def nodes_of(self, cid: int) -> List[ENode]:
        return list(self._nodes[self.find(cid)])

    def names_of(self, cid: int) -> List[str]:
        return list(self._names[self.find(cid)])

    def num_nodes(self) -> int:
        return sum(len(self._nodes[c]) for c in self.class_ids())

    # -- construction ------------------------------------------------------
    def _canonical(self, node: ENode) -> ENode:
        rules = tuple(
            (v, m, self.find(d) if isinstance(d, int) else d)
            for v, m, d in node.rules
        )
        return make_node(node.extracts, node.key, rules)

    def _insert(self, owner: int, node: ENode) -> bool:
        """Add a canonical node to ``owner``; returns True when new."""
        owner = self.find(owner)
        node = self._canonical(node)
        existing = self._hashcons.get(node)
        if existing is not None:
            existing = self.find(existing)
            if existing != owner:
                self.merge(existing, owner)
            return False
        if node in self._node_set[owner]:
            return False
        self._node_set[owner].add(node)
        self._nodes[owner].append(node)
        self._hashcons[node] = owner
        for dest in node.dest_classes():
            self._parents.setdefault(self.find(dest), set()).add(owner)
        self.added += 1
        return True

    def merge(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        leader, loser = min(ra, rb), max(ra, rb)
        self._uf[loser] = leader
        self._nodes[leader].extend(self._nodes.pop(loser))
        self._node_set[leader] |= self._node_set.pop(loser)
        self._names[leader].extend(self._names.pop(loser))
        self._parents.setdefault(leader, set())
        self._parents[leader] |= self._parents.pop(loser, set())
        self.merges += 1
        self._worklist.append(leader)
        return leader

    def rebuild(self) -> None:
        """Worklist congruence restoration: after a merge, every class
        whose nodes reference the merged class re-canonicalizes them; a
        hash-cons hit on another class is a congruence and merges too."""
        while self._worklist:
            dirty = self.find(self._worklist.pop())
            owners = {self.find(o) for o in self._parents.get(dirty, set())}
            owners.add(dirty)  # its own node list needs re-canonicalizing
            for owner in sorted(owners):
                owner = self.find(owner)
                old = self._nodes[owner]
                self._nodes[owner] = []
                self._node_set[owner] = set()
                for node in old:
                    if self._hashcons.get(node) == owner:
                        del self._hashcons[node]
                for node in old:
                    canon = self._canonical(node)
                    if canon in self._node_set[owner]:
                        continue
                    existing = self._hashcons.get(canon)
                    if existing is not None and self.find(existing) != owner:
                        self.merge(existing, owner)
                        owner = self.find(owner)
                    self._node_set[owner].add(canon)
                    self._nodes[owner].append(canon)
                    self._hashcons[canon] = owner
                    for dest in canon.dest_classes():
                        self._parents.setdefault(
                            self.find(dest), set()
                        ).add(owner)

    # -- rewrites ----------------------------------------------------------
    def _r5_candidates(self, owner: int, node: ENode) -> List[ENode]:
        """-R5: an unconditional node composes with every node of its
        destination class (extraction order is preserved, so lookahead
        offsets and stack reads stay correct)."""
        if node.key or len(node.rules) != 1:
            return []
        dest = node.rules[0][2]
        if not isinstance(dest, int):
            return []
        dest = self.find(dest)
        if dest == self.find(owner):
            return []
        out = []
        for succ in self._nodes[dest]:
            if any(self.find(d) == self.find(owner)
                   for d in succ.dest_classes()):
                continue  # composing into a cycle only feeds node growth
            out.append(
                make_node(node.extracts + succ.extracts, succ.key, succ.rules)
            )
        return out

    def _r4_candidates(self, owner: int, node: ENode) -> List[ENode]:
        """-R4: collapse a key chain — every non-default rule is exact
        and targets a class holding an extraction-free keyed node; the
        children's common key concatenates onto the parent's."""
        if not node.key:
            return []
        width = node.key_width
        full = (1 << width) - 1
        body = list(node.rules)
        default: Optional[Dest] = None
        if body and body[-1][1] == 0:
            default = body[-1][2]
            body = body[:-1]
        if not body:
            return []
        dests: List[int] = []
        for value, mask, dest in body:
            if mask != full or not isinstance(dest, int):
                return []
            if self.find(dest) == self.find(owner):
                return []
            dests.append(self.find(dest))

        def eligible(child: ENode) -> bool:
            if child.extracts or not child.key:
                return False
            if default is not None:
                # With a parent default the merge must not change what
                # unmatched-low values do: the child must end in its own
                # catch-all, and must not key on lookahead (whose
                # evaluation the default used to bypass).
                if child.rules[-1][1] != 0:
                    return False
                if any(isinstance(p, LookaheadKey) for p in child.key):
                    return False
            return True

        per_dest: Dict[int, Dict[Tuple[KeyPart, ...], ENode]] = {}
        for dest in set(dests):
            table: Dict[Tuple[KeyPart, ...], ENode] = {}
            for child in self._nodes[dest]:
                if eligible(child) and child.key not in table:
                    table[child.key] = child
            per_dest[dest] = table
        common = None
        for dest in dests:
            keys = set(per_dest[dest])
            common = keys if common is None else common & keys
        if not common:
            return []
        out = []
        for child_key in sorted(common, key=lambda k: str(k))[:2]:
            child_width = sum(k.width for k in child_key)
            if width + child_width > EXACT_CANON_MAX_WIDTH:
                continue
            merged: List[FoldedRule] = []
            for (value, _mask, dest) in body:
                child = per_dest[self.find(dest)][child_key]  # type: ignore[arg-type]
                for cv, cm, cd in child.rules:
                    if cm == 0 and default is not None and cd == default:
                        continue  # duplicates the parent default
                    merged.append(
                        (
                            (value << child_width) | (cv & cm),
                            (full << child_width) | cm,
                            cd,
                        )
                    )
            if default is not None:
                merged.append((0, 0, default))
            out.append(
                make_node(node.extracts, node.key + child_key, merged)
            )
        return out

    # -- saturation --------------------------------------------------------
    def saturate(self, budget: Optional[EqsatBudget] = None) -> EqsatStats:
        budget = budget or EqsatBudget()
        stats = EqsatStats()
        deadline = (
            time.monotonic() + budget.max_seconds
            if budget.max_seconds is not None
            else None
        )
        for iteration in range(budget.max_iterations):
            stats.iterations = iteration + 1
            before_merges = self.merges
            candidates: List[Tuple[int, ENode]] = []
            for cid in self.class_ids():
                for node in list(self._nodes[cid]):
                    for cand in self._r5_candidates(cid, node):
                        candidates.append((cid, cand))
                    for cand in self._r4_candidates(cid, node):
                        candidates.append((cid, cand))
            grew = False
            for owner, cand in candidates:
                if self.num_nodes() >= budget.max_nodes:
                    break
                if deadline is not None and time.monotonic() > deadline:
                    break
                if self._insert(owner, cand):
                    grew = True
            self.rebuild()
            if not grew and self.merges == before_merges:
                stats.saturated = True
                break
            if self.num_nodes() >= budget.max_nodes:
                break
            if deadline is not None and time.monotonic() > deadline:
                break
        stats.classes = len(self.class_ids())
        stats.nodes = self.num_nodes()
        stats.merges = self.merges
        stats.added = self.added
        return stats

    # -- extraction --------------------------------------------------------
    def _reachable(self, assignment: Dict[int, ENode]) -> List[int]:
        root = self.find(self.start_cid)
        seen = [root]
        seen_set = {root}
        queue = [root]
        while queue:
            cid = queue.pop(0)
            for dest in assignment[cid].dest_classes():
                dest = self.find(dest)
                if dest not in seen_set:
                    seen_set.add(dest)
                    seen.append(dest)
                    queue.append(dest)
        return seen

    def _cost(self, assignment: Dict[int, ENode]) -> Tuple[int, int, int]:
        reachable = self._reachable(assignment)
        return (
            len(reachable),
            sum(len(assignment[c].rules) for c in reachable),
            -sum(assignment[c].key_width for c in reachable),
        )

    def extract(self, max_sweeps: int = 8) -> ParserSpec:
        """Pick one node per reachable class (fewest states, then fewest
        entries, then widest merged keys) by deterministic coordinate
        descent, then emit a canonically renamed spec in DFS preorder."""
        assignment = {
            cid: min(
                self._nodes[cid],
                key=lambda n: (len(n.rules), -n.key_width, n.sort_token()),
            )
            for cid in self.class_ids()
        }
        cost = self._cost(assignment)
        for _sweep in range(max_sweeps):
            improved = False
            for cid in self.class_ids():
                best_node = assignment[cid]
                best_cost = cost
                for node in self._nodes[cid]:
                    if node is assignment[cid]:
                        continue
                    assignment[cid] = node
                    trial = self._cost(assignment)
                    if trial < best_cost:
                        best_cost, best_node = trial, node
                        improved = True
                assignment[cid] = best_node
                cost = best_cost
            if not improved:
                break

        # DFS preorder over the chosen representatives.
        root = self.find(self.start_cid)
        preorder: List[int] = []
        seen = {root}
        stack = [root]
        while stack:
            cid = stack.pop()
            preorder.append(cid)
            succs = []
            for dest in assignment[cid].dest_classes():
                dest = self.find(dest)
                if dest not in seen:
                    seen.add(dest)
                    succs.append(dest)
            stack.extend(reversed(succs))

        # Canonical structural names: the start keeps the input's start
        # name (mutations never rename it), every other class is named
        # by preorder position — so equivalent specs get identical names
        # no matter what the input called its states.
        names: Dict[int, str] = {root: self.spec.start}
        counter = 0
        for cid in preorder[1:]:
            name = f"q{counter}"
            while name == self.spec.start:
                counter += 1
                name = f"q{counter}"
            names[cid] = name
            counter += 1

        states: Dict[str, SpecState] = {}
        for cid in preorder:
            node = assignment[cid]
            widths = [k.width for k in node.key]
            rules = []
            for value, mask, dest in node.rules:
                target = (
                    names[self.find(dest)] if isinstance(dest, int) else dest
                )
                if node.key:
                    rules.append(
                        _rule_from_folded(value, mask, widths, target)
                    )
                else:
                    rules.append(Rule((), target))
            states[names[cid]] = SpecState(
                names[cid], node.extracts, node.key, tuple(rules)
            )
        out = ParserSpec(
            self.spec.name,
            dict(self.spec.fields),
            states,
            names[root],
            [names[c] for c in preorder],
        )
        _check_spec(out)
        return out

    def class_summary(self) -> List[Dict[str, object]]:
        """Per-class stats for the ``repro ir canon`` CLI."""
        out = []
        for cid in self.class_ids():
            out.append(
                {
                    "class": cid,
                    "names": list(self._names[cid]),
                    "nodes": len(self._nodes[cid]),
                }
            )
        return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

# One compile calls prepare_spec once per portfolio arm and once per
# unscaled verification retry, always on the same canonicalized spec;
# saturation is deterministic, so cache by content fingerprint.
_SATURATE_CACHE: Dict[Tuple[str, EqsatBudget], Tuple[ParserSpec, EqsatStats]] = {}
_SATURATE_CACHE_MAX = 128


def saturate_spec(
    spec: ParserSpec, budget: Optional[EqsatBudget] = None
) -> Tuple[ParserSpec, EqsatStats]:
    """Equality-saturate a spec and extract its canonical representative.

    Emits ``eqsat.iterations`` / ``eqsat.classes`` / ``eqsat.nodes`` /
    ``eqsat.extract_seconds`` obs counters under an ``eqsat`` span.
    """
    from ..persist.fingerprint import spec_fingerprint

    budget = budget or EqsatBudget()
    cache_key = (spec_fingerprint(spec), budget)
    cached = _SATURATE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    tracer = get_tracer()
    with tracer.span("eqsat", states=len(spec.states)):
        graph = EGraph(spec)
        stats = graph.saturate(budget)
        t0 = time.monotonic()
        extracted = graph.extract()
        stats.extract_seconds = time.monotonic() - t0
        stats.extract_states = len(extracted.states)
        tracer.count("eqsat.iterations", stats.iterations)
        tracer.count("eqsat.classes", stats.classes)
        tracer.count("eqsat.nodes", stats.nodes)
        tracer.count("eqsat.extract_seconds", stats.extract_seconds)
    if len(_SATURATE_CACHE) >= _SATURATE_CACHE_MAX:
        _SATURATE_CACHE.pop(next(iter(_SATURATE_CACHE)))
    _SATURATE_CACHE[cache_key] = (extracted, stats)
    return extracted, stats
