"""Graphviz DOT export for specification and implementation FSMs.

Parser developers reason about transition graphs visually; both the spec
IR and compiled TCAM programs export to DOT (`dot -Tpdf` renders them).
The output is deterministic, so golden tests are stable."""

from __future__ import annotations

from typing import List

from .spec import ACCEPT, REJECT, ParserSpec


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _key_label(key) -> str:
    return ", ".join(str(k) for k in key) if key else ""


def spec_to_dot(spec: ParserSpec, name: str | None = None) -> str:
    """Render a specification's state graph as DOT."""
    lines: List[str] = [f'digraph "{_escape(name or spec.name)}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=box, fontname="monospace"];')
    lines.append(
        '  accept [shape=doublecircle, label="accept", color=darkgreen];'
    )
    lines.append('  reject [shape=doublecircle, label="reject", color=red];')
    for sname in spec.state_order:
        state = spec.states.get(sname)
        if state is None:
            continue
        extracts = "\\n".join(state.extracts) if state.extracts else "-"
        key = _key_label(state.key)
        label = f"{sname}|extract: {extracts}"
        if key:
            label += f"|key: {key}"
        shape = "record"
        style = ' style="bold"' if sname == spec.start else ""
        lines.append(
            f'  "{_escape(sname)}" [shape={shape}, '
            f'label="{{{_escape(label)}}}"{style}];'
        )
        widths = [k.width for k in state.key]
        for rule in state.rules:
            if state.is_unconditional:
                edge_label = ""
            elif rule.is_default:
                edge_label = "default"
            else:
                value, mask = rule.combined_value_mask(widths)
                from ..hw.tcam import TernaryPattern

                edge_label = str(
                    TernaryPattern(value & mask, mask, sum(widths))
                )
            dest = rule.next_state
            target = (
                "accept" if dest == ACCEPT
                else "reject" if dest == REJECT
                else f'"{_escape(dest)}"'
            )
            attr = f' [label="{_escape(edge_label)}"]' if edge_label else ""
            lines.append(f'  "{_escape(sname)}" -> {target}{attr};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def egraph_to_dot(graph, name: str | None = None) -> str:
    """Render an :class:`~repro.ir.eqsat.EGraph` as DOT: one cluster per
    live e-class (labelled with the source-state names it absorbed), one
    record per e-node, and edges from each node to the e-classes its
    rules target.  Deterministic: classes in id order, nodes in
    insertion order."""
    from .eqsat import ENode

    title = _escape(name or graph.spec.name)
    lines: List[str] = [f'digraph "{title}" {{']
    lines.append("  rankdir=LR;")
    lines.append("  compound=true;")
    lines.append('  node [shape=record, fontname="monospace"];')
    lines.append(
        '  accept [shape=doublecircle, label="accept", color=darkgreen];'
    )
    lines.append('  reject [shape=doublecircle, label="reject", color=red];')
    anchors: dict = {}
    edges: List[str] = []
    start = graph.find(graph.start_cid)
    for cid in graph.class_ids():
        names = ", ".join(sorted(graph.names_of(cid)))
        style = ' style="bold"' if cid == start else ""
        lines.append(f"  subgraph cluster_c{cid} {{")
        lines.append(f'    label="c{cid}: {_escape(names)}"{style};')
        for i, node in enumerate(graph.nodes_of(cid)):
            assert isinstance(node, ENode)
            nid = f"n{cid}_{i}"
            anchors.setdefault(cid, nid)
            extracts = "\\n".join(node.extracts) if node.extracts else "-"
            parts = [f"extract: {extracts}"]
            key = _key_label(node.key)
            if key:
                parts.append(f"key: {key}")
            rule_bits = []
            for value, mask, dest in node.rules:
                pat = "*" if mask == 0 else f"{value:#x}&&&{mask:#x}"
                dtok = f"c{dest}" if isinstance(dest, int) else str(dest)
                rule_bits.append(f"{pat} -\\> {dtok}")
            parts.append("\\n".join(rule_bits))
            label = "|".join(parts)
            lines.append(f'    {nid} [label="{{{_escape(label)}}}"];')
            for value, mask, dest in node.rules:
                if dest == ACCEPT:
                    edges.append(f"  {nid} -> accept;")
                elif dest == REJECT:
                    edges.append(f"  {nid} -> reject;")
                else:
                    target = graph.find(dest)
                    edges.append(
                        f"  {nid} -> ANCHOR_{target} "
                        f"[lhead=cluster_c{target}];"
                    )
        lines.append("  }")
    # Second pass: edge targets point at each cluster's first node.
    for edge in edges:
        for cid, nid in anchors.items():
            edge = edge.replace(f"ANCHOR_{cid} ", f"{nid} ")
        lines.append(edge)
    lines.append("}")
    return "\n".join(lines) + "\n"


def program_to_dot(program, name: str | None = None) -> str:
    """Render a compiled TcamProgram as DOT (one edge per TCAM entry,
    ordered by priority)."""
    from ..hw.impl import ACCEPT_SID, REJECT_SID

    title = _escape(name or program.source_name or "program")
    lines: List[str] = [f'digraph "{title}" {{']
    lines.append("  rankdir=TB;")
    lines.append('  node [shape=record, fontname="monospace"];')
    lines.append(
        '  accept [shape=doublecircle, label="accept", color=darkgreen];'
    )
    lines.append('  reject [shape=doublecircle, label="reject", color=red];')
    live = set(program.used_sids())
    for state in program.states:
        if state.sid not in live:
            continue
        extracts = "\\n".join(state.extracts) if state.extracts else "-"
        key = _key_label(state.key)
        label = f"{state.name} (stage {state.stage})|extract: {extracts}"
        if key:
            label += f"|key: {key}"
        style = ' style="bold"' if state.sid == program.start_sid else ""
        lines.append(
            f'  s{state.sid} [label="{{{_escape(label)}}}"{style}];'
        )
        for priority, entry in enumerate(program.entries_of(state.sid)):
            if entry.next_sid == ACCEPT_SID:
                target = "accept"
            elif entry.next_sid == REJECT_SID:
                target = "reject"
            else:
                target = f"s{entry.next_sid}"
            pattern = entry.pattern.to_wildcard_string()
            lines.append(
                f'  s{state.sid} -> {target} '
                f'[label="{priority}: {_escape(pattern)}"];'
            )
    lines.append("}")
    return "\n".join(lines) + "\n"
