"""Semantic IR for parser specifications.

The IR flattens the surface program: headers dissolve into an ordered set of
qualified fields (``"ethernet.etherType"``), and each state carries its
extraction list, its transition key (a concatenation of field slices and
lookahead windows) and an ordered rule list.  Everything downstream —
the reference simulator, the rewrite mutators, the synthesis encoder and
the baseline compilers — works on this IR, never on surface syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..lang import ast as lang_ast
from ..lang.ast import ACCEPT, REJECT, ValueMask
from ..lang.errors import SemanticError

__all__ = [
    "ACCEPT",
    "REJECT",
    "Field",
    "FieldKey",
    "LookaheadKey",
    "KeyPart",
    "Rule",
    "SpecState",
    "ParserSpec",
    "ValueMask",
    "from_program",
    "parse_spec",
]


@dataclass(frozen=True)
class Field:
    """A flattened packet field.

    ``stack_depth > 1`` marks a header-stack slot (e.g. an MPLS label):
    each extraction appends the next instance, the output dictionary keys
    instances as ``name[i]``, and transition keys read the most recently
    extracted instance.  Extracting past ``stack_depth`` rejects the packet
    (stack overflow), which is what bounds parse loops.
    """

    name: str                     # qualified: "header.field"
    width: int                    # fixed width, or max width for varbit
    is_varbit: bool = False
    length_field: Optional[str] = None   # qualified field giving run-time size
    length_multiplier: int = 1
    stack_depth: int = 1

    @property
    def is_stack(self) -> bool:
        return self.stack_depth > 1

    def instance_key(self, index: int) -> str:
        """Output-dictionary key for stack instance ``index``."""
        if self.is_stack:
            return f"{self.name}[{index}]"
        return self.name

    @property
    def header(self) -> str:
        return self.name.split(".", 1)[0]

    @property
    def short_name(self) -> str:
        return self.name.split(".", 1)[1]


@dataclass(frozen=True)
class FieldKey:
    """Key part: bits [hi:lo] of an extracted field (bit 0 = LSB)."""

    field: str
    hi: int
    lo: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1

    def __str__(self) -> str:
        return f"{self.field}[{self.hi}:{self.lo}]"


@dataclass(frozen=True)
class LookaheadKey:
    """Key part: ``width`` not-yet-extracted bits, ``offset`` past cursor."""

    offset: int
    width: int

    def __str__(self) -> str:
        return f"lookahead({self.width}, +{self.offset})"


KeyPart = Union[FieldKey, LookaheadKey]


@dataclass(frozen=True)
class Rule:
    """One transition rule: per-key-part patterns and a destination."""

    patterns: Tuple[ValueMask, ...]
    next_state: str               # state name, ACCEPT, or REJECT

    @property
    def is_default(self) -> bool:
        return all(p.wildcard for p in self.patterns) or not self.patterns

    def matches(self, key_values: Sequence[int], key_widths: Sequence[int]) -> bool:
        if not self.patterns:
            return True
        return all(
            p.matches(v, w)
            for p, v, w in zip(self.patterns, key_values, key_widths)
        )

    def combined_value_mask(self, key_widths: Sequence[int]) -> Tuple[int, int]:
        """Fold per-part patterns into one (value, mask) over the whole key."""
        value = 0
        mask = 0
        for pattern, width in zip(self.patterns, key_widths):
            part_mask = 0 if pattern.wildcard else (
                pattern.mask if pattern.mask is not None else (1 << width) - 1
            )
            part_mask &= (1 << width) - 1
            value = (value << width) | (pattern.value & part_mask)
            mask = (mask << width) | part_mask
        return value, mask


@dataclass(frozen=True)
class SpecState:
    """A parser state: ordered extraction list, key, ordered rules."""

    name: str
    extracts: Tuple[str, ...]             # qualified field names, in order
    key: Tuple[KeyPart, ...]              # empty => unconditional transition
    rules: Tuple[Rule, ...]

    @property
    def key_width(self) -> int:
        return sum(k.width for k in self.key)

    @property
    def is_unconditional(self) -> bool:
        return not self.key

    def next_states(self) -> List[str]:
        return [r.next_state for r in self.rules]


@dataclass
class ParserSpec:
    """A complete parser specification."""

    name: str
    fields: Dict[str, Field]
    states: Dict[str, SpecState]
    start: str
    state_order: List[str] = dc_field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.state_order:
            self.state_order = list(self.states)

    # -- convenience -------------------------------------------------------
    def state(self, name: str) -> SpecState:
        return self.states[name]

    def field(self, name: str) -> Field:
        return self.fields[name]

    def ordered_states(self) -> List[SpecState]:
        return [self.states[n] for n in self.state_order]

    def replace_state(self, state: SpecState) -> "ParserSpec":
        """A copy of the spec with one state swapped out."""
        states = dict(self.states)
        states[state.name] = state
        return ParserSpec(
            self.name, dict(self.fields), states, self.start, list(self.state_order)
        )

    def with_states(self, states: Dict[str, SpecState], start: Optional[str] = None,
                    order: Optional[List[str]] = None) -> "ParserSpec":
        return ParserSpec(
            self.name,
            dict(self.fields),
            states,
            start if start is not None else self.start,
            list(order) if order is not None else [n for n in states],
        )

    def extraction_width(self, state_name: str) -> int:
        """Total fixed bits extracted by a state (varbits count max width)."""
        return sum(self.fields[f].width for f in self.states[state_name].extracts)

    # -- rendering -----------------------------------------------------------
    def to_source(self) -> str:
        """Render back into the P4-subset surface syntax."""
        lines: List[str] = []
        by_header: Dict[str, List[Field]] = {}
        for f in self.fields.values():
            by_header.setdefault(f.header, []).append(f)
        emitted = set()
        # Preserve extraction order per header where possible.
        for header, fields in by_header.items():
            lines.append(f"header {header} {{")
            for f in fields:
                if f.is_varbit:
                    lines.append(f"    {f.short_name} : varbit {f.width};")
                elif f.is_stack:
                    lines.append(
                        f"    {f.short_name} : {f.width} stack {f.stack_depth};"
                    )
                else:
                    lines.append(f"    {f.short_name} : {f.width};")
            lines.append("}")
            emitted.add(header)
        lines.append(f"parser {self.name} {{")
        for state in self.ordered_states():
            lines.append(f"    state {state.name} {{")
            for fname in state.extracts:
                f = self.fields[fname]
                if f.is_varbit:
                    lines.append(
                        f"        extract_var({f.name}, {f.length_field}, "
                        f"{f.length_multiplier});"
                    )
                else:
                    # Per-field extraction keeps round-trips exact even after
                    # state-splitting rewrites break header boundaries.
                    lines.append(f"        extract({f.name});")
            if state.is_unconditional:
                lines.append(
                    f"        transition {state.rules[0].next_state};"
                )
            else:
                keys = ", ".join(_render_key(k) for k in state.key)
                lines.append(f"        transition select({keys}) {{")
                for rule in state.rules:
                    pats = ", ".join(str(p) for p in rule.patterns)
                    if len(rule.patterns) > 1:
                        pats = f"({pats})"
                    lines.append(f"            {pats} : {rule.next_state};")
                lines.append("        }")
            lines.append("    }")
        lines.append("}")
        return "\n".join(lines) + "\n"


def _render_key(key: KeyPart) -> str:
    if isinstance(key, LookaheadKey):
        if key.offset:
            return f"lookahead({key.width}, {key.offset})"
        return f"lookahead({key.width})"
    return str(key)


# ---------------------------------------------------------------------------
# Lowering from the surface AST
# ---------------------------------------------------------------------------

def from_program(program: lang_ast.Program, start: str = "start") -> ParserSpec:
    """Lower a parsed surface program into the semantic IR."""
    headers = {h.name: h for h in program.headers}
    fields: Dict[str, Field] = {}

    def field_name(header: str, fld: str) -> str:
        return f"{header}.{fld}"

    parser = program.parser
    assert parser is not None

    # Collect varbit length bindings from extract_var statements so the
    # Field record is self-describing.
    varbit_meta: Dict[str, Tuple[str, int]] = {}
    for state in parser.states:
        for stmt in state.statements:
            if isinstance(stmt, lang_ast.ExtractVar):
                qual = field_name(stmt.header, stmt.field)
                length = field_name(stmt.length_ref.header, stmt.length_ref.field)
                prior = varbit_meta.get(qual)
                if prior is not None and prior != (length, stmt.multiplier):
                    raise SemanticError(
                        f"varbit field {qual} has conflicting length bindings"
                    )
                varbit_meta[qual] = (length, stmt.multiplier)

    for header in program.headers:
        for fdecl in header.fields:
            qual = field_name(header.name, fdecl.name)
            if fdecl.is_varbit:
                binding = varbit_meta.get(qual, (None, 1))
                fields[qual] = Field(
                    qual,
                    fdecl.width,
                    is_varbit=True,
                    length_field=binding[0],
                    length_multiplier=binding[1],
                )
            else:
                fields[qual] = Field(qual, fdecl.width, stack_depth=fdecl.stack_depth)

    states: Dict[str, SpecState] = {}
    order: List[str] = []
    for state in parser.states:
        extracts: List[str] = []
        for stmt in state.statements:
            if isinstance(stmt, lang_ast.Extract):
                header = headers[stmt.header]
                if stmt.field is not None:
                    extracts.append(field_name(header.name, stmt.field))
                    continue
                for fdecl in header.fields:
                    if fdecl.is_varbit:
                        # varbit members are extracted only via extract_var
                        continue
                    extracts.append(field_name(header.name, fdecl.name))
            elif isinstance(stmt, lang_ast.ExtractVar):
                extracts.append(field_name(stmt.header, stmt.field))
        keys: List[KeyPart] = []
        for key in state.transition.keys:
            if isinstance(key, lang_ast.Lookahead):
                keys.append(LookaheadKey(key.offset, key.width))
            else:
                qual = field_name(key.header, key.field)
                fdecl = fields[qual]
                hi = key.hi if key.sliced else fdecl.width - 1
                lo = key.lo if key.sliced else 0
                keys.append(FieldKey(qual, hi, lo))
        rules = tuple(
            Rule(tuple(case.patterns), case.next_state)
            for case in state.transition.cases
        )
        states[state.name] = SpecState(state.name, tuple(extracts), tuple(keys), rules)
        order.append(state.name)

    spec = ParserSpec(parser.name, fields, states, start, order)
    _check_spec(spec)
    return spec


def parse_spec(source: str, start: str = "start") -> ParserSpec:
    """Convenience: surface source text straight to IR."""
    from ..lang import parse_program

    return from_program(parse_program(source), start=start)


def _check_spec(spec: ParserSpec) -> None:
    if spec.start not in spec.states:
        raise SemanticError(f"start state {spec.start!r} missing")
    for state in spec.states.values():
        for rule in state.rules:
            if rule.next_state not in (ACCEPT, REJECT) and (
                rule.next_state not in spec.states
            ):
                raise SemanticError(
                    f"state {state.name} targets unknown state {rule.next_state}"
                )
        for part in state.key:
            if isinstance(part, FieldKey):
                if part.field not in spec.fields:
                    raise SemanticError(
                        f"state {state.name} keys on unknown field {part.field}"
                    )
                width = spec.fields[part.field].width
                if not (0 <= part.lo <= part.hi < width):
                    raise SemanticError(
                        f"key slice {part} out of range (width {width})"
                    )
