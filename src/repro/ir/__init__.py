"""Parser-specification IR: bits, spec, simulator, analyses, rewrites."""

from .bits import Bits
from .eqsat import EGraph, EqsatBudget, EqsatStats, saturate_spec
from .simulator import (
    OUTCOME_ACCEPT,
    OUTCOME_OVERRUN,
    OUTCOME_REJECT,
    ParseResult,
    SimulationError,
    simulate_spec,
    spec_input_bound,
)
from .spec import (
    ACCEPT,
    REJECT,
    Field,
    FieldKey,
    KeyPart,
    LookaheadKey,
    ParserSpec,
    Rule,
    SpecState,
    ValueMask,
    from_program,
    parse_spec,
)

__all__ = [
    "ACCEPT",
    "Bits",
    "EGraph",
    "EqsatBudget",
    "EqsatStats",
    "Field",
    "FieldKey",
    "KeyPart",
    "LookaheadKey",
    "OUTCOME_ACCEPT",
    "OUTCOME_OVERRUN",
    "OUTCOME_REJECT",
    "ParseResult",
    "ParserSpec",
    "REJECT",
    "Rule",
    "SimulationError",
    "SpecState",
    "ValueMask",
    "from_program",
    "parse_spec",
    "simulate_spec",
    "spec_input_bound",
]
