"""Static analysis over parser specifications.

These analyses feed the synthesis optimizations of §6:

* key-bit usage per field            -> Opt1 (spec-guided key construction)
* irrelevant fields                  -> Opt2 (bit-width minimization)
* per-state extraction inventory     -> Opt3 (pre-allocated extraction)
* constant pools and wide-constant
  sub-ranges                         -> Opt4 (constant synthesis)
* field-key grouping                 -> Opt5 (grouped key allocation)
* loop detection                     -> Opt7.1 (loop-aware vs loop-free)

They also provide general hygiene checks (reachability, extract-before-use)
used by the frontend lint and by the rewrite mutators.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from .spec import ACCEPT, REJECT, FieldKey, LookaheadKey, ParserSpec, SpecState


def build_state_graph(spec: ParserSpec) -> nx.DiGraph:
    """Directed state-transition graph (accept/reject included as sinks)."""
    graph = nx.DiGraph()
    for state in spec.states.values():
        graph.add_node(state.name)
        for rule in state.rules:
            graph.add_edge(state.name, rule.next_state)
    graph.add_node(ACCEPT)
    graph.add_node(REJECT)
    return graph


def reachable_states(spec: ParserSpec) -> Set[str]:
    """States reachable from start (excluding accept/reject)."""
    graph = build_state_graph(spec)
    reach = nx.descendants(graph, spec.start) | {spec.start}
    return {s for s in reach if s in spec.states}


def unreachable_states(spec: ParserSpec) -> Set[str]:
    return set(spec.states) - reachable_states(spec)


def has_loops(spec: ParserSpec) -> bool:
    """True when some reachable state lies on a cycle (e.g. MPLS stacks)."""
    graph = build_state_graph(spec)
    reach = reachable_states(spec)
    sub = graph.subgraph(reach)
    try:
        nx.find_cycle(sub)
        return True
    except nx.NetworkXNoCycle:
        return False


def looping_states(spec: ParserSpec) -> Set[str]:
    graph = build_state_graph(spec).subgraph(reachable_states(spec))
    out: Set[str] = set()
    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            out |= set(component)
        else:
            (node,) = component
            if graph.has_edge(node, node):
                out.add(node)
    return out


def max_parse_depth(spec: ParserSpec, loop_unroll: int = 4) -> int:
    """Bound on the number of state executions along any run.

    For acyclic specs this is the longest path from start; loops add
    ``loop_unroll`` extra iterations per looping state, matching the K
    parameter of the paper's Figure 6 unrolling.
    """
    reach = reachable_states(spec)
    graph = build_state_graph(spec).subgraph(reach | {ACCEPT, REJECT})
    loopers = looping_states(spec)
    if not loopers:
        condensed = graph
        longest: Dict[str, int] = {}

        def depth_of(node: str) -> int:
            if node in (ACCEPT, REJECT) or node not in spec.states:
                return 0
            if node in longest:
                return longest[node]
            longest[node] = 1  # guard against accidental cycles
            best = 0
            for succ in condensed.successors(node):
                best = max(best, depth_of(succ))
            longest[node] = 1 + best
            return longest[node]

        return depth_of(spec.start)
    return len(reach) + loop_unroll * len(loopers)


# ---------------------------------------------------------------------------
# Key-bit usage (Opt1 / Opt2 / Opt5)
# ---------------------------------------------------------------------------

def key_bits_by_field(spec: ParserSpec) -> Dict[str, Set[int]]:
    """For every field: the set of bit indices used in any transition key."""
    usage: Dict[str, Set[int]] = {name: set() for name in spec.fields}
    for state in spec.states.values():
        for part in state.key:
            if isinstance(part, FieldKey):
                usage[part.field].update(range(part.lo, part.hi + 1))
    return usage


def key_groups_by_field(spec: ParserSpec) -> Dict[str, List[Tuple[int, int]]]:
    """Opt5: contiguous (lo, hi) groups of key bits per field, treating each
    distinct slice appearing in the program as one indivisible group."""
    groups: Dict[str, Set[Tuple[int, int]]] = {}
    for state in spec.states.values():
        for part in state.key:
            if isinstance(part, FieldKey):
                groups.setdefault(part.field, set()).add((part.lo, part.hi))
    return {f: sorted(g) for f, g in groups.items()}


def irrelevant_fields(spec: ParserSpec) -> Set[str]:
    """Opt2: fields none of whose bits appear in any transition key and that
    are not varbit length sources."""
    usage = key_bits_by_field(spec)
    length_sources = {
        f.length_field for f in spec.fields.values() if f.length_field
    }
    return {
        name
        for name, bits in usage.items()
        if not bits and name not in length_sources
    }


def max_lookahead(spec: ParserSpec) -> int:
    """The furthest bit past the cursor any lookahead key reads."""
    best = 0
    for state in spec.states.values():
        for part in state.key:
            if isinstance(part, LookaheadKey):
                best = max(best, part.offset + part.width)
    return best


# ---------------------------------------------------------------------------
# Constant pools (Opt4)
# ---------------------------------------------------------------------------

def state_constants(state: SpecState) -> List[Tuple[int, int]]:
    """The (value, mask) pairs appearing in a state's rules, folded over the
    whole concatenated key (wildcards give mask 0)."""
    widths = [k.width for k in state.key]
    return [rule.combined_value_mask(widths) for rule in state.rules]


def constant_pool(spec: ParserSpec) -> Dict[str, List[Tuple[int, int]]]:
    """Per state: spec constants for Opt4.1's restricted value search."""
    return {
        name: state_constants(state) for name, state in spec.states.items()
    }


def adjacent_concat_constants(
    spec: ParserSpec, limit: int = 64
) -> Dict[Tuple[str, str], List[Tuple[int, int, int]]]:
    """Opt4.1's recovery step: for each edge (s -> t) between keyed states,
    concatenations of s's and t's rule constants as
    (value, mask, combined_width) candidates."""
    out: Dict[Tuple[str, str], List[Tuple[int, int, int]]] = {}
    for state in spec.states.values():
        if state.is_unconditional:
            continue
        for rule in state.rules:
            succ = rule.next_state
            if succ in (ACCEPT, REJECT) or succ not in spec.states:
                continue
            target = spec.states[succ]
            if target.is_unconditional:
                continue
            pairs: List[Tuple[int, int, int]] = []
            s_width = state.key_width
            t_width = target.key_width
            for sv, sm in state_constants(state):
                for tv, tm in state_constants(target):
                    pairs.append(
                        (
                            (sv << t_width) | tv,
                            (sm << t_width) | tm,
                            s_width + t_width,
                        )
                    )
                    if len(pairs) >= limit:
                        break
                if len(pairs) >= limit:
                    break
            out[(state.name, succ)] = pairs
    return out


def split_wide_constant(value: int, width: int, key_limit: int) -> List[Tuple[int, int]]:
    """Opt4.3: all sub-range constants C[i..j] with j - i < key_limit,
    returned as (sub_value, sub_width).  Reduces the constant search space
    from 2^KW to O(KW * len(C))."""
    out: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    for lo in range(width):
        for hi in range(lo, min(lo + key_limit, width)):
            sub_width = hi - lo + 1
            sub_value = (value >> lo) & ((1 << sub_width) - 1)
            item = (sub_value, sub_width)
            if item not in seen:
                seen.add(item)
                out.append(item)
    return out


# ---------------------------------------------------------------------------
# Lints
# ---------------------------------------------------------------------------

def check_extract_before_use(spec: ParserSpec) -> List[str]:
    """Fields referenced in a state's key must be extracted on every path
    reaching that state.  Returns a list of human-readable violations."""
    problems: List[str] = []
    extracted_on_entry: Dict[str, Set[str]] = {}

    def visit(name: str, have: frozenset, guard: Set[Tuple[str, frozenset]]):
        if (name, have) in guard:
            return
        guard.add((name, have))
        state = spec.states[name]
        now = set(have)
        now.update(state.extracts)
        for part in state.key:
            if isinstance(part, FieldKey) and part.field not in now:
                problems.append(
                    f"state {name} keys on {part.field} which may be "
                    "unextracted on some path"
                )
        for rule in state.rules:
            if rule.next_state in spec.states:
                visit(rule.next_state, frozenset(now), guard)

    visit(spec.start, frozenset(), set())
    # Deduplicate, preserve order.
    seen: Set[str] = set()
    unique = []
    for p in problems:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


def search_space_bits(spec: ParserSpec, device_key_limit: int = 32) -> int:
    """A coarse size-of-search-space estimate in bits, mirroring the paper's
    Table 3 'Search Space (bits)' column: symbolic constants (value+mask per
    rule at key width) plus structural variables (next-state selection and
    key allocation choices)."""
    total = 0
    num_states = max(1, len(spec.states))
    import math

    state_bits = max(1, math.ceil(math.log2(num_states + 2)))
    for state in spec.states.values():
        kw = min(state.key_width, device_key_limit) if state.key else 0
        for _rule in state.rules:
            total += 2 * kw          # value + mask
            total += state_bits      # next-state choice
        for part in state.key:
            total += part.width      # allocation choice per key bit
    for field in spec.fields.values():
        total += 1                   # extraction placement freedom
    return total
