"""Figure-level experiments: the Table 1 worked example, the Figure 4/5
motivating comparisons, §7.1's correctness check, and §7.3's
retargetability demonstration."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..baselines import BaselineRejected, dp_parsergen
from ..bmv2 import DROP, BehavioralModel, MatchActionTable
from ..core import CompileOptions, ParserHawkCompiler
from ..core.validate import random_simulation_check
from ..hw import custom_profile, emit_ipu, emit_tofino, ipu_profile, tofino_profile
from ..ir.spec import parse_spec
from ..packets import Ether, IPv4, TCP
from .table4 import ME1

# ---------------------------------------------------------------------------
# Table 1 / Figure 7: Spec1 and Spec2
# ---------------------------------------------------------------------------

SPEC1 = """
header h { field0 : 4; field1 : 4; }
parser Spec1 {
    state start  { extract(h.field0); transition state1; }
    state state1 { extract(h.field1); transition accept; }
}
"""

SPEC2 = """
header h { field0 : 4; field1 : 4; }
parser Spec2 {
    state start {
        extract(h.field0);
        transition select(h.field0[0:0]) { 0 : state1; default : accept; }
    }
    state state1 { extract(h.field1); transition accept; }
}
"""


@dataclass
class ExampleResult:
    name: str
    entries: int
    rows: List[str]


def run_table1_examples() -> List[ExampleResult]:
    """Compile Spec1/Spec2 for the single-TCAM target and report the rows
    (Table 1 shows Impl1 needs 1 effective transition behaviour and Impl2
    the conditional pair)."""
    out = []
    compiler = ParserHawkCompiler()
    device = tofino_profile()
    for name, source in (("Spec1", SPEC1), ("Spec2", SPEC2)):
        result = compiler.compile(parse_spec(source), device)
        assert result.ok, result.message
        rows = [
            entry.describe({s.sid: s for s in result.program.states})
            for entry in result.program.entries
        ]
        out.append(ExampleResult(name, result.num_entries, rows))
    return out


# ---------------------------------------------------------------------------
# Figure 4: V1 (heuristic) vs V2 (synthesis) on devices A and B
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    device: str
    key_limit: int
    parserhawk_entries: int
    heuristic_entries: int
    heuristic_rejected: str = ""


def run_fig4(options: Optional[CompileOptions] = None) -> List[Fig4Result]:
    """Device B fits the 4-bit key; device A (2-bit window) forces key
    splitting.  The heuristic arm is DPParserGen (the V1-style two-phase
    pipeline); ParserHawk is V2."""
    spec = parse_spec(ME1)
    out: List[Fig4Result] = []
    for device_name, key_limit in (("device B", 4), ("device A", 2)):
        device = custom_profile(
            key_limit=key_limit, tcam_limit=64, lookahead_limit=4
        )
        compiler = ParserHawkCompiler(options or CompileOptions())
        result = compiler.compile(spec, device)
        assert result.ok, f"{device_name}: {result.message}"
        heuristic = -1
        rejected = ""
        try:
            dp = dp_parsergen.compile_spec(spec, device)
            heuristic = dp.num_entries
        except BaselineRejected as exc:
            rejected = exc.reason
        out.append(
            Fig4Result(
                device_name, key_limit, result.num_entries, heuristic, rejected
            )
        )
    return out


# ---------------------------------------------------------------------------
# Figure 5: same merge count, different TCAM usage under split
# ---------------------------------------------------------------------------

FIG5_SOL1 = """
// Sol1: mask+value pairs whose exact bits sit in ONE window half.
header h { k : 4; a : 2; }
parser Fig5 {
    state start {
        extract(h.k);
        transition select(h.k) {
            0b1000 &&& 0b1100 : n1;
            0b0100 &&& 0b1100 : n1;
            default : accept;
        }
    }
    state n1 { extract(h.a); transition accept; }
}
"""

FIG5_SOL2 = """
// Sol2: the same semantics written with exact bits straddling BOTH
// halves of the window.
header h { k : 4; a : 2; }
parser Fig5 {
    state start {
        extract(h.k);
        transition select(h.k) {
            0b1000 &&& 0b1110 : n1;
            0b1010 &&& 0b1110 : n1;
            0b0100 &&& 0b1101 : n1;
            0b0101 &&& 0b1101 : n1;
            default : accept;
        }
    }
    state n1 { extract(h.a); transition accept; }
}
"""


@dataclass
class Fig5Result:
    writing_style: str
    spec_rule_count: int
    parserhawk_entries: int
    dp_entries: int


def run_fig5(options: Optional[CompileOptions] = None) -> List[Fig5Result]:
    """Two writings of the same semantics; ParserHawk lands on the same
    entry count for both while the phase-decoupled baseline's output
    depends on the writing style (§3.2.2)."""
    device = custom_profile(key_limit=2, tcam_limit=64, lookahead_limit=4)
    out: List[Fig5Result] = []
    for style, source in (("Sol1", FIG5_SOL1), ("Sol2", FIG5_SOL2)):
        spec = parse_spec(source)
        compiler = ParserHawkCompiler(options or CompileOptions())
        result = compiler.compile(spec, device)
        assert result.ok, result.message
        try:
            dp = dp_parsergen.compile_spec(spec, device)
            dp_entries = dp.num_entries
        except BaselineRejected:
            dp_entries = -1
        out.append(
            Fig5Result(
                style,
                len(spec.states["start"].rules),
                result.num_entries,
                dp_entries,
            )
        )
    return out


# ---------------------------------------------------------------------------
# §7.1 correctness: simulator check + bmv2-style packet test
# ---------------------------------------------------------------------------

ETH_IP_PARSER = """
// Byte-accurate Ethernet -> IPv4 -> TCP parser for the packet test.
header ethernet { dst : 48; src : 48; etherType : 16; }
header ipv4 {
    version : 4; ihl : 4; dscp : 6; ecn : 2; totalLen : 16;
    identification : 16; flags : 3; fragOffset : 13;
    ttl : 8; protocol : 8; checksum : 16; src : 32; dst : 32;
}
header tcp { sport : 16; dport : 16; }
parser EthIp {
    state start {
        extract(ethernet);
        transition select(ethernet.etherType) {
            0x0800 : parse_ipv4;
            default : reject;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.protocol) {
            6 : parse_tcp;
            default : accept;
        }
    }
    state parse_tcp { extract(tcp); transition accept; }
}
"""


@dataclass
class CorrectnessReport:
    random_check_passed: bool
    random_samples: int
    delivered_to_target: bool
    wrong_ip_dropped: bool
    non_ip_dropped: bool


def run_correctness_check(
    samples: int = 300, options: Optional[CompileOptions] = None
) -> CorrectnessReport:
    """Compile the Ethernet-IP parser, fuzz it against the spec
    (Figure 22), then send crafted packets through the behavioural model:
    a TCP packet with the right destination IP must reach its port, and
    off-target or non-IP packets must drop (§7.1's bmv2+Scapy test)."""
    spec = parse_spec(ETH_IP_PARSER)
    device = tofino_profile(
        key_limit=16, tcam_limit=64, lookahead_limit=16, extract_limit=256
    )
    compiler = ParserHawkCompiler(options or CompileOptions())
    result = compiler.compile(spec, device)
    assert result.ok, result.message
    report = random_simulation_check(spec, result.program, samples=samples)

    model = BehavioralModel(result.program)
    routing = model.add_table(
        MatchActionTable("ipv4_route", "ipv4.dst", 32)
    )
    target_ip = 0x0A000002  # 10.0.0.2
    routing.add_exact(target_ip, port=7)
    routing.set_default(DROP)

    good = Ether() / IPv4(dst=target_ip) / TCP()
    wrong_ip = Ether() / IPv4(dst=0x0A0000FE) / TCP()
    non_ip = Ether(etherType=0x86DD)

    return CorrectnessReport(
        random_check_passed=report.passed,
        random_samples=report.samples,
        delivered_to_target=model.process(good).port == 7,
        wrong_ip_dropped=model.process(wrong_ip).port == DROP,
        non_ip_dropped=model.process(non_ip).port == DROP,
    )


# ---------------------------------------------------------------------------
# §7.3 retargetability
# ---------------------------------------------------------------------------

@dataclass
class RetargetResult:
    benchmark: str
    tofino_entries: int
    ipu_stages: int
    tofino_config: str
    ipu_config: str
    both_valid: bool


def run_retarget(
    source: Optional[str] = None, options: Optional[CompileOptions] = None
) -> RetargetResult:
    """Compile ONE spec for both targets from the same compiler — only the
    device profile changes (the paper's '<100 lines' claim is a profile
    swap here)."""
    from ..benchgen.suites import SAI_V1

    src = source or SAI_V1
    spec = parse_spec(src)
    tofino = tofino_profile(
        key_limit=8, tcam_limit=64, lookahead_limit=8, extract_limit=64
    )
    ipu = ipu_profile(
        key_limit=8, tcam_per_stage_limit=16, lookahead_limit=8,
        stage_limit=10, extract_limit=64,
    )
    compiler = ParserHawkCompiler(options or CompileOptions())
    res_t = compiler.compile(spec, tofino)
    res_i = compiler.compile(spec, ipu)
    assert res_t.ok and res_i.ok, (res_t.message, res_i.message)
    valid = (
        random_simulation_check(spec, res_t.program, samples=200).passed
        and random_simulation_check(spec, res_i.program, samples=200).passed
    )
    return RetargetResult(
        spec.name,
        res_t.num_entries,
        res_i.num_stages,
        emit_tofino(res_t.program),
        emit_ipu(res_i.program),
        valid,
    )
