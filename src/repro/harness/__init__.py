"""Experiment harness: regenerate every table and figure of §7."""

from .figures import (
    CorrectnessReport,
    ExampleResult,
    Fig4Result,
    Fig5Result,
    RetargetResult,
    run_correctness_check,
    run_fig4,
    run_fig5,
    run_retarget,
    run_table1_examples,
)
from .reporting import format_table, geometric_mean
from .summary import SpeedupSummary, summarize_speedups
from .table3 import IPU, TOFINO, Table3Row, format_table3, run_row, run_table3
from .table4 import Table4Row, format_table4, run_table4
from .table5 import Table5Row, format_table5, run_table5

__all__ = [
    "CorrectnessReport",
    "ExampleResult",
    "Fig4Result",
    "Fig5Result",
    "IPU",
    "RetargetResult",
    "SpeedupSummary",
    "TOFINO",
    "Table3Row",
    "Table4Row",
    "Table5Row",
    "format_table",
    "format_table3",
    "format_table4",
    "format_table5",
    "geometric_mean",
    "run_correctness_check",
    "run_fig4",
    "run_fig5",
    "run_retarget",
    "run_row",
    "run_table1_examples",
    "run_table3",
    "run_table4",
    "run_table5",
    "summarize_speedups",
]
