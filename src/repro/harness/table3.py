"""Table 3: ParserHawk vs. vendor compilers over the benchmark suite.

For each row (benchmark + mutation): ParserHawk's resource usage and
OPT-configuration compile time, the search-space size, a capped "Orig"
(all optimizations disabled) time, the resulting speed-up, and the
emulated vendor compiler's resource usage or rejection reason."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..baselines import BaselineRejected, ipu_compiler, tofino_compiler
from ..benchgen import TABLE3_ROWS, Benchmark
from ..core import CompileOptions, ParserHawkCompiler
from ..core.validate import random_simulation_check
from ..hw.device import DeviceProfile
from ..hw import ipu_profile, tofino_profile
from ..obs import Tracer, use_tracer
from .reporting import (
    fmt_speedup,
    fmt_time,
    format_span_breakdown,
    format_table,
)

# Scaled device profiles for the whole table (DESIGN.md scaling note).
TOFINO = tofino_profile(
    key_limit=8, tcam_limit=64, lookahead_limit=8, extract_limit=64
)
IPU = ipu_profile(
    key_limit=8,
    tcam_per_stage_limit=16,
    lookahead_limit=8,
    stage_limit=10,
    extract_limit=64,
)


@dataclass
class Table3Row:
    label: str
    device: str
    ph_entries: int
    ph_stages: int
    search_space_bits: int
    opt_seconds: float
    orig_seconds: Optional[Tuple[float, bool]]   # (seconds, capped)
    baseline_entries: int
    baseline_stages: int
    baseline_rejected: str                       # empty when it compiled
    validated: bool
    profile: str = ""                            # span breakdown of OPT compile
    cached: bool = False                         # OPT result came from cache_dir

    @property
    def ph_resource(self) -> int:
        return self.ph_stages if self.device == "ipu" else self.ph_entries

    @property
    def baseline_resource(self) -> int:
        if self.baseline_rejected:
            return -1
        return (
            self.baseline_stages
            if self.device == "ipu"
            else self.baseline_entries
        )


def run_row(
    bench: Benchmark,
    device_kind: str = "tofino",
    include_orig: bool = False,
    orig_cap_seconds: float = 20.0,
    validate_samples: int = 200,
    options: Optional[CompileOptions] = None,
    cache_dir: Optional[str] = None,
) -> Table3Row:
    device = TOFINO if device_kind == "tofino" else IPU
    spec = bench.spec()
    opts = options or CompileOptions()
    if cache_dir:
        opts = opts.with_(cache_dir=cache_dir)
    compiler = ParserHawkCompiler(opts)
    tracer = Tracer()
    with use_tracer(tracer):
        result = compiler.compile(spec, device)
    opt_seconds = result.stats.total_seconds or tracer.finish().elapsed()
    if not result.ok:
        raise RuntimeError(
            f"ParserHawk failed on {bench.row_label} ({device_kind}): "
            f"{result.status} {result.message}"
        )
    validated = True
    if validate_samples:
        validated = random_simulation_check(
            spec, result.program, samples=validate_samples
        ).passed

    orig: Optional[Tuple[float, bool]] = None
    if include_orig:
        orig = measure_orig(spec, device, orig_cap_seconds)

    baseline_entries = baseline_stages = -1
    rejected = ""
    baseline_mod = tofino_compiler if device_kind == "tofino" else ipu_compiler
    try:
        base = baseline_mod.compile_spec(spec, device)
        baseline_entries = base.num_entries
        baseline_stages = base.num_stages
    except BaselineRejected as exc:
        rejected = exc.reason

    return Table3Row(
        label=bench.row_label,
        device=device_kind,
        ph_entries=result.num_entries,
        ph_stages=result.num_stages,
        search_space_bits=result.stats.search_space_bits,
        opt_seconds=opt_seconds,
        orig_seconds=orig,
        baseline_entries=baseline_entries,
        baseline_stages=baseline_stages,
        baseline_rejected=rejected,
        validated=validated,
        profile=format_span_breakdown(tracer),
        cached=result.cached,
    )


def measure_orig(
    spec, device: DeviceProfile, cap_seconds: float
) -> Tuple[float, bool]:
    """Compile with every §6 optimization disabled, under a wall-clock cap
    (the paper's cap is 24 hours; ours is configurable and the capped
    cells render as '>cap')."""
    opts = CompileOptions.all_disabled(
        total_max_seconds=cap_seconds,
        budget_time_slice=cap_seconds,
        max_time_slice=cap_seconds,
    )
    compiler = ParserHawkCompiler(opts)
    t0 = time.monotonic()
    result = compiler.compile(spec, device)
    elapsed = time.monotonic() - t0
    if result.ok:
        return (elapsed, False)
    return (max(elapsed, cap_seconds), True)


def run_table3(
    device_kind: str = "tofino",
    rows: Optional[Sequence[Benchmark]] = None,
    include_orig: bool = False,
    orig_cap_seconds: float = 20.0,
    validate_samples: int = 200,
    progress: Optional[Callable[[str], None]] = None,
    cache_dir: Optional[str] = None,
) -> List[Table3Row]:
    out: List[Table3Row] = []
    for bench in rows if rows is not None else TABLE3_ROWS:
        row = run_row(
            bench,
            device_kind,
            include_orig=include_orig,
            orig_cap_seconds=orig_cap_seconds,
            validate_samples=validate_samples,
            cache_dir=cache_dir,
        )
        if progress:
            suffix = " (cached)" if row.cached else ""
            progress(f"{row.label}: {row.ph_resource}{suffix}")
        out.append(row)
    return out


def format_table3(rows: Sequence[Table3Row]) -> str:
    device = rows[0].device if rows else "?"
    resource = "# Stages" if device == "ipu" else "# TCAM"
    headers = [
        "Program Name",
        resource,
        "Search Space (bits)",
        "OPT time (s)",
        "Orig time (s)",
        "speedup",
        f"{device} compiler",
        "valid",
    ]
    body = []
    for row in rows:
        baseline = (
            row.baseline_rejected
            if row.baseline_rejected
            else str(row.baseline_resource)
        )
        body.append(
            [
                row.label,
                str(row.ph_resource),
                str(row.search_space_bits),
                f"{row.opt_seconds:.2f}",
                fmt_time(row.orig_seconds),
                fmt_speedup(row.opt_seconds, row.orig_seconds),
                baseline,
                "yes" if row.validated else "NO",
            ]
        )
    return format_table(headers, body, title=f"Table 3 ({device})")
