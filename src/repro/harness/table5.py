"""Table 5: ablation of Opt4 (constant synthesis) and Opt5 (key grouping).

Three benchmarks x three configurations: all *other* optimizations on but
Opt4 and Opt5 off; plus Opt5; plus Opt4 and Opt5 (the full OPT arm).
The paper reports roughly an order of magnitude from each."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..benchgen import benchmark_by_label
from ..core import CompileOptions, ParserHawkCompiler
from .reporting import format_table
from .table3 import IPU, TOFINO

ABLATION_BENCHMARKS = ["Sai V1", "Dash V1", "Large tran key"]

CONFIGS: List[Tuple[str, Dict[str, bool]]] = [
    (
        "Other OPT",
        {"opt4_constant_synthesis": False, "opt4_adjacent_concat": False,
         "opt5_key_grouping": False},
    ),
    (
        "+ OPT5",
        {"opt4_constant_synthesis": False, "opt4_adjacent_concat": False,
         "opt5_key_grouping": True},
    ),
    ("+ OPT4, 5", {}),
]


@dataclass
class Table5Row:
    benchmark: str
    device: str
    seconds: Dict[str, float]       # config label -> compile seconds
    capped: Dict[str, bool]


def run_table5(
    device_kind: str = "tofino",
    benchmarks: Optional[Sequence[str]] = None,
    cap_seconds: float = 60.0,
) -> List[Table5Row]:
    device = TOFINO if device_kind == "tofino" else IPU
    rows: List[Table5Row] = []
    for label in benchmarks if benchmarks is not None else ABLATION_BENCHMARKS:
        bench = benchmark_by_label(label)
        spec = bench.spec()
        seconds: Dict[str, float] = {}
        capped: Dict[str, bool] = {}
        for config_label, overrides in CONFIGS:
            opts = CompileOptions(
                total_max_seconds=cap_seconds,
                budget_time_slice=cap_seconds,
                max_time_slice=cap_seconds,
                **overrides,
            )
            compiler = ParserHawkCompiler(opts)
            t0 = time.monotonic()
            result = compiler.compile(spec, device)
            elapsed = time.monotonic() - t0
            seconds[config_label] = elapsed
            capped[config_label] = not result.ok
        rows.append(Table5Row(label, device_kind, seconds, capped))
    return rows


def format_table5(rows: Sequence[Table5Row]) -> str:
    config_labels = [c for c, _ in CONFIGS]
    headers = ["Program Name"] + [f"{c} (s)" for c in config_labels]
    body = []
    for row in rows:
        cells = [row.benchmark]
        for c in config_labels:
            mark = ">" if row.capped.get(c) else ""
            cells.append(f"{mark}{row.seconds[c]:.2f}")
        body.append(cells)
    device = rows[0].device if rows else "?"
    return format_table(headers, body, title=f"Table 5 ablation ({device})")
