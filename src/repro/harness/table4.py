"""Table 4: ParserHawk vs DPParserGen over the motivating examples under
parameterized hardware resources.

* ME-1 needs a good entry-merging strategy (Figure 4 Step 1),
* ME-2 needs transition-key splitting (Figure 4 Step 2) — run at two key
  widths: one where the key fits (both compilers tie) and one where it
  must split (DPParserGen's fixed MSB-first order loses),
* ME-3 contains semantically redundant entries DPParserGen cannot detect,
* plus the Large-tran-key benchmark from the main suite.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines import BaselineRejected, dp_parsergen
from ..core import CompileOptions, ParserHawkCompiler
from ..hw import custom_profile
from ..ir.spec import parse_spec
from .reporting import format_table

ME1 = """
// ME-1: entry merging quality (the Figure 3 program).
header h { tranKey : 4; a : 2; b : 2; c : 2; }
parser ME1 {
    state start {
        extract(h.tranKey);
        transition select(h.tranKey) {
            15 : n1; 11 : n1; 7 : n1; 3 : n1;
            14 : n2;
            2 : n3;
            default : n4;
        }
    }
    state n1 { extract(h.a); transition accept; }
    state n2 { extract(h.b); transition accept; }
    state n3 { extract(h.c); transition accept; }
    state n4 { transition reject; }
}
"""

ME2 = """
// ME-2: a wide exact-match key that must be split on narrow devices.
header h { k : 8; a : 2; }
parser ME2 {
    state start {
        extract(h.k);
        transition select(h.k) {
            0x1A : n1;
            0x1B : n1;
            0x2A : n2;
            default : n3;
        }
    }
    state n1 { extract(h.a); transition accept; }
    state n2 { transition reject; }
    state n3 { transition reject; }
}
"""

ME3 = """
// ME-3: many rules, all with the same destination — semantically one
// catch-all.  Values are pairwise Hamming-distance >= 2, so first-fit
// merging finds nothing.
header h { k : 4; a : 2; }
parser ME3 {
    state start {
        extract(h.k);
        transition select(h.k) {
            0 : n1; 3 : n1; 5 : n1; 6 : n1;
            9 : n1; 10 : n1; 12 : n1; 15 : n1;
            default : n1;
        }
    }
    state n1 { extract(h.a); transition accept; }
}
"""

LARGE_KEY = """
// Large tran key (Table 4's first row): wide key, narrow discriminator.
header h { wide : 8; a : 2; }
parser LargeKey {
    state start {
        extract(h.wide);
        transition select(h.wide) {
            0x0A : n1;
            0x0B : n1;
            default : n2;
        }
    }
    state n1 { extract(h.a); transition accept; }
    state n2 { transition reject; }
}
"""


@dataclass
class Table4Row:
    label: str
    ph_entries: int
    dp_entries: int
    dp_rejected: str
    key_limit: int
    lookahead_limit: int
    extract_limit: int
    ph_seconds: float


# (label, source, key_limit, lookahead, extract_limit) — mirrors the
# parameterized-hardware rows of Table 4.
TABLE4_CONFIGS = [
    ("Large tran key", LARGE_KEY, 4, 2, 10),
    ("ME-1 (4-bit key)", ME1, 4, 2, 10),
    ("ME-2 (16-bit window)", ME2, 16, 2, 10),
    ("ME-2 (8-bit window)", ME2, 8, 2, 10),
    ("ME-2 (4-bit window)", ME2, 4, 2, 10),
    ("ME-3 (16-bit window)", ME3, 16, 2, 10),
]


def run_table4(
    configs: Optional[Sequence] = None,
    options: Optional[CompileOptions] = None,
) -> List[Table4Row]:
    rows: List[Table4Row] = []
    for label, source, key_limit, lookahead, extract in (
        configs if configs is not None else TABLE4_CONFIGS
    ):
        spec = parse_spec(source)
        device = custom_profile(
            key_limit=key_limit,
            tcam_limit=64,
            lookahead_limit=lookahead,
            extract_limit=extract,
        )
        compiler = ParserHawkCompiler(options or CompileOptions())
        t0 = time.monotonic()
        result = compiler.compile(spec, device)
        elapsed = time.monotonic() - t0
        if not result.ok:
            raise RuntimeError(f"ParserHawk failed on {label}: {result.message}")
        dp_entries = -1
        rejected = ""
        try:
            dp = dp_parsergen.compile_spec(spec, device)
            dp_entries = dp.num_entries
        except BaselineRejected as exc:
            rejected = exc.reason
        rows.append(
            Table4Row(
                label,
                result.num_entries,
                dp_entries,
                rejected,
                key_limit,
                lookahead,
                extract,
                elapsed,
            )
        )
    return rows


def format_table4(rows: Sequence[Table4Row]) -> str:
    headers = [
        "Benchmark",
        "ParserHawk #TCAM",
        "DPParserGen #TCAM",
        "key width",
        "lookahead",
        "extraction",
    ]
    body = []
    for row in rows:
        dp = row.dp_rejected if row.dp_rejected else str(row.dp_entries)
        body.append(
            [
                row.label,
                str(row.ph_entries),
                dp,
                f"{row.key_limit}-bit",
                f"{row.lookahead_limit}-bit",
                f"{row.extract_limit}-bit",
            ]
        )
    return format_table(headers, body, title="Table 4 (vs DPParserGen)")
