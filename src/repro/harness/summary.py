"""Headline aggregates from §7: geometric-mean optimization speed-up and
the fraction of benchmarks finishing under the 1-minute / 5-minute marks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .reporting import geometric_mean, speedup_of
from .table3 import Table3Row


@dataclass
class SpeedupSummary:
    geomean_speedup: float
    min_speedup: float
    max_speedup: float
    rows: int
    under_one_minute: float          # fraction of OPT compiles < 60 s
    under_five_minutes: float
    any_capped: bool                 # some Orig arms hit their cap

    def __str__(self) -> str:
        prefix = ">" if self.any_capped else ""
        return (
            f"geomean speedup {prefix}{self.geomean_speedup:.2f}x over "
            f"{self.rows} rows (range {self.min_speedup:.2f}x.."
            f"{self.max_speedup:.2f}x); "
            f"{self.under_one_minute:.0%} compile <1min, "
            f"{self.under_five_minutes:.0%} <5min"
        )


def summarize_speedups(rows: Sequence[Table3Row]) -> SpeedupSummary:
    speedups: List[float] = []
    capped = False
    for row in rows:
        s = speedup_of(row.opt_seconds, row.orig_seconds)
        if s is not None:
            speedups.append(s)
            if isinstance(row.orig_seconds, tuple) and row.orig_seconds[1]:
                capped = True
    opt_times = [row.opt_seconds for row in rows]
    n = max(1, len(opt_times))
    return SpeedupSummary(
        geomean_speedup=geometric_mean(speedups),
        min_speedup=min(speedups) if speedups else 0.0,
        max_speedup=max(speedups) if speedups else 0.0,
        rows=len(rows),
        under_one_minute=sum(1 for t in opt_times if t < 60) / n,
        under_five_minutes=sum(1 for t in opt_times if t < 300) / n,
        any_capped=capped,
    )
