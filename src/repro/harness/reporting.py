"""Row formatting and aggregate statistics for the experiment harness."""

from __future__ import annotations

import math
from typing import Any, Iterable, Optional, Sequence, Tuple, Union

from ..obs import format_profile, format_span_tree
from ..obs.export import aggregate

TimeValue = Union[float, Tuple[float, bool]]   # seconds, (seconds, capped?)


def fmt_time(value: Optional[TimeValue]) -> str:
    """Format seconds; capped measurements render as '>cap' like the
    paper's '>86400' cells."""
    if value is None:
        return "-"
    if isinstance(value, tuple):
        seconds, capped = value
        if capped:
            return f">{seconds:.0f}"
        return f"{seconds:.2f}"
    return f"{value:.2f}"


def speedup_of(opt: Optional[TimeValue], orig: Optional[TimeValue]) -> Optional[float]:
    """orig/opt; a capped orig yields a lower bound (still orig/opt).

    Non-positive measurements (a cache-served compile reports ~0s; a
    clock hiccup can even go negative) make the ratio meaningless, so
    they return ``None`` — rendered as '-' — rather than a fabricated
    number from a clamped denominator."""
    if opt is None or orig is None:
        return None
    opt_s = opt[0] if isinstance(opt, tuple) else opt
    orig_s = orig[0] if isinstance(orig, tuple) else orig
    if opt_s <= 0 or orig_s <= 0:
        return None
    return orig_s / opt_s


def fmt_speedup(
    opt: Optional[TimeValue], orig: Optional[TimeValue]
) -> str:
    s = speedup_of(opt, orig)
    if s is None:
        return "-"
    capped = isinstance(orig, tuple) and orig[1]
    prefix = ">" if capped else ""
    return f"{prefix}{s:.2f}x"


def geometric_mean(values: Iterable[float]) -> float:
    vals = [v for v in values if v and v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            " | ".join(str(c).ljust(widths[i]) for i, c in enumerate(row))
        )
    return "\n".join(lines)


def format_sat_phases(trace: Any) -> str:
    """One-line SAT-engine phase summary from a trace's counters.

    The solver accounts its own propagate/analyze/simplify wall time and
    the bit-blaster its structural-cache hits (recorded per ``check`` by
    the SMT facade); summing them across all spans gives the solver-level
    profile without any external tooling.  Returns "" when the trace
    recorded no SAT activity."""
    totals: dict = {}
    for row in aggregate(trace).values():
        for key, value in row["counters"].items():
            if key.startswith("sat."):
                totals[key] = totals.get(key, 0) + value
    if not totals:
        return ""
    parts = [
        f"{label} {totals.get(key, 0.0):.3f}s"
        for label, key in (
            ("propagate", "sat.propagate_seconds"),
            ("analyze", "sat.analyze_seconds"),
            ("simplify", "sat.simplify_seconds"),
        )
    ]
    parts.append(f"gate-cache hits {int(totals.get('sat.gate_cache_hits', 0))}")
    return "SAT phases: " + " | ".join(parts)


def format_eqsat_summary(trace: Any) -> str:
    """One-line equality-saturation summary from a trace's counters.

    ``saturate_spec`` records per-run ``eqsat.*`` counters (iterations,
    surviving e-classes, e-nodes, extraction wall time); summing across
    spans profiles the normalization stage the same way
    :func:`format_sat_phases` profiles the solver.  Returns "" when the
    trace recorded no saturation (``--eqsat off`` or a cache hit)."""
    totals: dict = {}
    for row in aggregate(trace).values():
        for key, value in row["counters"].items():
            if key.startswith("eqsat."):
                totals[key] = totals.get(key, 0) + value
    if not totals:
        return ""
    return (
        "eqsat: "
        f"iterations {int(totals.get('eqsat.iterations', 0))} | "
        f"classes {int(totals.get('eqsat.classes', 0))} | "
        f"nodes {int(totals.get('eqsat.nodes', 0))} | "
        f"extract {totals.get('eqsat.extract_seconds', 0.0):.3f}s"
    )


def format_span_breakdown(
    trace: Any, max_depth: int = 4, min_seconds: float = 0.005
) -> str:
    """Benchmark-report rendering of a trace (a :class:`repro.obs.Tracer`,
    :class:`repro.obs.Span`, or an exported span-tree dict): the per-span
    profile table, a SAT-engine phase summary, and a depth-limited span
    tree."""
    profile = format_profile(trace)
    tree = format_span_tree(trace, max_depth=max_depth,
                            min_seconds=min_seconds)
    phases = format_sat_phases(trace)
    if phases:
        profile = f"{profile}\n\n{phases}"
    eqsat = format_eqsat_summary(trace)
    if eqsat:
        profile = f"{profile}\n{eqsat}" if phases else f"{profile}\n\n{eqsat}"
    return f"{profile}\n\nspan tree (depth<={max_depth}):\n{tree}"
