"""Synthetic random parser generator.

The paper augments its benchmark set with synthetic parsers "to reflect
particular parser patterns suggested in conversations with programmers".
This generator produces random — but always well-formed and
simulatable — layered parser specifications from a seed, used by the
property-based tests and the scalability sweeps."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..ir.spec import (
    ACCEPT,
    REJECT,
    Field,
    FieldKey,
    ParserSpec,
    Rule,
    SpecState,
    ValueMask,
)


def random_spec(
    seed: int = 0,
    num_states: int = 4,
    max_field_width: int = 6,
    max_rules: int = 4,
    accept_bias: float = 0.5,
    name: Optional[str] = None,
) -> ParserSpec:
    """A random layered (acyclic) parser spec.

    State i extracts one fresh field and keys on it; rules target strictly
    later states (or accept/reject), so every generated spec is loop-free,
    lint-clean (keys only over extracted fields) and terminates."""
    rng = random.Random(seed)
    fields: Dict[str, Field] = {}
    states: Dict[str, SpecState] = {}
    order: List[str] = []
    # The surface language's entry-state convention is "start"; using it
    # here keeps generated specs to_source/parse round-trippable.
    state_names = ["start"] + [f"s{i}" for i in range(1, num_states)]
    for i, sname in enumerate(state_names):
        fname = f"h.f{i}"
        width = rng.randint(2, max_field_width)
        fields[fname] = Field(fname, width)
        later = state_names[i + 1 :]
        if not later or rng.random() < 0.25:
            # Terminal state: unconditional accept.
            states[sname] = SpecState(
                sname, (fname,), (), (Rule((), ACCEPT),)
            )
            order.append(sname)
            continue
        key = (FieldKey(fname, width - 1, 0),)
        num_rules = rng.randint(1, max_rules)
        used_values = set()
        rules: List[Rule] = []
        for _ in range(num_rules):
            value = rng.getrandbits(width)
            if value in used_values:
                continue
            used_values.add(value)
            dest = rng.choice(later)
            rules.append(Rule((ValueMask(value),), dest))
        default_dest = ACCEPT if rng.random() < accept_bias else REJECT
        rules.append(Rule((ValueMask(0, wildcard=True),), default_dest))
        states[sname] = SpecState(sname, (fname,), key, tuple(rules))
        order.append(sname)
    return ParserSpec(
        name or f"Synthetic{seed}", fields, states, state_names[0], order
    )


def random_spec_family(
    count: int, seed: int = 0, **kwargs
) -> List[ParserSpec]:
    """A family of random specs with distinct seeds."""
    return [
        random_spec(seed=seed + i, name=f"Synthetic{seed + i}", **kwargs)
        for i in range(count)
    ]
