"""Benchmark suite: the paper's programs, mutations, and synthetic specs."""

from .suites import (
    BASE_PROGRAMS,
    Benchmark,
    EXTRA_BENCHMARKS,
    MUTATIONS,
    TABLE3_ROWS,
    all_base_specs,
    benchmark_by_label,
)
from .synthetic import random_spec, random_spec_family

__all__ = [
    "BASE_PROGRAMS",
    "Benchmark",
    "EXTRA_BENCHMARKS",
    "MUTATIONS",
    "TABLE3_ROWS",
    "all_base_specs",
    "benchmark_by_label",
    "random_spec",
    "random_spec_family",
]
