"""The paper's benchmark suite (§7, Table 3), re-authored at laptop scale.

Every base program keeps the *structure* that drives compiler behaviour —
state counts, transition shapes, loopiness, key composition — while field
widths are scaled so the pure-Python solver substrate finishes in CI time
(see DESIGN.md's scaling note).  Benchmarks derive from the same sources
the paper cites: classic Ethernet/IP/ICMP parsing (Gibb et al.), MPLS
stacks, SONiC's sai.p4 and dash.p4 subsets, plus the synthetic patterns
("Large tran key", "Multi-key", "Pure extraction") the paper created from
conversations with parser developers.

Mutations reuse the Figure 21 rewrite rules R1-R5 plus two named
transforms: ``unroll`` (loop unrolling) and ``merge`` (state merging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..core.normalize import unroll_self_loops
from ..ir.rewrites import (
    add_redundant_entries,
    add_unreachable_entries,
    merge_entries,
    merge_states,
    merge_transition_key,
    remove_redundant_entries,
    remove_unreachable_entries,
    split_entries,
    split_states,
    split_transition_key,
)
from ..ir.spec import ParserSpec, parse_spec

# ---------------------------------------------------------------------------
# Base programs
# ---------------------------------------------------------------------------

PARSE_ETHERNET = """
// Classic Ethernet dispatch (Gibb et al. benchmark, scaled).
header eth  { dst : 8; src : 8; etherType : 8; }
header ipv4 { verIhl : 4; proto : 4; }
header vlan { pcpVid : 4; etherType : 4; }
parser ParseEthernet {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x08 : parse_ipv4;
            0x81 : parse_vlan;
            default : accept;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
    state parse_vlan { extract(vlan); transition accept; }
}
"""

PARSE_ICMP = """
// Ethernet -> IPv4 -> ICMP with a type check (production pattern).
header eth  { dst : 4; src : 4; etherType : 4; }
header ipv4 { ver : 2; proto : 4; }
header icmp { icmpType : 4; code : 2; }
parser ParseIcmp {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_ipv4;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            1 : parse_icmp;
            6 : accept;
            default : reject;
        }
    }
    state parse_icmp {
        extract(icmp);
        transition select(icmp.icmpType) {
            0 : accept;
            8 : accept;
            default : reject;
        }
    }
}
"""

PARSE_MPLS = """
// MPLS label stack: the loop benchmark (single TCAM entry reuse on
// Tofino; must unroll for the IPU).
header eth  { etherType : 4; }
header mpls { label : 3 stack 3; bos : 1 stack 3; }
parser ParseMPLS {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_mpls;
            default : accept;
        }
    }
    state parse_mpls {
        extract(mpls);
        transition select(mpls.bos) {
            1 : accept;
            default : parse_mpls;
        }
    }
}
"""

LARGE_TRAN_KEY = """
// A transition key wider than the device window, where only the low bits
// actually discriminate: ParserHawk picks the narrow slice; compilers
// without R4-style rewriting reject ("Wide tran key").
header h  { wide : 12; a : 4; }
parser LargeTranKey {
    state start {
        extract(h.wide);
        transition select(h.wide) {
            0x0A1 : n1;
            0x0A3 : n1;
            0x0B2 : n1;
            default : accept;
        }
    }
    state n1 { extract(h.a); transition accept; }
}
"""

MULTI_KEY_SAME_FIELD = """
// Two slices of one field as the transition key.
header h { f : 8; x : 4; }
parser MultiKeySame {
    state start {
        extract(h.f);
        transition select(h.f[7:4], h.f[1:0]) {
            (0xA, 1) : n1;
            (0xA, 2) : n1;
            (0x5, 0) : n2;
            default : accept;
        }
    }
    state n1 { extract(h.x); transition accept; }
    state n2 { transition reject; }
}
"""

MULTI_KEY_DIFF_FIELDS = """
// A key concatenated from two different fields.
header h { f : 4; g : 4; x : 4; }
parser MultiKeyDiff {
    state start {
        extract(h.f);
        extract(h.g);
        transition select(h.f[3:2], h.g) {
            (0b10, 0x3) : n1;
            (0b10, 0x7) : n1;
            (0b01, 0x0) : n2;
            default : accept;
        }
    }
    state n1 { extract(h.x); transition accept; }
    state n2 { transition accept; }
}
"""

PURE_EXTRACTION = """
// A chain of extraction-only states: collapses to one state / one entry.
header h { a : 4; b : 4; c : 4; d : 4; e : 4; }
parser PureExtraction {
    state start { extract(h.a); transition s1; }
    state s1 { extract(h.b); transition s2; }
    state s2 { extract(h.c); transition s3; }
    state s3 { extract(h.d); transition s4; }
    state s4 { extract(h.e); transition accept; }
}
"""

SAI_V1 = """
// sai.p4 subset V1 (SONiC PINS fixed parser), scaled: L2 -> VLAN/IP.
header eth  { dst : 4; src : 4; etherType : 8; }
header vlan { vid : 4; etherType : 8; }
header ipv4 { ver : 2; proto : 4; }
header ipv6 { ver : 2; next : 4; }
parser SaiV1 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x81 : parse_vlan;
            0x08 : parse_ipv4;
            0x86 : parse_ipv6;
            default : accept;
        }
    }
    state parse_vlan {
        extract(vlan);
        transition select(vlan.etherType) {
            0x08 : parse_ipv4;
            0x86 : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 { extract(ipv4); transition accept; }
    state parse_ipv6 { extract(ipv6); transition accept; }
}
"""

SAI_V2 = """
// sai.p4 subset V2: adds the transport layer and ICMP dispatch.
header eth  { dst : 4; src : 4; etherType : 8; }
header vlan { vid : 4; etherType : 8; }
header ipv4 { ver : 2; proto : 4; }
header ipv6 { ver : 2; next : 4; }
header tcp  { sport : 4; dport : 4; }
header udp  { sport : 4; dport : 4; }
header icmp { icmpType : 4; }
parser SaiV2 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x81 : parse_vlan;
            0x08 : parse_ipv4;
            0x86 : parse_ipv6;
            default : accept;
        }
    }
    state parse_vlan {
        extract(vlan);
        transition select(vlan.etherType) {
            0x08 : parse_ipv4;
            0x86 : parse_ipv6;
            default : accept;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            6 : parse_tcp;
            1 : parse_icmp;
            default : accept;
        }
    }
    state parse_ipv6 {
        extract(ipv6);
        transition select(ipv6.next) {
            6 : parse_tcp;
            default : accept;
        }
    }
    state parse_tcp  { extract(tcp); transition accept; }
    state parse_icmp { extract(icmp); transition accept; }
}
"""

DASH_V1 = """
// dash.p4 subset V1: the underlay chain of the DASH pipeline parser.
header eth   { dst : 4; etherType : 4; }
header ipv4  { proto : 4; }
header udp   { dport : 4; }
parser DashV1 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_ipv4;
            default : reject;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            0x1 : parse_udp;
            default : accept;
        }
    }
    state parse_udp { extract(udp); transition accept; }
}
"""

DASH_V2 = """
// dash.p4 subset V2: underlay + VXLAN + inner headers, mostly a long
// extraction chain (small search space, many states — the paper's Dash V2
// has 19 entries but only a 28-bit search space).
header eth   { dst : 4; etherType : 4; }
header ipv4  { proto : 4; }
header udp   { dport : 4; }
header vxlan { vni : 4; }
header inner_eth  { dst : 4; etherType : 4; }
header inner_ipv4 { proto : 4; }
parser DashV2 {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_ipv4;
            default : reject;
        }
    }
    state parse_ipv4 {
        extract(ipv4);
        transition select(ipv4.proto) {
            0x1 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        extract(udp);
        transition select(udp.dport) {
            0x4 : parse_vxlan;
            default : accept;
        }
    }
    state parse_vxlan { extract(vxlan); transition parse_inner_eth; }
    state parse_inner_eth {
        extract(inner_eth);
        transition select(inner_eth.etherType) {
            0x8 : parse_inner_ipv4;
            default : accept;
        }
    }
    state parse_inner_ipv4 { extract(inner_ipv4); transition accept; }
}
"""

FINANCE_FEED = """
// Financial-exchange feed classifier (§2.2's CME/Google Cloud use case):
// identify the packet's origin class from a venue tag plus session bits.
header eth    { etherType : 4; }
header venue  { tag : 8; }
header feedA  { seq : 4; }
header feedB  { seq : 4; }
parser FinanceFeed {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_venue;
            default : accept;
        }
    }
    state parse_venue {
        extract(venue);
        transition select(venue.tag) {
            0x11 : parse_feed_a;
            0x13 : parse_feed_a;
            0x21 : parse_feed_b;
            0x23 : parse_feed_b;
            default : reject;
        }
    }
    state parse_feed_a { extract(feedA); transition accept; }
    state parse_feed_b { extract(feedB); transition accept; }
}
"""

GENEVE_TUNNEL = """
// Geneve with a varbit option block sized by optLen (RFC 8926 pattern).
header eth    { etherType : 4; }
header udp    { dport : 4; }
header geneve { optLen : 2; vni : 4; options : varbit 12; }
parser GeneveTunnel {
    state start {
        extract(eth);
        transition select(eth.etherType) {
            0x8 : parse_udp;
            default : accept;
        }
    }
    state parse_udp {
        extract(udp);
        transition select(udp.dport) {
            0x6 : parse_geneve;
            default : accept;
        }
    }
    state parse_geneve {
        extract(geneve.optLen);
        extract(geneve.vni);
        extract_var(geneve.options, geneve.optLen, 4);
        transition accept;
    }
}
"""

LOOKAHEAD_TAG = """
// Lookahead-driven dispatch: peek at the next header's tag before
// extracting it (DPParserGen cannot express this).
header eth { etherType : 4; }
header tagged { tag : 2; body : 4; }
parser LookaheadTag {
    state start {
        extract(eth);
        transition select(lookahead(2)) {
            0b01 : parse_tagged;
            default : accept;
        }
    }
    state parse_tagged { extract(tagged); transition accept; }
}
"""


# ---------------------------------------------------------------------------
# Mutations
# ---------------------------------------------------------------------------

MutationFn = Callable[[ParserSpec], ParserSpec]


def _merge_all(spec: ParserSpec) -> ParserSpec:
    """Merge unconditional chains to a fixpoint (the '+ state merging'
    variant of the Pure Extraction benchmark)."""
    current = spec
    for _ in range(len(spec.states) + 1):
        merged = merge_states(current)
        if merged is current:
            return current
        current = merged
    return current


MUTATIONS: Dict[str, MutationFn] = {
    "+R1": add_redundant_entries,
    "-R1": remove_redundant_entries,
    "+R2": add_unreachable_entries,
    "-R2": remove_unreachable_entries,
    "+R3": split_entries,
    "-R3": merge_entries,
    "+R4": split_transition_key,
    "-R4": merge_transition_key,
    "+R5": split_states,
    "-R5": merge_states,
    "+unroll": unroll_self_loops,
    "+merge": _merge_all,
}


@dataclass(frozen=True)
class Benchmark:
    """One Table 3 row: a base program plus a mutation list."""

    name: str
    base: str                        # key into BASE_PROGRAMS
    mutations: Tuple[str, ...] = ()
    notes: str = ""

    @property
    def row_label(self) -> str:
        if not self.mutations:
            return self.name
        return f"{self.name} {' '.join(self.mutations)}"

    def spec(self) -> ParserSpec:
        spec = parse_spec(BASE_PROGRAMS[self.base])
        for mutation in self.mutations:
            fn = MUTATIONS[mutation]
            spec = fn(spec)
        return spec


BASE_PROGRAMS: Dict[str, str] = {
    "parse_ethernet": PARSE_ETHERNET,
    "parse_icmp": PARSE_ICMP,
    "parse_mpls": PARSE_MPLS,
    "large_tran_key": LARGE_TRAN_KEY,
    "multi_key_same": MULTI_KEY_SAME_FIELD,
    "multi_key_diff": MULTI_KEY_DIFF_FIELDS,
    "pure_extraction": PURE_EXTRACTION,
    "sai_v1": SAI_V1,
    "sai_v2": SAI_V2,
    "dash_v1": DASH_V1,
    "dash_v2": DASH_V2,
    "finance_feed": FINANCE_FEED,
    "geneve_tunnel": GENEVE_TUNNEL,
    "lookahead_tag": LOOKAHEAD_TAG,
}


# The Table 3 row set (base + mutations), mirroring the paper's grouping.
TABLE3_ROWS: List[Benchmark] = [
    Benchmark("Parse Ethernet", "parse_ethernet"),
    Benchmark("Parse Ethernet", "parse_ethernet", ("+R1",)),
    Benchmark("Parse Ethernet", "parse_ethernet", ("-R3",)),
    Benchmark("Parse Ethernet", "parse_ethernet", ("+R2",)),
    Benchmark("Parse icmp", "parse_icmp"),
    Benchmark("Parse icmp", "parse_icmp", ("+R5",)),
    Benchmark("Parse icmp", "parse_icmp", ("-R3",)),
    Benchmark("Parse MPLS", "parse_mpls"),
    Benchmark("Parse MPLS", "parse_mpls", ("+unroll",)),
    Benchmark("Parse MPLS", "parse_mpls", ("-R1",)),
    Benchmark("Parse MPLS", "parse_mpls", ("+R1",)),
    Benchmark("Large tran key", "large_tran_key"),
    Benchmark("Large tran key", "large_tran_key", ("+R4",)),
    Benchmark("Large tran key", "large_tran_key", ("+R1", "+R4")),
    Benchmark("Large tran key", "large_tran_key", ("+R3", "+R4")),
    Benchmark("Multi-key (same pkt field)", "multi_key_same"),
    Benchmark("Multi-key (same pkt field)", "multi_key_same", ("-R5",)),
    Benchmark("Multi-key (same pkt field)", "multi_key_same", ("-R5", "-R3")),
    Benchmark("Multi-keys (diff pkt fields)", "multi_key_diff"),
    Benchmark("Multi-keys (diff pkt fields)", "multi_key_diff", ("+R5",)),
    Benchmark("Multi-keys (diff pkt fields)", "multi_key_diff", ("-R5",)),
    Benchmark("Pure Extraction states", "pure_extraction"),
    Benchmark("Pure Extraction states", "pure_extraction", ("+merge",)),
    Benchmark("Sai V1", "sai_v1"),
    Benchmark("Sai V1", "sai_v1", ("+R2",)),
    Benchmark("Sai V2", "sai_v2"),
    Benchmark("Sai V2", "sai_v2", ("+R1", "+R2")),
    Benchmark("Dash V2", "dash_v2"),
    Benchmark("Dash V2", "dash_v2", ("+R1", "+R2")),
]

# Extra rows exercised by tests/examples but not in Table 3 proper.
EXTRA_BENCHMARKS: List[Benchmark] = [
    Benchmark("Dash V1", "dash_v1"),
    Benchmark("Finance feed", "finance_feed"),
    Benchmark("Geneve tunnel", "geneve_tunnel"),
    Benchmark("Lookahead tag", "lookahead_tag"),
]


def benchmark_by_label(label: str) -> Benchmark:
    for bench in TABLE3_ROWS + EXTRA_BENCHMARKS:
        if bench.row_label == label:
            return bench
    raise KeyError(f"no benchmark labelled {label!r}")


def all_base_specs() -> Dict[str, ParserSpec]:
    return {name: parse_spec(src) for name, src in BASE_PROGRAMS.items()}
