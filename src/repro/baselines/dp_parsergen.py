"""DPParserGen — reimplementation of Gibb et al.'s dynamic-programming
parser generator (§2.3, baseline of §7).

Faithful to the description in the paper, including its restrictions:

* targets only single-TCAM-table architectures;
* the transition key of a state must come from fields extracted in that
  same state — no lookahead, no keys over earlier states' fields;
* the input program may not use mask+value / wildcard select arms, and may
  not transition to ``accept`` on a specific value (only a default arm may
  accept) — the expressiveness of parsers at the time;
* entry merging uses an order-sensitive greedy pass and key splitting uses
  a fixed MSB-first chunk order, both of which the paper's §3.2 shows to
  be suboptimal (ME-1/ME-2);
* semantically redundant entries are kept (ME-3).

Its strength — the actual DP — is clustering adjacent states connected by
unconditional transitions so their internal transition needs no TCAM entry
(Figure 1), which we apply to a fixpoint before emission.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.skeleton import _slice_key as slice_key
from ..hw.device import DeviceProfile
from ..hw.impl import ACCEPT_SID, REJECT_SID, ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.rewrites import merge_states
from ..ir.spec import ACCEPT, REJECT, FieldKey, LookaheadKey, ParserSpec
from .common import (
    BaselineRejected,
    BaselineResult,
    chunk_key_msb_first,
    first_fit_merge,
    folded_rules,
)

COMPILER_NAME = "DPParserGen"


def check_representable(spec: ParserSpec) -> None:
    """Raise :class:`BaselineRejected` if the input uses features outside
    DPParserGen's input language."""
    for state in spec.states.values():
        extracted_here = set(state.extracts)
        widths = [k.width for k in state.key]
        for part in state.key:
            if isinstance(part, LookaheadKey):
                raise BaselineRejected(
                    "No lookahead", f"state {state.name} uses lookahead"
                )
            assert isinstance(part, FieldKey)
            if part.field not in extracted_here:
                raise BaselineRejected(
                    "Key not local",
                    f"state {state.name} keys on {part.field} extracted "
                    "elsewhere",
                )
        for rule in state.rules:
            if rule.is_default:
                continue
            value, mask = rule.combined_value_mask(widths)
            full = (1 << sum(widths)) - 1 if widths else 0
            if mask != full:
                raise BaselineRejected(
                    "No wildcard match",
                    f"state {state.name} uses mask+value arm",
                )
            if rule.next_state == ACCEPT:
                raise BaselineRejected(
                    "No accept on value",
                    f"state {state.name} accepts on a specific value",
                )


def _cluster(spec: ParserSpec) -> ParserSpec:
    """The DP clustering pass: merge unconditional adjacent states to a
    fixpoint (each merge removes one internal transition entry)."""
    current = spec
    for _ in range(len(spec.states) + 1):
        merged = merge_states(current)
        if merged is current:
            return current
        current = merged
    return current


def compile_spec(
    spec: ParserSpec, device: DeviceProfile
) -> BaselineResult:
    """Compile with DPParserGen; raises :class:`BaselineRejected` on
    unsupported inputs or resource overflow."""
    if device.is_pipelined:
        raise BaselineRejected(
            "Single-TCAM only", "DPParserGen cannot target pipelined parsers"
        )
    check_representable(spec)
    clustered = _cluster(spec)

    states: List[ImplState] = []
    entries: List[ImplEntry] = []
    name_to_sid: Dict[str, int] = {}
    order = [n for n in clustered.state_order if n in clustered.states]
    for name in order:
        name_to_sid[name] = len(states)
        spec_state = clustered.states[name]
        states.append(
            ImplState(
                name_to_sid[name],
                name,
                tuple(spec_state.extracts),
                tuple(spec_state.key),
            )
        )

    def dest_sid(dest: str) -> int:
        if dest == ACCEPT:
            return ACCEPT_SID
        if dest == REJECT:
            return REJECT_SID
        return name_to_sid[dest]

    for name in order:
        spec_state = clustered.states[name]
        sid = name_to_sid[name]
        width = spec_state.key_width
        if not spec_state.key:
            dest = spec_state.rules[0].next_state
            entries.append(
                ImplEntry(sid, TernaryPattern(0, 0, 0), dest_sid(dest))
            )
            continue
        rules = folded_rules(spec_state)
        default: Optional[str] = None
        body = rules
        if rules and rules[-1][1] == 0:
            default = rules[-1][2]
            body = rules[:-1]
        merged = first_fit_merge(body, width)
        if width <= device.key_limit:
            for value, mask, dest in merged:
                entries.append(
                    ImplEntry(
                        sid, TernaryPattern(value, mask, width), dest_sid(dest)
                    )
                )
            if default is not None:
                entries.append(
                    ImplEntry(
                        sid, TernaryPattern(0, 0, width), dest_sid(default)
                    )
                )
        else:
            _split_wide_key(
                clustered, spec_state, sid, merged, default, device,
                states, entries, dest_sid,
            )

    program = TcamProgram(
        dict(clustered.fields),
        states,
        entries,
        name_to_sid[clustered.start],
        clustered.name,
    )
    if program.num_entries > device.tcam_limit:
        raise BaselineRejected(
            "Too many TCAM",
            f"{program.num_entries} entries > {device.tcam_limit}",
        )
    return BaselineResult(True, COMPILER_NAME, program)


def _split_wide_key(
    spec: ParserSpec,
    spec_state,
    sid: int,
    merged: List[Tuple[int, int, str]],
    default: Optional[str],
    device: DeviceProfile,
    states: List[ImplState],
    entries: List[ImplEntry],
    dest_sid,
) -> None:
    """Fixed MSB-first key splitting (the V1 strategy of Figure 4):
    build a chunk trie over each cube's chunk patterns, one auxiliary
    extraction-free state per internal trie node, a default arm duplicated
    at every level."""
    width = spec_state.key_width
    chunks = chunk_key_msb_first(width, device.key_limit)
    base_state = states[sid]

    def chunk_of(value: int, mask: int, depth: int) -> Tuple[int, int]:
        hi, lo = chunks[depth]
        cw = hi - lo + 1
        return (value >> lo) & ((1 << cw) - 1), (mask >> lo) & ((1 << cw) - 1)

    # Recursive construction over "alive" cube index sets.  Each node
    # checks one chunk; a TCAM cannot backtrack, so when the alive cubes'
    # chunk patterns overlap we fall back to enumerating exact chunk
    # values — the V1-style entry blow-up of Figure 4.
    memo: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def node_for(depth: int, alive: Tuple[int, ...]) -> int:
        key = (depth, alive)
        if key in memo:
            return memo[key]
        if depth == 0:
            node = sid
            hi, lo = chunks[0]
            states[sid] = ImplState(
                sid,
                base_state.name,
                base_state.extracts,
                tuple(slice_key(spec_state.key, hi, lo)),
                base_state.stage,
            )
        else:
            node = len(states)
            hi, lo = chunks[depth]
            states.append(
                ImplState(
                    node,
                    f"{base_state.name}__dp{node}",
                    (),
                    tuple(slice_key(spec_state.key, hi, lo)),
                )
            )
        memo[key] = node
        hi, lo = chunks[depth]
        cw = hi - lo + 1
        last = depth == len(chunks) - 1
        patterns = [chunk_of(merged[i][0], merged[i][1], depth) for i in alive]
        disjoint = all(
            not _chunk_overlap(patterns[a], patterns[b])
            for a in range(len(alive))
            for b in range(a + 1, len(alive))
            if patterns[a] != patterns[b]
        )
        if disjoint:
            groups: List[Tuple[Tuple[int, int], Tuple[int, ...]]] = []
            for idx, pat in zip(alive, patterns):
                for gpat, members in groups:
                    if gpat == pat:
                        break
                else:
                    groups.append(
                        (pat, tuple(i for i, p in zip(alive, patterns) if p == pat))
                    )
            for (cv, cm), members in groups:
                if last:
                    target = dest_sid(merged[members[0]][2])
                else:
                    target = node_for(depth + 1, members)
                entries.append(
                    ImplEntry(node, TernaryPattern(cv, cm, cw), target)
                )
        else:
            # Overlapping chunk patterns: enumerate exact values.
            for value in range(1 << cw):
                members = tuple(
                    i
                    for i, (cv, cm) in zip(alive, patterns)
                    if (value & cm) == (cv & cm)
                )
                if not members:
                    continue
                if last:
                    target = dest_sid(merged[members[0]][2])
                else:
                    target = node_for(depth + 1, members)
                entries.append(
                    ImplEntry(
                        node,
                        TernaryPattern(value, (1 << cw) - 1, cw),
                        target,
                    )
                )
        if default is not None:
            entries.append(
                ImplEntry(node, TernaryPattern(0, 0, cw), dest_sid(default))
            )
        return node

    if merged:
        node_for(0, tuple(range(len(merged))))
    else:
        hi, lo = chunks[0]
        cw = hi - lo + 1
        states[sid] = ImplState(
            sid,
            base_state.name,
            base_state.extracts,
            tuple(slice_key(spec_state.key, hi, lo)),
            base_state.stage,
        )
        if default is not None:
            entries.append(
                ImplEntry(sid, TernaryPattern(0, 0, cw), dest_sid(default))
            )


def _chunk_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    common = a[1] & b[1]
    return (a[0] & common) == (b[0] & common)
