"""Emulation of the commercial Intel IPU parser compiler baseline.

Per §7.2, this compiler maps each written parser state to its own pipeline
stage in program order and CANNOT (1) split wide transition keys,
(2) unroll loops within parser states ("Parser loop rej" in Table 3), or
(3) rule out never-reached entries ("Conflict transition" when a dead
entry contradicts an earlier catch-all).  A state whose entries exceed the
per-stage TCAM budget spills into an extra stage (the paper's
"Parse Ethernet + R1" needs 2 stages for one state)."""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from ..hw.device import DeviceProfile
from ..hw.impl import ACCEPT_SID, REJECT_SID, ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.analysis import build_state_graph, has_loops
from ..ir.spec import ACCEPT, REJECT, LookaheadKey, ParserSpec
from .common import BaselineRejected, BaselineResult, first_fit_merge, folded_rules

COMPILER_NAME = "ipu-compiler"


def compile_spec(spec: ParserSpec, device: DeviceProfile) -> BaselineResult:
    if not device.is_pipelined:
        raise BaselineRejected(
            "Wrong target", "the IPU compiler targets pipelined parsers"
        )
    # Limitation (2): no loop unrolling.
    if has_loops(spec):
        raise BaselineRejected(
            "Parser loop rej", "the program revisits a parser state"
        )
    # Limitation (3): entries after a catch-all are kept and then flagged
    # as contradicting the earlier rule.
    for state in spec.states.values():
        widths = [k.width for k in state.key]
        seen_catch_all = False
        for rule in state.rules:
            _value, mask = rule.combined_value_mask(widths)
            if seen_catch_all:
                raise BaselineRejected(
                    "Conflict transition",
                    f"state {state.name} has an entry after a catch-all",
                )
            if mask == 0 and state.key:
                seen_catch_all = True

    # Stage assignment: one stage per state in topological order, as
    # written; no repacking across stages.
    graph = build_state_graph(spec)
    graph.remove_nodes_from([ACCEPT, REJECT])
    order = [
        n for n in nx.topological_sort(graph) if n in spec.states
    ]

    states: List[ImplState] = []
    entries: List[ImplEntry] = []
    name_to_sid: Dict[str, int] = {}
    stage_of: Dict[str, int] = {}
    next_stage = 0
    for name in order:
        spec_state = spec.states[name]
        name_to_sid[name] = len(states)
        rule_count = max(1, len(spec_state.rules))
        # A state that cannot fit its entries in one stage's TCAM spills
        # into an additional stage.
        stages_needed = max(
            1, -(-rule_count // max(1, device.tcam_limit))
        )
        stage_of[name] = next_stage
        states.append(
            ImplState(
                name_to_sid[name],
                name,
                tuple(spec_state.extracts),
                tuple(spec_state.key),
                stage=next_stage,
            )
        )
        next_stage += stages_needed
    if next_stage > device.stage_limit:
        raise BaselineRejected(
            "Too many stages",
            f"{next_stage} stages > limit {device.stage_limit}",
        )

    def dest_sid(dest: str) -> int:
        if dest == ACCEPT:
            return ACCEPT_SID
        if dest == REJECT:
            return REJECT_SID
        return name_to_sid[dest]

    for name in order:
        spec_state = spec.states[name]
        sid = name_to_sid[name]
        width = spec_state.key_width
        if width > device.key_limit:
            raise BaselineRejected(
                "Wide tran key",
                f"state {name} key is {width} bits > {device.key_limit}",
            )
        lookahead = sum(
            k.width for k in spec_state.key if isinstance(k, LookaheadKey)
        )
        if lookahead > device.lookahead_limit:
            raise BaselineRejected(
                "Lookahead window",
                f"state {name} looks ahead {lookahead} bits",
            )
        if not spec_state.key:
            dest = spec_state.rules[0].next_state
            entries.append(
                ImplEntry(sid, TernaryPattern(0, 0, 0), dest_sid(dest))
            )
            continue
        merged = first_fit_merge(folded_rules(spec_state), width)
        for value, mask, dest in merged:
            entries.append(
                ImplEntry(sid, TernaryPattern(value, mask, width), dest_sid(dest))
            )

    program = TcamProgram(
        dict(spec.fields), states, entries, name_to_sid[spec.start], spec.name
    )
    return BaselineResult(
        True, COMPILER_NAME, program, stages_override=next_stage
    )
