"""Emulation of the commercial Tofino parser compiler baseline.

§7.2 documents the behaviours that matter for the evaluation: the vendor
compiler translates the program rule-by-rule as written, applies only easy
first-fit merging, and CANNOT (1) split transition keys that exceed the
hardware window (no R4-like rewrite), or (3) rule out never-reached
entries.  It supports loops (single TCAM table).  Resource overflow is a
hard failure ("Too many TCAM" / "Wide tran key" in Table 3)."""

from __future__ import annotations

from typing import Dict, List

from ..hw.device import DeviceProfile
from ..hw.impl import ACCEPT_SID, REJECT_SID, ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.spec import ACCEPT, REJECT, LookaheadKey, ParserSpec
from .common import BaselineRejected, BaselineResult, first_fit_merge, folded_rules

COMPILER_NAME = "tofino-compiler"


def compile_spec(spec: ParserSpec, device: DeviceProfile) -> BaselineResult:
    """Rule-by-rule translation with first-fit merging only."""
    if device.is_pipelined:
        raise BaselineRejected(
            "Wrong target", "the Tofino compiler targets single-TCAM parsers"
        )
    states: List[ImplState] = []
    entries: List[ImplEntry] = []
    name_to_sid: Dict[str, int] = {}
    order = [n for n in spec.state_order if n in spec.states]
    for name in order:
        name_to_sid[name] = len(states)
        spec_state = spec.states[name]
        states.append(
            ImplState(
                name_to_sid[name],
                name,
                tuple(spec_state.extracts),
                tuple(spec_state.key),
            )
        )

    def dest_sid(dest: str) -> int:
        if dest == ACCEPT:
            return ACCEPT_SID
        if dest == REJECT:
            return REJECT_SID
        return name_to_sid[dest]

    for name in order:
        spec_state = spec.states[name]
        sid = name_to_sid[name]
        width = spec_state.key_width
        if width > device.key_limit:
            # Limitation (1): no transition-key splitting.
            raise BaselineRejected(
                "Wide tran key",
                f"state {name} key is {width} bits > {device.key_limit}",
            )
        lookahead = sum(
            k.width for k in spec_state.key if isinstance(k, LookaheadKey)
        )
        if lookahead > device.lookahead_limit:
            raise BaselineRejected(
                "Lookahead window",
                f"state {name} looks ahead {lookahead} bits",
            )
        if not spec_state.key:
            dest = spec_state.rules[0].next_state
            entries.append(
                ImplEntry(sid, TernaryPattern(0, 0, 0), dest_sid(dest))
            )
            continue
        # Limitation (3): every written rule gets an entry, including
        # entries shadowed by earlier catch-alls; only identical
        # duplicates and easy first-fit pairs merge.
        rules = folded_rules(spec_state)
        merged = first_fit_merge(rules, width)
        for value, mask, dest in merged:
            entries.append(
                ImplEntry(sid, TernaryPattern(value, mask, width), dest_sid(dest))
            )

    program = TcamProgram(
        dict(spec.fields), states, entries, name_to_sid[spec.start], spec.name
    )
    if program.num_entries > device.tcam_limit:
        raise BaselineRejected(
            "Too many TCAM",
            f"{program.num_entries} entries > {device.tcam_limit}",
        )
    return BaselineResult(True, COMPILER_NAME, program)
