"""Baseline parser compilers: DPParserGen and emulated vendor compilers."""

from . import dp_parsergen, ipu_compiler, tofino_compiler
from .common import BaselineRejected, BaselineResult

__all__ = [
    "BaselineRejected",
    "BaselineResult",
    "dp_parsergen",
    "ipu_compiler",
    "tofino_compiler",
]
