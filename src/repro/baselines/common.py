"""Shared machinery for the baseline compilers.

The baselines translate specification states rule-by-rule into TCAM
entries.  They share the rule-folding and the (deliberately) first-fit
cube-merging heuristic here; what distinguishes them is which inputs they
reject and how they allocate states to hardware (see the per-module
docstrings)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hw.impl import TcamProgram
from ..ir.spec import SpecState


class BaselineRejected(Exception):
    """The baseline compiler cannot handle this input program.

    ``reason`` is the short failure label used in the paper's Table 3
    (e.g. "Wide tran key", "Parser loop rej", "Too many TCAM")."""

    def __init__(self, reason: str, detail: str = "") -> None:
        self.reason = reason
        self.detail = detail
        super().__init__(f"{reason}{': ' + detail if detail else ''}")


@dataclass
class BaselineResult:
    """Outcome of a baseline compilation."""

    ok: bool
    compiler: str
    program: Optional[TcamProgram] = None
    reason: str = ""
    stages_override: Optional[int] = None   # spilled stage count (IPU)

    @property
    def num_entries(self) -> int:
        return self.program.num_entries if self.program else -1

    @property
    def num_stages(self) -> int:
        if self.stages_override is not None:
            return self.stages_override
        return self.program.num_stages if self.program else -1

    def summary(self) -> str:
        if not self.ok:
            return f"{self.compiler}: REJECTED ({self.reason})"
        return (
            f"{self.compiler}: {self.num_entries} entries, "
            f"{self.num_stages} stage(s)"
        )


def folded_rules(state: SpecState) -> List[Tuple[int, int, str]]:
    """A state's rules as (value, mask, dest) over the concatenated key."""
    widths = [k.width for k in state.key]
    out = []
    for rule in state.rules:
        value, mask = rule.combined_value_mask(widths)
        out.append((value, mask, rule.next_state))
    return out


def first_fit_merge(
    rules: List[Tuple[int, int, str]], width: int
) -> List[Tuple[int, int, str]]:
    """Order-sensitive greedy cube merging.

    Scans the rule list once, merging each rule into the most recent
    compatible cube (same destination, same mask, values differing in one
    mask bit).  This mirrors the merging quality of the heuristic
    compilers: it finds the easy pairs but — unlike ParserHawk's
    search — misses merges that require reordering or multi-step
    regrouping, which is exactly the suboptimality §3.2.1 demonstrates."""
    cubes: List[Tuple[int, int, str]] = []
    for value, mask, dest in rules:
        merged = False
        for i in range(len(cubes) - 1, -1, -1):
            cv, cm, cd = cubes[i]
            if cd != dest or cm != mask:
                continue
            diff = (cv ^ value) & cm
            if diff and (diff & (diff - 1)) == 0:
                # Safe only when no other cube sits between the pair with an
                # overlapping pattern and a different destination.
                blocked = False
                new_mask = cm & ~diff
                new_value = cv & new_mask
                for j in range(i + 1, len(cubes)):
                    ov, om, od_ = cubes[j]
                    common = om & new_mask
                    if od_ != dest and (ov & common) == (new_value & common):
                        blocked = True
                        break
                if blocked:
                    continue
                cubes[i] = (new_value, new_mask, dest)
                merged = True
                break
        if not merged:
            cubes.append((value, mask, dest))
    return cubes


def chunk_key_msb_first(width: int, key_limit: int) -> List[Tuple[int, int]]:
    """Fixed MSB-first split of a wide key into (hi, lo) chunks — the
    baseline compilers' inflexible Step-2 strategy (they never explore
    alternative check orders, cf. Figure 4 V1)."""
    chunks = []
    hi = width - 1
    while hi >= 0:
        lo = max(0, hi - key_limit + 1)
        chunks.append((hi, lo))
        hi = lo - 1
    return chunks
