"""ParserHawk core: the program-synthesis-based parser compiler."""

from .cegis import CegisOutcome, SynthesisTimeout, synthesize_for_budget
from .compiler import ParserHawkCompiler, compile_spec
from .encoder import EncodingOverflow, SymbolicProgram
from .normalize import CompileError, canonicalize, prepare_spec, unroll_self_loops
from .options import CompileOptions
from .parallel import (
    Subproblem,
    derive_subproblems,
    portfolio_compile,
    select_result,
)
from .postopt import optimize as post_optimize
from .result import (
    STATUS_FAULT,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    CompileResult,
    CompileStats,
)
from .skeleton import Skeleton, build_skeleton
from .validate import ValidationReport, random_simulation_check
from .verifier import Counterexample, verify_equivalent

__all__ = [
    "CegisOutcome",
    "CompileError",
    "CompileOptions",
    "CompileResult",
    "CompileStats",
    "Counterexample",
    "EncodingOverflow",
    "ParserHawkCompiler",
    "STATUS_FAULT",
    "STATUS_INFEASIBLE",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "Skeleton",
    "SymbolicProgram",
    "Subproblem",
    "SynthesisTimeout",
    "ValidationReport",
    "build_skeleton",
    "canonicalize",
    "derive_subproblems",
    "compile_spec",
    "post_optimize",
    "portfolio_compile",
    "prepare_spec",
    "random_simulation_check",
    "select_result",
    "synthesize_for_budget",
    "unroll_self_loops",
    "verify_equivalent",
]
