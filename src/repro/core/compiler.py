"""ParserHawk's top-level compiler (Figure 8's whole pipeline).

``ParserHawkCompiler.compile`` runs:

1. front-end — canonicalize the spec, unroll self-loops for forward-only
   targets, apply Opt2/Opt6 scaling;
2. resource search — iterate budgets (stages outer for pipelined targets,
   TCAM entries inner) from their lower bounds upward; the first budget
   whose CEGIS run succeeds is resource-minimal;
3. back-end — post-synthesis optimization, scale restoration, a final
   exact verification against the *original* specification, and a device
   constraint check.

Opt7's portfolio (loop-free vs loop-aware arms, §6.7.1) runs the loop-free
arm first for loop-free specs — the sequential emulation of the paper's
parallel race — and optionally distributes budget attempts over a process
pool when ``options.parallel_workers > 1``.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Iterable, List, Optional, Tuple

from ..hw.device import DeviceProfile
from ..ir.analysis import check_extract_before_use, has_loops, max_parse_depth
from ..ir.bits import Bits
from ..ir.spec import ParserSpec
from ..obs import get_tracer
from ..persist import (
    CheckpointManager,
    cache_for_options,
    certificate_doc,
    compile_key,
    program_fingerprint,
    spec_fingerprint,
    store_proof_bundle,
    write_certificate,
)
from ..resilience import CompileFault
from .cegis import (
    CegisSession,
    SlicePacer,
    SynthesisTimeout,
    synthesize_for_budget,
)
from .encoder import EncodingOverflow
from .normalize import CompileError, prepare_spec
from .options import CompileOptions
from .postopt import optimize as post_optimize
from .result import (
    STATUS_FAULT,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
    CompileResult,
    CompileStats,
)
from .skeleton import build_skeleton, entry_lower_bound
from .testpool import ORIGIN_CEX, TestChannel, TestPool
from .verifier import VerificationBudgetExceeded, verify_equivalent


def _budget_rng(
    seed: int,
    allow_loops: bool,
    stage_budget: Optional[int],
    num_entries: int,
    tag: str = "",
) -> random.Random:
    """Per-budget RNG, derived (not shared) so each budget's CEGIS run is
    independent of which budgets were visited before it.  Resume skips
    retired budgets entirely; a shared stream would make the surviving
    budgets see different randomness than the uninterrupted run did."""
    material = f"{seed}:{int(allow_loops)}:{stage_budget}:{num_entries}:{tag}"
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class ParserHawkCompiler:
    """Program-synthesis-based parser compiler."""

    def __init__(self, options: Optional[CompileOptions] = None) -> None:
        self.options = options or CompileOptions()

    # ------------------------------------------------------------------
    def compile(
        self,
        spec: ParserSpec,
        device: DeviceProfile,
        *,
        checkpoint_dir: Optional[str] = None,
        resume: Optional[bool] = None,
        test_channel: Optional[TestChannel] = None,
        pacer: Optional[SlicePacer] = None,
    ) -> CompileResult:
        """Compile ``spec`` for ``device``.

        ``test_channel`` (optional) is the portfolio's cross-arm test
        exchange: counterexamples this compile discovers are published to
        it and sibling arms' finds (for the same prepared-spec bit
        layout) are adopted between budget attempts — see
        :mod:`repro.core.testpool`.

        ``pacer`` (optional) is the steal scheduler's unit-slice gate: it
        is consulted between budget attempts, may park this thread until
        the next work unit is granted, and may raise
        :class:`~repro.core.cegis.UnitCancelled` — which unwinds out of
        this method untouched (a cancelled unit has no compile result).

        Persistence (both optional, see :mod:`repro.persist`):

        * a compile cache (``options.cache_dir``) is consulted before any
          synthesis and fed on success;
        * a checkpoint directory (``checkpoint_dir`` argument or
          ``options.checkpoint_dir``) makes CEGIS progress durable;
          ``resume`` (argument or ``options.resume``) reloads a matching
          checkpoint so an interrupted compile restarts seeded with all
          previously discovered counterexamples and skips budgets proved
          UNSAT.  Timeout/fault results then carry ``checkpoint_path``
          naming the file that continues them.
        """
        options = self.options
        ckpt_dir = checkpoint_dir or options.checkpoint_dir
        do_resume = options.resume if resume is None else resume
        stats = CompileStats()
        tracer = get_tracer()

        cache = cache_for_options(options)
        key = ""
        if cache is not None or ckpt_dir:
            key = compile_key(spec, device, options)
        if cache is not None:
            hit = cache.lookup(key, device)
            if hit is not None:
                cert = cache.cert_path(key)
                if cert.exists():
                    hit.certificate_path = str(cert)
                return hit
        manager: Optional[CheckpointManager] = None
        if ckpt_dir:
            manager = CheckpointManager(
                ckpt_dir,
                key,
                interval_seconds=options.checkpoint_interval_seconds,
                resume=do_resume,
            )

        def resumable(result: CompileResult) -> CompileResult:
            """Flush a final checkpoint and name it on the result."""
            if manager is not None:
                manager.flush(force=True)
                result.checkpoint_path = str(manager.path)
            return result

        with tracer.span(
            "compile", spec=spec.name, device=device.name
        ) as compile_span:
            deadline = (
                compile_span.start + options.total_max_seconds
                if options.total_max_seconds
                else None
            )
            problems = check_extract_before_use(spec)
            if problems:
                return CompileResult(
                    STATUS_INFEASIBLE,
                    device,
                    message="; ".join(problems),
                    options_summary=options.enabled_summary(),
                )
            try:
                result = self._compile_scaled(
                    spec, device, options, stats, deadline, manager,
                    test_channel, pacer,
                )
            except CompileError as exc:
                return CompileResult(
                    STATUS_INFEASIBLE,
                    device,
                    message=str(exc),
                    options_summary=options.enabled_summary(),
                )
            except SynthesisTimeout as exc:
                stats.total_seconds = compile_span.elapsed()
                return resumable(CompileResult(
                    STATUS_TIMEOUT,
                    device,
                    stats=stats,
                    message=str(exc),
                    options_summary=options.enabled_summary(),
                ))
            except CompileFault as exc:
                # An anticipated abnormal failure (solver resource
                # exhaustion, injected fault): degrade to a typed result
                # instead of unwinding the caller — the portfolio records
                # it as a per-arm failure and keeps the other arms racing.
                partial = getattr(exc, "outcome", None)
                if partial is not None:
                    self._merge_outcome(stats, partial)
                stats.total_seconds = compile_span.elapsed()
                tracer.count("compile.faults")
                return resumable(CompileResult(
                    STATUS_FAULT,
                    device,
                    stats=stats,
                    message=exc.describe(),
                    options_summary=options.enabled_summary(),
                ))
            stats.total_seconds = compile_span.elapsed()
        result.stats = stats
        result.options_summary = options.enabled_summary()
        if result.ok:
            if manager is not None:
                manager.mark_completed(program_fingerprint(result.program))
            if cache is not None:
                cache.store(
                    key,
                    result,
                    meta={"spec": spec.name, "device": device.name},
                )
                if options.certify and result._certify_payload is not None:
                    payload = result._certify_payload
                    doc = certificate_doc(
                        spec,
                        device,
                        result.program,
                        compile_key=key,
                        constraint_digest=payload["constraint_digest"],
                        witnesses=payload["witnesses"],
                        max_steps=payload["max_steps"],
                    )
                    cert = cache.cert_path(key)
                    if write_certificate(cert, doc):
                        result.certificate_path = str(cert)
        return result

    # ------------------------------------------------------------------
    def _compile_scaled(
        self,
        spec: ParserSpec,
        device: DeviceProfile,
        options: CompileOptions,
        stats: CompileStats,
        deadline: Optional[float],
        manager: Optional[CheckpointManager] = None,
        channel: Optional[TestChannel] = None,
        pacer: Optional[SlicePacer] = None,
    ) -> CompileResult:
        arms = self._portfolio_arms(spec, device, options)
        tracer = get_tracer()
        last_failure = "no feasible budget found"
        for allow_loops in arms:
            with tracer.span(
                "arm", mode="loop-aware" if allow_loops else "loop-free"
            ):
                synth_spec, plan = prepare_spec(
                    spec,
                    pipelined=device.is_pipelined or not allow_loops,
                    minimize_widths=options.opt2_bitwidth_minimization,
                    fix_varbits=options.opt6_fixed_varbits,
                    eqsat=options.eqsat,
                )
                result = self._search_budgets(
                    spec, synth_spec, plan, device, options, stats,
                    deadline, allow_loops, manager, channel, pacer,
                )
            if result.ok:
                return result
            last_failure = result.message or last_failure
        return CompileResult(STATUS_INFEASIBLE, device, message=last_failure)

    def _portfolio_arms(
        self,
        spec: ParserSpec,
        device: DeviceProfile,
        options: CompileOptions,
    ) -> List[bool]:
        """Which loop modes to try, in order (§6.7.1)."""
        if device.is_pipelined:
            return [False]
        if not device.allows_loops:
            return [False]
        if options.opt7_parallelism and not has_loops(spec):
            # Loop-free arm first: smaller search space, usually wins the
            # race the paper runs in parallel.
            return [False, True]
        return [True]

    # ------------------------------------------------------------------
    def _search_budgets(
        self,
        original_spec: ParserSpec,
        synth_spec: ParserSpec,
        plan,
        device: DeviceProfile,
        options: CompileOptions,
        stats: CompileStats,
        deadline: Optional[float],
        allow_loops: bool,
        manager: Optional[CheckpointManager] = None,
        channel: Optional[TestChannel] = None,
        pacer: Optional[SlicePacer] = None,
    ) -> CompileResult:
        # Checkpoint and pool state are keyed per (loop mode, prepared
        # spec): the counterexample inputs live in the *synthesis* spec's
        # bit layout (Opt2/Opt6 scaling changes it), so recorded tests
        # must never cross layouts.  The layout fingerprint alone also
        # tags cross-arm channel traffic: portfolio arms that prepare the
        # same layout (e.g. §6.7.2 key-limit levels) exchange tests, arms
        # with different layouts ignore each other's.
        layout_key = spec_fingerprint(synth_spec)[:16]
        arm_key = ("loop" if allow_loops else "fwd") + ":" + layout_key
        pool: Optional[TestPool] = None
        pool_bases: dict = {}
        if options.test_reuse:
            pool = TestPool(synth_spec, layout_key=layout_key)
            if manager is not None:
                # Resume: rebuild the pool exactly as recorded (content
                # AND order — budget runs are seeded from its prefixes,
                # so faithfulness depends on both).
                for value, length, origin in manager.pool_entries(arm_key):
                    pool.add(Bits(value, length), origin)
                # From here on, every new entry becomes durable.
                pool.on_add = (
                    lambda entry: manager.record_pool_entry(
                        arm_key,
                        entry.bits.uint(),
                        len(entry.bits),
                        entry.origin,
                    )
                )
        entry_lb = entry_lower_bound(synth_spec, device)
        entry_ub = min(
            device.total_entry_budget(),
            entry_lb + options.max_extra_entries,
        )
        if device.is_pipelined:
            stage_lb = max(1, max_parse_depth(synth_spec))
            stage_budgets: Iterable[Optional[int]] = range(
                min(stage_lb, device.stage_limit), device.stage_limit + 1
            )
        else:
            stage_budgets = [None]
        # Budget exploration uses iterative deepening with time slices
        # (the sequential emulation of §6.7.2's parallel subproblem
        # portfolio): ascending budgets each get a slice; budgets proved
        # UNSAT are retired; budgets whose slice expires are retried with a
        # larger slice only if nothing cheaper succeeds first.  The first
        # success is therefore the smallest budget the solver could settle
        # within the escalation schedule.
        budgets: List[Tuple[Optional[int], int]] = []
        for stage_budget in stage_budgets:
            for num_entries in range(entry_lb, entry_ub + 1):
                budgets.append((stage_budget, num_entries))
        retired: set = set()
        attempted: set = set()
        # Warm solver paths (incremental synthesis): budgets whose time
        # slice expired park their live CegisSession here and the next
        # escalation round *continues* it — no re-encoding, no repeated
        # solves or verifications.  Gated on the pool (options.test_reuse)
        # so --no-test-reuse measures the cold-retry baseline.
        warm_sessions: dict = {}
        tracer = get_tracer()
        saw_unknown = False
        slice_seconds = options.budget_time_slice
        if manager is not None:
            # Resume: budgets a previous run proved UNSAT stay retired,
            # and the escalation schedule restarts at the slice the
            # previous run had reached (smaller slices are already known
            # to be insufficient for the surviving budgets).
            preloaded = manager.retired_budgets(arm_key)
            if preloaded:
                retired |= preloaded
                tracer.count("checkpoint.budgets_skipped", len(preloaded))
            persisted_slice = manager.resume_slice(arm_key)
            if persisted_slice:
                slice_seconds = max(slice_seconds, min(
                    persisted_slice, options.max_time_slice
                ))
        while budgets and slice_seconds <= options.max_time_slice:
            remaining: List[Tuple[Optional[int], int]] = []
            for stage_budget, num_entries in budgets:
                budget_key = (stage_budget, num_entries)
                if budget_key in retired:
                    continue
                if pacer is not None:
                    # Unit boundary: everything is warm-parked or durable
                    # here, so the steal scheduler may suspend this arm
                    # (and later resume it on this worker or rebuild it
                    # elsewhere from the checkpoint).
                    pacer.checkpoint()
                if deadline is not None and time.monotonic() > deadline:
                    raise SynthesisTimeout("compiler deadline exceeded")
                if budget_key in attempted:
                    # A later escalation round re-attempting a budget whose
                    # earlier time slice expired is a retry, not a new
                    # budget (the old code inflated budgets_tried here).
                    stats.budget_retries += 1
                    tracer.count("budget.retries")
                else:
                    attempted.add(budget_key)
                    stats.budgets_tried += 1
                    tracer.count("budget.attempts")
                with tracer.span(
                    "budget",
                    stages=stage_budget,
                    entries=num_entries,
                    slice=slice_seconds,
                ):
                    slice_cap = slice_seconds
                    if options.synthesis_max_seconds is not None:
                        slice_cap = min(
                            slice_cap, options.synthesis_max_seconds
                        )
                    if pool is not None:
                        # Adopt sibling arms' finds between attempts —
                        # never mid-run, so a budget's solver state stays
                        # a pure function of the pool prefix it seeded.
                        drained = pool.drain(channel)
                        if drained:
                            tracer.count("tests.pool_shared_in", drained)
                            # Each adopted test prunes this arm's search
                            # without a local CEGIS round-trip.
                            tracer.count("bus.pruned", drained)
                    session = warm_sessions.get(budget_key)
                    if session is not None:
                        # Warm continuation: the expired attempt's solver,
                        # constraints, RNG position and iteration counter
                        # are all live — this slice picks up exactly where
                        # the previous one stopped.
                        stats.warm_resumes += 1
                        tracer.count("budget.warm_resumes")
                    else:
                        skeleton = build_skeleton(
                            synth_spec,
                            device,
                            options,
                            num_entries=num_entries,
                            stage_budget=stage_budget,
                            allow_loops=allow_loops,
                        )
                        stats.search_space_bits = max(
                            stats.search_space_bits,
                            skeleton.search_space_bits(),
                        )
                        rng = _budget_rng(
                            options.seed, allow_loops, stage_budget,
                            num_entries,
                        )
                        pool_base = None
                        if pool is None:
                            # No pool: keep the original replay behaviour
                            # (re-apply everything ever recorded for this
                            # budget).
                            replay = None
                            if manager is not None:
                                replay = manager.replay_for(
                                    arm_key, budget_key
                                )
                        else:
                            # The checkpoint records each budget's LATEST
                            # attempt (pool_base + its live
                            # counterexamples).  Only the first in-process
                            # touch of a budget can be a faithful
                            # continuation of a persisted attempt; a cold
                            # retry (rare — warm sessions cover slice
                            # expiry) re-baselines to the full current
                            # pool — earlier attempts' discoveries are in
                            # it, which is exactly the cross-attempt reuse
                            # that makes retries cheap — and resets the
                            # budget's record to match.
                            replay = None
                            if (
                                budget_key not in pool_bases
                                and manager is not None
                            ):
                                pool_base = manager.pool_base(
                                    arm_key, budget_key
                                )
                                if pool_base is not None:
                                    replay = manager.replay_for(
                                        arm_key, budget_key
                                    )
                            if pool_base is None:
                                pool_base = len(pool)
                                if manager is not None:
                                    manager.begin_attempt(
                                        arm_key, budget_key, pool_base
                                    )
                            pool_bases[budget_key] = pool_base

                        def on_cex(bits, _b=budget_key):
                            if manager is not None:
                                manager.record_counterexample(
                                    arm_key, _b, bits
                                )
                            if pool is not None:
                                pool.add(bits, ORIGIN_CEX)
                                pool.publish(channel, bits)

                        session = CegisSession(
                            skeleton,
                            rng,
                            max_iterations=options.max_cegis_iterations,
                            max_conflicts_per_solve=(
                                options.synthesis_max_conflicts
                            ),
                            directed_tests=options.directed_seed_tests,
                            replay=replay,
                            on_counterexample=on_cex,
                            pool=pool,
                            pool_base=pool_base,
                            certify=options.certify,
                        )
                    try:
                        outcome = session.run(
                            max_seconds=slice_cap, deadline=deadline
                        )
                    except SynthesisTimeout as exc:
                        if exc.outcome is not None:
                            self._merge_outcome(stats, exc.outcome)
                        saw_unknown = True
                        remaining.append(budget_key)
                        if pool is not None:
                            warm_sessions[budget_key] = session
                        continue
                    except (
                        EncodingOverflow, VerificationBudgetExceeded
                    ) as exc:
                        partial = getattr(exc, "outcome", None)
                        if partial is not None:
                            self._merge_outcome(stats, partial)
                        return CompileResult(
                            STATUS_INFEASIBLE, device, message=str(exc)
                        )
                    self._merge_outcome(stats, outcome)
                    # Terminal outcome (program or UNSAT proof): the
                    # session's solver state has no further use.
                    warm_sessions.pop(budget_key, None)
                    if not outcome.feasible:
                        retired.add(budget_key)
                        stats.budgets_retired += 1
                        tracer.count("budget.retired")
                        if manager is not None:
                            proof_ref = None
                            proof = getattr(outcome, "proof", None)
                            if (
                                options.certify
                                and proof is not None
                                and proof.has_refutation
                            ):
                                # UNSAT-gated verdict: park the DRAT
                                # bundle next to the checkpoint so the
                                # retirement is offline-checkable.
                                budget_id = (
                                    f"{'-' if stage_budget is None else stage_budget}"
                                    f":{num_entries}"
                                )
                                proof_ref = store_proof_bundle(
                                    manager.directory,
                                    manager.compile_key,
                                    arm_key,
                                    budget_id,
                                    proof,
                                )
                            manager.record_retired(
                                arm_key, budget_key, proof_ref=proof_ref
                            )
                        continue  # proved UNSAT at this budget; grow it
                    assert outcome.program is not None
                    program = post_optimize(outcome.program, device)
                    program = self._restore_scaling(program, plan)
                    final = self._finalize(
                        original_spec, program, device, options
                    )
                    if final is not None:
                        self._attach_certify_payload(
                            final, original_spec, outcome, options
                        )
                        return final
                    # Restoration failed validation (rare: scaling
                    # interacted with semantics): retry this budget
                    # without scaling.
                    final = self._retry_unscaled(
                        original_spec, device, options, stats, deadline,
                        allow_loops, num_entries, stage_budget, slice_cap,
                    )
                    if final is not None:
                        return final
                    remaining.append(budget_key)
            budgets = remaining
            slice_seconds *= options.time_slice_growth
            if manager is not None:
                manager.record_slice(arm_key, slice_seconds)
                manager.flush(force=True)
        # Undecided budgets (slice schedule ran out first) mean the search
        # timed out; if every budget was *retired* — each one individually
        # proved UNSAT — infeasibility is proved even when some earlier
        # slice expired along the way (saw_unknown only tracks transient
        # expiries, which retirement supersedes).
        if budgets or (saw_unknown and len(retired) < len(attempted)):
            raise SynthesisTimeout(
                "budget search exhausted its time-slice schedule"
            )
        return CompileResult(
            STATUS_INFEASIBLE,
            device,
            message="no implementation exists within the device's "
            "resource limits",
        )

    def _retry_unscaled(
        self,
        original_spec: ParserSpec,
        device: DeviceProfile,
        options: CompileOptions,
        stats: CompileStats,
        deadline: Optional[float],
        allow_loops: bool,
        num_entries: int,
        stage_budget: Optional[int],
        slice_cap: float,
    ) -> Optional[CompileResult]:
        rng = _budget_rng(
            options.seed, allow_loops, stage_budget, num_entries,
            tag="unscaled",
        )
        unscaled, _plan = prepare_spec(
            original_spec,
            pipelined=device.is_pipelined or not allow_loops,
            minimize_widths=False,
            fix_varbits=False,
            eqsat=options.eqsat,
        )
        skeleton = build_skeleton(
            unscaled,
            device,
            options,
            num_entries=num_entries,
            stage_budget=stage_budget,
            allow_loops=allow_loops,
        )
        try:
            outcome = synthesize_for_budget(
                skeleton,
                rng,
                max_iterations=options.max_cegis_iterations,
                max_seconds=slice_cap,
                max_conflicts_per_solve=options.synthesis_max_conflicts,
                deadline=deadline,
                directed_tests=options.directed_seed_tests,
                certify=options.certify,
            )
        except (
            SynthesisTimeout, EncodingOverflow, VerificationBudgetExceeded
        ) as exc:
            partial = getattr(exc, "outcome", None)
            if partial is not None:
                self._merge_outcome(stats, partial)
            return None
        self._merge_outcome(stats, outcome)
        if outcome.feasible and outcome.program is not None:
            program = post_optimize(outcome.program, device)
            final = self._finalize(original_spec, program, device, options)
            if final is not None:
                self._attach_certify_payload(
                    final, original_spec, outcome, options
                )
            return final
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _attach_certify_payload(
        result: CompileResult,
        original_spec: ParserSpec,
        outcome,
        options: CompileOptions,
    ) -> None:
        """Stash the winning attempt's certificate material on the result
        (``compile`` writes it next to the cache entry at the end)."""
        if not options.certify:
            return
        result._certify_payload = {
            "constraint_digest": getattr(outcome, "constraint_digest", ""),
            "witnesses": list(getattr(outcome, "witnesses", ())),
            "max_steps": max(32, 4 * max_parse_depth(original_spec)),
        }

    @staticmethod
    def _merge_outcome(stats: CompileStats, outcome) -> None:
        """Fold one CEGIS attempt's measurements into the compile stats."""
        stats.cegis_iterations += outcome.iterations
        stats.cegis_replayed += getattr(outcome, "replayed", 0)
        stats.pool_tests_reused += getattr(outcome, "pool_reused", 0)
        stats.sat_clauses_added += getattr(outcome, "clauses_added", 0)
        stats.synthesis_seconds += outcome.synthesis_seconds
        stats.verification_seconds += outcome.verification_seconds
        stats.counterexamples += len(outcome.counterexamples)
        stats.sat_conflicts += outcome.sat_conflicts
        stats.sat_decisions += outcome.sat_decisions
        stats.sat_propagations += outcome.sat_propagations
        stats.sat_restarts += outcome.sat_restarts
        stats.sat_learnt_clauses += outcome.sat_learnt_clauses
        stats.sat_gate_cache_hits += getattr(outcome, "gate_cache_hits", 0)

    @staticmethod
    def _restore_scaling(program, plan):
        from ..hw.impl import TcamProgram

        restored_fields = plan.restore_fields(program.fields)
        return TcamProgram(
            restored_fields,
            program.states,
            program.entries,
            program.start_sid,
            program.source_name,
        )

    def _finalize(
        self,
        original_spec: ParserSpec,
        program,
        device: DeviceProfile,
        options: CompileOptions,
    ) -> Optional[CompileResult]:
        violations = program.check_constraints(device)
        if violations:
            return None
        max_steps = max(32, 4 * max_parse_depth(original_spec))
        cex = verify_equivalent(original_spec, program, max_steps=max_steps)
        if cex is not None:
            return None
        return CompileResult(STATUS_OK, device, program=program)


def compile_spec(
    spec: ParserSpec,
    device: DeviceProfile,
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Convenience one-shot compile."""
    return ParserHawkCompiler(options).compile(spec, device)
