"""Compilation result and statistics records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..hw.device import DeviceProfile
from ..hw.impl import TcamProgram

STATUS_OK = "ok"
STATUS_INFEASIBLE = "infeasible"     # no implementation within device limits
STATUS_TIMEOUT = "timeout"
STATUS_FAULT = "fault"               # abnormal failure (crash, pool break, …)


@dataclass
class CompileStats:
    """Where the compile time went.

    Timing fields derive from the tracing layer's spans
    (:mod:`repro.obs`): ``total_seconds`` is the ``compile`` span,
    ``synthesis_seconds``/``verification_seconds`` sum the ``sat.solve``
    and ``verify`` spans.  ``budgets_tried`` counts *unique*
    ``(stage, entries)`` budgets; re-attempts of the same budget under a
    larger time slice are ``budget_retries``.
    """

    synthesis_seconds: float = 0.0
    verification_seconds: float = 0.0
    total_seconds: float = 0.0
    cegis_iterations: int = 0
    # Counterexamples re-applied from a checkpoint on resume (each is one
    # solver round without the decode/verify half of a live iteration).
    cegis_replayed: int = 0
    # Tests replayed from the shared TestPool as up-front constraints
    # (cross-budget / cross-arm reuse); each one is a CEGIS round-trip
    # (solve + equivalence verification) that never had to happen.
    pool_tests_reused: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_restarts: int = 0
    sat_learnt_clauses: int = 0
    # CNF clauses the bit-blaster emitted into solvers (constant folding
    # reduces this without changing any SAT/UNSAT answer).
    sat_clauses_added: int = 0
    # Tseitin gates served from the bit-blaster's structural CNF cache
    # instead of being re-encoded (hash-consed bit-blasting).
    sat_gate_cache_hits: int = 0
    budgets_tried: int = 0
    budget_retries: int = 0
    # Retries served by a parked warm CegisSession (solver state, encoded
    # constraints and iteration position carried over) instead of a cold
    # re-run from scratch.
    warm_resumes: int = 0
    budgets_retired: int = 0
    counterexamples: int = 0
    search_space_bits: int = 0


@dataclass
class CompileResult:
    """The outcome of one ParserHawk compilation."""

    status: str
    device: DeviceProfile
    program: Optional[TcamProgram] = None
    stats: CompileStats = field(default_factory=CompileStats)
    message: str = ""
    options_summary: str = ""
    # Served from the persistent compile cache (repro.persist.cache)
    # instead of a fresh synthesis run.
    cached: bool = False
    # For resumable failures (timeout/fault with checkpointing enabled):
    # the checkpoint file that continues this compile.
    checkpoint_path: str = ""
    # Certifying compiles: where the equivalence certificate landed
    # (empty when certification was off or no cache_dir was configured).
    certificate_path: str = ""
    # Internal hand-off from the budget search to the certificate writer:
    # the winning attempt's constraint digest, witness tests and the
    # verification step bound.  Never serialized.
    _certify_payload: Optional[dict] = field(
        default=None, repr=False, compare=False
    )
    # Memoized check_constraints() output (portfolio winner validation);
    # keyed implicitly by the device of the *first* call — the portfolio
    # only ever validates against its one real device profile.
    _violations: Optional[List[str]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK and self.program is not None

    def constraint_violations(self, device: DeviceProfile) -> List[str]:
        """``program.check_constraints(device)``, computed at most once.

        The portfolio both races on winner validity and reports the
        violations of skipped winners; memoizing here keeps that a
        single full constraint check per result."""
        if self.program is None:
            return ["no program synthesized"]
        if self._violations is None:
            self._violations = self.program.check_constraints(device)
        return self._violations

    @property
    def num_entries(self) -> int:
        if not self.program:
            return -1
        return self.program.num_entries

    @property
    def num_stages(self) -> int:
        if not self.program:
            return -1
        return self.program.num_stages

    def summary_row(self) -> str:
        if not self.ok:
            return f"{self.status}: {self.message}"
        suffix = " (cached)" if self.cached else ""
        return (
            f"{self.num_entries} entries, {self.num_stages} stage(s), "
            f"{self.stats.total_seconds:.2f}s, "
            f"{self.stats.cegis_iterations} CEGIS iteration(s), "
            f"search space {self.stats.search_space_bits} bits{suffix}"
        )
