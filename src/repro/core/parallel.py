"""Opt7: parallel synthesis portfolios (§6.7).

The paper distributes subproblems over a server pool: loop-aware vs
loop-free arms (§6.7.1) and per-hardware-constraint-level arms (§6.7.2,
e.g. one subproblem per transition-key width limit), halting as soon as
any subproblem yields a valid outcome.

``portfolio_compile`` reproduces that with a ``ProcessPoolExecutor``: each
worker runs a full sequential compile of one subproblem, and the first
success (in subproblem priority order) wins.  With
``options.parallel_workers <= 1`` the portfolio degenerates to the
deterministic sequential iteration the rest of the repo uses by default.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hw.device import DeviceProfile
from ..ir.analysis import has_loops
from ..ir.spec import ParserSpec
from .options import CompileOptions
from .result import STATUS_INFEASIBLE, CompileResult


@dataclass(frozen=True)
class Subproblem:
    """One portfolio arm: a device variant plus an option variant."""

    label: str
    device: DeviceProfile
    options: CompileOptions
    priority: int = 0


def derive_subproblems(
    spec: ParserSpec, device: DeviceProfile, options: CompileOptions
) -> List[Subproblem]:
    """The §6.7 subproblem set for one compilation.

    * key-limit levels: the device limit plus tighter limits down to the
      spec's widest actually-needed slice — a tighter limit shrinks the
      candidate pools, so those arms often finish first and their results
      are valid on the real device (a narrower key always fits);
    * loop arms on loop-capable devices for loop-free specs: the loop-free
      encoding is smaller and usually wins the race (Figure 20).
    """
    subproblems: List[Subproblem] = []
    priority = 0

    key_levels = [device.key_limit]
    widest_key = max(
        (s.key_width for s in spec.states.values()), default=0
    )
    for level in (widest_key, max(1, device.key_limit // 2)):
        if 0 < level < device.key_limit and level not in key_levels:
            key_levels.append(level)

    loop_arms = [None]
    if (
        device.allows_loops
        and not device.is_pipelined
        and not has_loops(spec)
    ):
        loop_arms = [False, True]   # loop-free arm first (Figure 20)

    for level in key_levels:
        for loop_arm in loop_arms:
            dev = device if level == device.key_limit else (
                device.with_limits(key_limit=level)
            )
            opts = options.with_(parallel_workers=1)
            if loop_arm is False:
                opts = opts.with_(opt7_parallelism=True)
            label = f"key<={level}" + (
                "" if loop_arm is None else
                (",loop-free" if loop_arm is False else ",loop-aware")
            )
            subproblems.append(Subproblem(label, dev, opts, priority))
            priority += 1
    return subproblems


def _run_subproblem(
    spec: ParserSpec, subproblem: Subproblem
) -> Tuple[int, CompileResult]:
    # Imported here so worker processes resolve it after fork/spawn.
    from .compiler import ParserHawkCompiler

    compiler = ParserHawkCompiler(subproblem.options)
    return subproblem.priority, compiler.compile(spec, subproblem.device)


def portfolio_compile(
    spec: ParserSpec,
    device: DeviceProfile,
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Compile via the parallel subproblem portfolio.

    Results from tighter-key arms are re-validated against the REAL device
    profile before being returned (they always fit — a narrower key is a
    subset of a wider one — but the constraint check keeps us honest)."""
    options = options or CompileOptions()
    subproblems = derive_subproblems(spec, device, options)
    workers = max(1, options.parallel_workers)

    results: List[Tuple[int, CompileResult]] = []
    if workers == 1:
        for sub in subproblems:
            priority, result = _run_subproblem(spec, sub)
            if result.ok:
                results.append((priority, result))
                break
            results.append((priority, result))
    else:
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers
        ) as pool:
            futures = {
                pool.submit(_run_subproblem, spec, sub): sub
                for sub in subproblems
            }
            pending = set(futures)
            try:
                for future in concurrent.futures.as_completed(pending):
                    priority, result = future.result()
                    results.append((priority, result))
                    if result.ok:
                        # First success wins; cancel the stragglers.
                        for other in pending:
                            other.cancel()
                        break
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

    winners = [
        (priority, result) for priority, result in results if result.ok
    ]
    if winners:
        _priority, best = min(winners, key=lambda pr: pr[0])
        assert best.program is not None
        violations = best.program.check_constraints(device)
        if not violations:
            return best
    failures = "; ".join(
        f"{sub.label}: {result.status}"
        for sub, (_p, result) in zip(subproblems, results)
    )
    return CompileResult(
        STATUS_INFEASIBLE,
        device,
        message=f"no portfolio arm succeeded ({failures})",
    )
