"""Opt7: parallel synthesis portfolios (§6.7).

The paper distributes subproblems over a server pool: loop-aware vs
loop-free arms (§6.7.1) and per-hardware-constraint-level arms (§6.7.2,
e.g. one subproblem per transition-key width limit), halting as soon as
any subproblem yields a valid outcome.

``portfolio_compile`` reproduces that with a ``ProcessPoolExecutor``: each
worker runs a full sequential compile of one subproblem, and the first
success (in subproblem priority order) wins.  With
``options.parallel_workers <= 1`` the portfolio degenerates to the
deterministic sequential iteration the rest of the repo uses by default.

Tracing: each arm runs under a ``portfolio.arm`` span.  Worker processes
cannot share the parent's tracer, so when tracing is enabled each worker
builds its own :class:`~repro.obs.Tracer`, and ships the finished span
tree plus a counter-registry snapshot back with its result; the parent
grafts the spans under its own trace and merges the counters.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..hw.device import DeviceProfile
from ..ir.analysis import has_loops
from ..ir.spec import ParserSpec
from ..obs import Tracer, get_tracer, use_tracer
from .options import CompileOptions
from .result import STATUS_INFEASIBLE, CompileResult

# (priority, result, span-tree dict or None, counter snapshot or None)
ArmOutcome = Tuple[int, CompileResult, Optional[Dict[str, Any]],
                   Optional[Dict[str, float]]]


@dataclass(frozen=True)
class Subproblem:
    """One portfolio arm: a device variant plus an option variant."""

    label: str
    device: DeviceProfile
    options: CompileOptions
    priority: int = 0


def derive_subproblems(
    spec: ParserSpec, device: DeviceProfile, options: CompileOptions
) -> List[Subproblem]:
    """The §6.7 subproblem set for one compilation.

    * key-limit levels: the device limit plus tighter limits down to the
      spec's widest actually-needed slice — a tighter limit shrinks the
      candidate pools, so those arms often finish first and their results
      are valid on the real device (a narrower key always fits);
    * loop arms on loop-capable devices for loop-free specs: the loop-free
      encoding is smaller and usually wins the race (Figure 20).
    """
    subproblems: List[Subproblem] = []
    priority = 0

    key_levels = [device.key_limit]
    widest_key = max(
        (s.key_width for s in spec.states.values()), default=0
    )
    for level in (widest_key, max(1, device.key_limit // 2)):
        if 0 < level < device.key_limit and level not in key_levels:
            key_levels.append(level)

    loop_arms = [None]
    if (
        device.allows_loops
        and not device.is_pipelined
        and not has_loops(spec)
    ):
        loop_arms = [False, True]   # loop-free arm first (Figure 20)

    for level in key_levels:
        for loop_arm in loop_arms:
            dev = device if level == device.key_limit else (
                device.with_limits(key_limit=level)
            )
            opts = options.with_(parallel_workers=1)
            if loop_arm is False:
                opts = opts.with_(opt7_parallelism=True)
            label = f"key<={level}" + (
                "" if loop_arm is None else
                (",loop-free" if loop_arm is False else ",loop-aware")
            )
            subproblems.append(Subproblem(label, dev, opts, priority))
            priority += 1
    return subproblems


def _run_subproblem(
    spec: ParserSpec, subproblem: Subproblem, trace: bool = False
) -> ArmOutcome:
    # Imported here so worker processes resolve it after fork/spawn.
    from .compiler import ParserHawkCompiler

    compiler = ParserHawkCompiler(subproblem.options)
    if not trace:
        return subproblem.priority, compiler.compile(
            spec, subproblem.device
        ), None, None
    # Worker-side tracer: serialized back for the parent to merge.
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span(
            "portfolio.arm",
            label=subproblem.label,
            priority=subproblem.priority,
        ) as arm_span:
            result = compiler.compile(spec, subproblem.device)
    return (
        subproblem.priority,
        result,
        arm_span.to_dict(),
        tracer.registry.snapshot(),
    )


def _valid_winner(result: CompileResult, device: DeviceProfile) -> bool:
    """Successful AND satisfying the real device profile.

    The race only halts on a valid winner: a tighter-key arm whose program
    somehow violates the real device must not stop arms that could still
    produce a usable result."""
    return (
        result.ok
        and result.program is not None
        and not result.program.check_constraints(device)
    )


def select_result(
    subproblems: List[Subproblem],
    results: List[Tuple[int, CompileResult]],
    device: DeviceProfile,
) -> CompileResult:
    """Pick the portfolio's overall result from per-arm outcomes.

    ``results`` holds ``(priority, result)`` pairs in *any* order
    (completion order for the process pool) — arms are identified by
    priority, never by position.  Winners are considered best-first; a
    winner whose program violates the real device profile is skipped in
    favour of the next-best winner, and only when no winner survives the
    constraint check does the portfolio report infeasibility.
    """
    label_of = {sub.priority: sub.label for sub in subproblems}
    winners = sorted(
        (pr for pr in results if pr[1].ok), key=lambda pr: pr[0]
    )
    failures: List[str] = []
    for priority, result in winners:
        assert result.program is not None
        violations = result.program.check_constraints(device)
        if not violations:
            return result
        failures.append(
            f"{label_of.get(priority, f'arm#{priority}')}: winner violates "
            f"device constraints ({'; '.join(violations)})"
        )
    for priority, result in sorted(results, key=lambda pr: pr[0]):
        if result.ok:
            continue
        failures.append(
            f"{label_of.get(priority, f'arm#{priority}')}: {result.status}"
        )
    return CompileResult(
        STATUS_INFEASIBLE,
        device,
        message=f"no portfolio arm succeeded ({'; '.join(failures)})",
    )


def portfolio_compile(
    spec: ParserSpec,
    device: DeviceProfile,
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Compile via the parallel subproblem portfolio.

    Results from tighter-key arms are re-validated against the REAL device
    profile before being returned (they always fit — a narrower key is a
    subset of a wider one — but the constraint check keeps us honest; a
    winner that fails it is skipped in favour of the next-best winner)."""
    options = options or CompileOptions()
    subproblems = derive_subproblems(spec, device, options)
    workers = max(1, options.parallel_workers)
    tracer = get_tracer()

    results: List[Tuple[int, CompileResult]] = []
    with tracer.span("portfolio", arms=len(subproblems), workers=workers):
        if workers == 1:
            for sub in subproblems:
                with tracer.span(
                    "portfolio.arm", label=sub.label, priority=sub.priority
                ):
                    priority, result, _spans, _counters = _run_subproblem(
                        spec, sub
                    )
                results.append((priority, result))
                if _valid_winner(result, device):
                    break
        else:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers
            ) as pool:
                futures = {
                    pool.submit(
                        _run_subproblem, spec, sub, tracer.enabled
                    ): sub
                    for sub in subproblems
                }
                pending = set(futures)
                try:
                    for future in concurrent.futures.as_completed(pending):
                        priority, result, spans, counters = future.result()
                        if spans is not None:
                            tracer.attach(spans)
                        if counters is not None and tracer.enabled:
                            tracer.registry.merge(counters)
                        results.append((priority, result))
                        if _valid_winner(result, device):
                            # First valid success wins; cancel stragglers.
                            for other in pending:
                                other.cancel()
                            break
                finally:
                    pool.shutdown(wait=False, cancel_futures=True)

    return select_result(subproblems, results, device)
