"""Opt7: parallel synthesis portfolios (§6.7), with fault tolerance.

The paper distributes subproblems over a server pool: loop-aware vs
loop-free arms (§6.7.1) and per-hardware-constraint-level arms (§6.7.2,
e.g. one subproblem per transition-key width limit), halting as soon as
any subproblem yields a valid outcome.

``portfolio_compile`` reproduces that two ways, selected by
``options.schedule``:

* ``"steal"`` (default) — the work-stealing shard scheduler
  (:mod:`repro.core.stealing`): arms decompose into migratable
  (arm, budget slice) work units raced by long-lived workers, sharing
  counterexamples over the :class:`~repro.core.testpool.CexBus`;
* ``"static"`` — a ``ProcessPoolExecutor`` where each worker runs a full
  sequential compile of one subproblem (the A/B baseline and fallback).

The first valid success wins either way.  With
``options.parallel_workers <= 1`` the portfolio degenerates to the
deterministic sequential iteration the rest of the repo uses by default.

Resilience (see :mod:`repro.resilience`): the portfolio is the scaling
path, so it must degrade instead of dying.

* **Arm supervision** — an arm that raises (worker crash, pickling
  error, injected fault) becomes a per-arm ``STATUS_FAULT`` result in
  the failure list, counted as ``portfolio.arm_faults`` and marked on
  the arm's span; the remaining arms keep racing.
* **Pool recovery** — a ``BrokenProcessPool`` (or a pool that cannot be
  created at all, e.g. in sandboxed environments) falls back to running
  the not-yet-completed arms in-process, best priority first.
* **Deadline enforcement** — ``options.total_max_seconds`` acts as a
  wall-clock watchdog: it bounds the ``as_completed`` wait, is threaded
  into every arm's own options, and on expiry the portfolio returns its
  best valid winner so far, or a ``STATUS_TIMEOUT`` result naming the
  arms that were still running.

Tracing: each arm runs under a ``portfolio.arm`` span.  Worker processes
cannot share the parent's tracer, so when tracing is enabled each worker
builds its own :class:`~repro.obs.Tracer`, and ships the finished span
tree plus a counter-registry snapshot back with its result; the parent
grafts the spans under its own trace and merges the counters.
"""

from __future__ import annotations

import concurrent.futures
import shutil
import tempfile
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..hw.device import DeviceProfile
from ..ir.analysis import has_loops
from ..ir.spec import ParserSpec
from ..obs import Tracer, get_tracer, use_tracer
from ..persist import (
    CheckpointManager,
    arm_checkpoint_dir,
    compile_key,
    program_fingerprint,
)
from ..resilience import CompileFault, PoolBroken
from ..resilience import injection as _injection
from ..resilience.injection import fault_point
from .options import CompileOptions
from .stealing import run_stealing
from .testpool import TestChannel, start_bus
from .result import (
    STATUS_FAULT,
    STATUS_INFEASIBLE,
    STATUS_TIMEOUT,
    CompileResult,
)

# (priority, result, span-tree dict or None, counter snapshot or None)
ArmOutcome = Tuple[int, CompileResult, Optional[Dict[str, Any]],
                   Optional[Dict[str, float]]]

# Environments where a process pool cannot even be created (no /dev/shm,
# seccomp'd fork, missing _multiprocessing) raise one of these.
_POOL_UNAVAILABLE_ERRORS = (
    OSError, PermissionError, NotImplementedError, ImportError, PoolBroken,
)


@dataclass(frozen=True)
class Subproblem:
    """One portfolio arm: a device variant plus an option variant."""

    label: str
    device: DeviceProfile
    options: CompileOptions
    priority: int = 0


def derive_subproblems(
    spec: ParserSpec, device: DeviceProfile, options: CompileOptions
) -> List[Subproblem]:
    """The §6.7 subproblem set for one compilation.

    * key-limit levels: the device limit plus tighter limits down to the
      spec's widest actually-needed slice — a tighter limit shrinks the
      candidate pools, so those arms often finish first and their results
      are valid on the real device (a narrower key always fits);
    * loop arms on loop-capable devices for loop-free specs: the loop-free
      encoding is smaller and usually wins the race (Figure 20).
    """
    subproblems: List[Subproblem] = []
    priority = 0

    key_levels = [device.key_limit]
    widest_key = max(
        (s.key_width for s in spec.states.values()), default=0
    )
    for level in (widest_key, max(1, device.key_limit // 2)):
        if 0 < level < device.key_limit and level not in key_levels:
            key_levels.append(level)

    loop_arms = [None]
    if (
        device.allows_loops
        and not device.is_pipelined
        and not has_loops(spec)
    ):
        loop_arms = [False, True]   # loop-free arm first (Figure 20)

    for level in key_levels:
        for loop_arm in loop_arms:
            dev = device if level == device.key_limit else (
                device.with_limits(key_limit=level)
            )
            opts = options.with_(parallel_workers=1)
            if loop_arm is False:
                opts = opts.with_(opt7_parallelism=True)
            label = f"key<={level}" + (
                "" if loop_arm is None else
                (",loop-free" if loop_arm is False else ",loop-aware")
            )
            subproblems.append(Subproblem(label, dev, opts, priority))
            priority += 1
    return subproblems


def _run_subproblem(
    spec: ParserSpec,
    subproblem: Subproblem,
    trace: bool = False,
    faults: Optional[list] = None,
    channel: Optional[TestChannel] = None,
) -> ArmOutcome:
    # Imported here so worker processes resolve it after fork/spawn.
    from .compiler import ParserHawkCompiler

    if faults is not None:
        # Worker-process side of the fault-injection registry handoff
        # (works under both fork and spawn start methods).
        _injection.install(faults)
    fault_point("portfolio.worker", label=subproblem.label)
    compiler = ParserHawkCompiler(subproblem.options)
    if not trace:
        return subproblem.priority, compiler.compile(
            spec, subproblem.device, test_channel=channel
        ), None, None
    # Worker-side tracer: serialized back for the parent to merge.
    tracer = Tracer()
    with use_tracer(tracer):
        with tracer.span(
            "portfolio.arm",
            label=subproblem.label,
            priority=subproblem.priority,
        ) as arm_span:
            result = compiler.compile(
                spec, subproblem.device, test_channel=channel
            )
    return (
        subproblem.priority,
        result,
        arm_span.to_dict(),
        tracer.registry.snapshot(),
    )


def _valid_winner(result: CompileResult, device: DeviceProfile) -> bool:
    """Successful AND satisfying the real device profile.

    The race only halts on a valid winner: a tighter-key arm whose program
    somehow violates the real device must not stop arms that could still
    produce a usable result.  The constraint check is memoized on the
    result, so ``select_result`` reuses it instead of re-checking."""
    return result.ok and not result.constraint_violations(device)


def _arm_failure(
    sub: Subproblem, exc: BaseException, device: DeviceProfile
) -> CompileResult:
    """Convert an exception escaping one arm into that arm's result."""
    if isinstance(exc, CompileFault):
        detail = exc.describe()
    else:
        detail = f"{type(exc).__name__}: {exc}"
    return CompileResult(STATUS_FAULT, device, message=detail)


def _with_deadline(
    sub: Subproblem, deadline: Optional[float]
) -> Optional[Subproblem]:
    """Thread the portfolio's wall-clock deadline into an arm's options.

    Each arm then enforces its share of the remaining time itself (the
    compiler turns ``total_max_seconds`` into its internal deadline), so
    a straggler arm self-terminates even if the parent has moved on.

    Returns None when the deadline has *already expired*: the arm must
    not be launched at all (it could only burn a token budget and report
    a misleading per-arm timeout) — callers count it under
    ``portfolio.deadline_expired`` and report it among the pending arms.
    """
    if deadline is None:
        return sub
    remaining = deadline - time.monotonic()
    if remaining <= 0:
        return None
    current = sub.options.total_max_seconds
    if current is not None and current <= remaining:
        return sub
    return Subproblem(
        sub.label,
        sub.device,
        sub.options.with_(total_max_seconds=remaining),
        sub.priority,
    )


def select_result(
    subproblems: List[Subproblem],
    results: List[Tuple[int, CompileResult]],
    device: DeviceProfile,
    pending: Optional[Sequence[str]] = None,
) -> CompileResult:
    """Pick the portfolio's overall result from per-arm outcomes.

    ``results`` holds ``(priority, result)`` pairs in *any* order
    (completion order for the process pool) — arms are identified by
    priority, never by position.  Winners are considered best-first; a
    winner whose program violates the real device profile is skipped in
    favour of the next-best winner.  When no winner survives:

    * ``pending`` non-empty (the deadline expired with arms unfinished)
      → a ``STATUS_TIMEOUT`` result naming the still-running arms;
    * otherwise → ``STATUS_INFEASIBLE`` listing every arm's failure
      (including supervised ``STATUS_FAULT`` arms with their fault
      detail).
    """
    label_of = {sub.priority: sub.label for sub in subproblems}
    winners = sorted(
        (pr for pr in results if pr[1].ok), key=lambda pr: pr[0]
    )
    failures: List[str] = []
    for priority, result in winners:
        assert result.program is not None
        violations = result.constraint_violations(device)
        if not violations:
            return result
        failures.append(
            f"{label_of.get(priority, f'arm#{priority}')}: winner violates "
            f"device constraints ({'; '.join(violations)})"
        )
    for priority, result in sorted(results, key=lambda pr: pr[0]):
        if result.ok:
            continue
        line = f"{label_of.get(priority, f'arm#{priority}')}: {result.status}"
        if result.status == STATUS_FAULT and result.message:
            line += f" ({result.message})"
        failures.append(line)
    if pending:
        message = (
            "portfolio deadline expired with arm(s) still running: "
            + ", ".join(pending)
        )
        if failures:
            message += f"; finished arms: {'; '.join(failures)}"
        return CompileResult(STATUS_TIMEOUT, device, message=message)
    return CompileResult(
        STATUS_INFEASIBLE,
        device,
        message=f"no portfolio arm succeeded ({'; '.join(failures)})",
    )


def _run_arms_inline(
    spec: ParserSpec,
    subproblems: Sequence[Subproblem],
    device: DeviceProfile,
    tracer,
    deadline: Optional[float],
    results: List[Tuple[int, CompileResult]],
    on_result=None,
    channel: Optional[TestChannel] = None,
) -> List[str]:
    """Run arms in-process, best priority first, under supervision.

    Appends each arm's ``(priority, result)`` to ``results`` (invoking
    ``on_result(priority, result)`` after each, which is how the
    portfolio checkpoint records arm outcomes incrementally) and stops
    early on a valid winner.  Returns the labels of arms *not run*
    because the deadline expired first (empty otherwise)."""
    ordered = sorted(subproblems, key=lambda s: s.priority)
    for index, sub in enumerate(ordered):
        bounded = _with_deadline(sub, deadline)
        if bounded is None:
            # Deadline already expired: launching would only misreport.
            tracer.count("portfolio.deadline_expired")
            return [s.label for s in ordered[index:]]
        with tracer.span(
            "portfolio.arm", label=sub.label, priority=sub.priority
        ) as arm_span:
            try:
                _priority, result, _spans, _counters = _run_subproblem(
                    spec, bounded, False, None,
                    channel,
                )
            except Exception as exc:
                result = _arm_failure(sub, exc, device)
                arm_span.attrs["error"] = result.message
                tracer.count("portfolio.arm_faults")
        results.append((sub.priority, result))
        if on_result is not None:
            on_result(sub.priority, result)
        if _valid_winner(result, device):
            break
    return []


def _run_pooled(
    spec: ParserSpec,
    subproblems: Sequence[Subproblem],
    device: DeviceProfile,
    tracer,
    deadline: Optional[float],
    workers: int,
    results: List[Tuple[int, CompileResult]],
    on_result=None,
    channel: Optional[TestChannel] = None,
) -> List[str]:
    """Race arms across a process pool; returns still-pending labels.

    Supervision: a worker exception becomes that arm's ``STATUS_FAULT``
    result; a broken pool re-runs the not-yet-completed arms in-process;
    an unavailable pool degrades to the sequential path; a deadline expiry
    returns the labels of unfinished arms for the partial result."""
    try:
        fault_point("portfolio.pool")
        pool = concurrent.futures.ProcessPoolExecutor(max_workers=workers)
    except _POOL_UNAVAILABLE_ERRORS as exc:
        tracer.count("portfolio.pool_unavailable")
        with tracer.span(
            "portfolio.degraded",
            reason=f"{type(exc).__name__}: {exc}",
        ):
            return _run_arms_inline(
                spec, subproblems, device, tracer, deadline, results,
                on_result, channel,
            )

    faults = _injection.snapshot() or None
    futures: Dict[concurrent.futures.Future, Subproblem] = {}
    completed: Set[int] = set()
    broken: Optional[BaseException] = None
    expired: List[Subproblem] = []
    try:
        try:
            for sub in subproblems:
                bounded = _with_deadline(sub, deadline)
                if bounded is None:
                    # The deadline expired before this arm could even be
                    # submitted: never launch it (the old code clamped it
                    # to a token 0.01 s budget and launched anyway).
                    expired.append(sub)
                    tracer.count("portfolio.deadline_expired")
                    continue
                futures[pool.submit(
                    _run_subproblem,
                    spec,
                    bounded,
                    tracer.enabled,
                    faults,
                    channel,
                )] = sub
        except (BrokenProcessPool,) + _POOL_UNAVAILABLE_ERRORS as exc:
            broken = exc
        expired_labels = [
            s.label for s in sorted(expired, key=lambda s: s.priority)
        ]
        if broken is None:
            timeout = (
                None if deadline is None
                else max(0.01, deadline - time.monotonic())
            )
            try:
                for future in concurrent.futures.as_completed(
                    futures, timeout=timeout
                ):
                    sub = futures[future]
                    try:
                        priority, result, spans, counters = future.result()
                    except BrokenProcessPool as exc:
                        broken = exc
                        break
                    except Exception as exc:
                        # Supervision: the arm failed (worker raised, or
                        # its outcome could not be pickled back) — record
                        # a per-arm failure, keep racing the rest.
                        priority = sub.priority
                        result = _arm_failure(sub, exc, device)
                        spans = counters = None
                        with tracer.span(
                            "portfolio.arm.fault",
                            label=sub.label,
                            priority=sub.priority,
                            error=result.message,
                        ):
                            pass
                        tracer.count("portfolio.arm_faults")
                    completed.add(sub.priority)
                    if spans is not None:
                        tracer.attach(spans)
                    if counters is not None and tracer.enabled:
                        tracer.registry.merge(counters)
                    results.append((priority, result))
                    if on_result is not None:
                        on_result(priority, result)
                    if _valid_winner(result, device):
                        # First valid success wins; cancel stragglers.
                        for other in futures:
                            other.cancel()
                        return expired_labels
            except concurrent.futures.TimeoutError:
                tracer.count("portfolio.deadline_expired")
                # Harvest arms that finished but were not yet yielded by
                # as_completed — their results already exist and must
                # not be reported as "still running" (or dropped when
                # one of them is the winner).
                for future, sub in futures.items():
                    if (
                        sub.priority in completed
                        or future.cancelled()
                        or not future.done()
                    ):
                        continue
                    try:
                        priority, result, spans, counters = future.result(
                            timeout=0
                        )
                    except Exception as exc:
                        priority = sub.priority
                        result = _arm_failure(sub, exc, device)
                        spans = counters = None
                        with tracer.span(
                            "portfolio.arm.fault",
                            label=sub.label,
                            priority=sub.priority,
                            error=result.message,
                        ):
                            pass
                        tracer.count("portfolio.arm_faults")
                    completed.add(sub.priority)
                    if spans is not None:
                        tracer.attach(spans)
                    if counters is not None and tracer.enabled:
                        tracer.registry.merge(counters)
                    results.append((priority, result))
                    if on_result is not None:
                        on_result(priority, result)
                for other in futures:
                    other.cancel()
                return [
                    s.label
                    for s in sorted(
                        subproblems, key=lambda s: s.priority
                    )
                    if s.priority not in completed
                ]
        if broken is not None:
            # The pool died under us (a worker was killed, fork failed
            # mid-run, a result was unpicklable at the pool layer).
            # Re-run every arm that never completed in-process, best
            # priority first; the injection registry's "subprocess"
            # scope keeps worker-killing test faults from re-firing here.
            tracer.count("portfolio.pool_broken")
            remaining = [
                s for s in subproblems if s.priority not in completed
            ]
            with tracer.span(
                "portfolio.recovery",
                reason=f"{type(broken).__name__}: {broken}",
                arms=len(remaining),
            ):
                return _run_arms_inline(
                    spec, remaining, device, tracer, deadline, results,
                    on_result, channel,
                )
        return expired_labels
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def portfolio_compile(
    spec: ParserSpec,
    device: DeviceProfile,
    options: Optional[CompileOptions] = None,
) -> CompileResult:
    """Compile via the parallel subproblem portfolio.

    Results from tighter-key arms are re-validated against the REAL device
    profile before being returned (they always fit — a narrower key is a
    subset of a wider one — but the constraint check keeps us honest; a
    winner that fails it is skipped in favour of the next-best winner).

    Fault tolerance: arms are supervised (an arm that raises becomes a
    per-arm failure), a broken or unavailable process pool degrades to
    in-process execution, and ``options.total_max_seconds`` is enforced
    as a portfolio-level wall-clock deadline with best-effort partial
    results.

    Persistence (``options.checkpoint_dir``): the portfolio keeps a
    supervisor checkpoint at the root directory recording each finished
    arm's status, and redirects every arm's own compile checkpoint into
    ``<root>/arms/<label>/`` — so a killed portfolio resumes with
    definitively-failed (infeasible) arms skipped outright and every
    other arm reloading its own CEGIS progress."""
    options = options or CompileOptions()
    subproblems = derive_subproblems(spec, device, options)
    workers = max(1, options.parallel_workers)
    use_steal = workers > 1 and options.schedule != "static"
    tracer = get_tracer()
    deadline = (
        time.monotonic() + options.total_max_seconds
        if options.total_max_seconds
        else None
    )

    manager: Optional[CheckpointManager] = None
    if options.checkpoint_dir:
        manager = CheckpointManager(
            options.checkpoint_dir,
            compile_key(spec, device, options),
            interval_seconds=options.checkpoint_interval_seconds,
            resume=options.resume,
        )
        # Each arm checkpoints independently under the supervisor's
        # directory; the arm's own compile key (its variant device +
        # options) guards each sub-checkpoint against spec changes.
        subproblems = [
            Subproblem(
                sub.label,
                sub.device,
                sub.options.with_(
                    checkpoint_dir=arm_checkpoint_dir(
                        options.checkpoint_dir, sub.label
                    ),
                    resume=options.resume,
                ),
                sub.priority,
            )
            for sub in subproblems
        ]

    # The steal scheduler migrates arms between workers through the
    # checkpoint format; without a user-provided checkpoint root, give
    # each arm a scratch one so migration still resumes instead of
    # restarting cold.  (A small flush interval amortizes the per-record
    # writes on the hot path.)
    scratch_root: Optional[str] = None
    if use_steal and not options.checkpoint_dir:
        try:
            scratch_root = tempfile.mkdtemp(prefix="repro-steal-")
        except OSError:
            scratch_root = None
        if scratch_root is not None:
            subproblems = [
                Subproblem(
                    sub.label,
                    sub.device,
                    sub.options.with_(
                        checkpoint_dir=str(arm_checkpoint_dir(
                            scratch_root, sub.label
                        )),
                        checkpoint_interval_seconds=max(
                            0.25,
                            sub.options.checkpoint_interval_seconds,
                        ),
                    ),
                    sub.priority,
                )
                for sub in subproblems
            ]

    label_of = {sub.priority: sub.label for sub in subproblems}
    results: List[Tuple[int, CompileResult]] = []
    to_run = subproblems
    if manager is not None and options.resume:
        # Arms a previous run proved infeasible stay failed: rebuild
        # their recorded results instead of re-running them.  Faulted or
        # timed-out arms re-run (their own checkpoints make that cheap).
        finished = manager.finished_arms()
        to_run = []
        for sub in subproblems:
            prior = finished.get(sub.label)
            if prior and prior.get("status") == STATUS_INFEASIBLE:
                results.append((sub.priority, CompileResult(
                    STATUS_INFEASIBLE,
                    sub.device,
                    message=prior.get("message", ""),
                )))
                tracer.count("checkpoint.arms_skipped")
            else:
                to_run.append(sub)

    def record_arm(priority: int, result: CompileResult) -> None:
        if manager is not None:
            manager.record_arm_result(
                label_of.get(priority, f"arm#{priority}"),
                result.status,
                result.message,
            )

    # Cross-arm test exchange (see repro.core.testpool): arms sharing a
    # spec layout adopt each other's counterexamples between budget
    # attempts, over a CexBus.  Inline arms share an in-process bus;
    # worker processes hold a manager proxy for it (one round-trip per
    # publish/fetch, deduped and sliced per topic server-side).
    # Best-effort throughout — environments that cannot start a manager
    # just race without sharing.
    channel: Optional[TestChannel] = None
    mp_manager = None
    if options.test_reuse and len(to_run) > 1:
        if workers == 1:
            channel = TestChannel()
        else:
            try:
                mp_manager, bus = start_bus()
                channel = TestChannel(bus)
            except Exception:
                tracer.count("portfolio.channel_unavailable")
                mp_manager = None
                channel = None

    pending: List[str] = []
    try:
        with tracer.span(
            "portfolio",
            arms=len(subproblems),
            workers=workers,
            schedule="steal" if use_steal else (
                "static" if workers > 1 else "sequential"
            ),
        ):
            if workers == 1:
                pending = _run_arms_inline(
                    spec, to_run, device, tracer, deadline, results,
                    record_arm, channel,
                )
            elif use_steal:
                pending = run_stealing(
                    spec, to_run, device, tracer, deadline, workers,
                    results, record_arm, channel, manager,
                )
            else:
                pending = _run_pooled(
                    spec, to_run, device, tracer, deadline, workers,
                    results, record_arm, channel,
                )
    finally:
        if mp_manager is not None:
            try:
                mp_manager.shutdown()
            except Exception:
                pass
        if scratch_root is not None:
            shutil.rmtree(scratch_root, ignore_errors=True)

    result = select_result(subproblems, results, device, pending=pending)
    if manager is not None:
        if result.ok:
            manager.mark_completed(program_fingerprint(result.program))
        else:
            manager.flush(force=True)
            if result.status in (STATUS_TIMEOUT, STATUS_FAULT):
                result.checkpoint_path = str(manager.path)
    return result
