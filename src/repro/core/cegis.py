"""The CEGIS loop (§5.2, Figure 13).

``synthesize_for_budget`` runs synthesis/verification rounds for one fixed
resource budget (a skeleton).  The synthesis phase solves the accumulated
test-case constraints with the CDCL solver; the verification phase runs the
exact product-equivalence checker.  Counterexamples flow back as new test
cases (edge ③ of Figure 13); an UNSAT synthesis result means no
implementation exists within this budget (edge ②)."""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..hw.impl import TcamProgram
from ..ir.bits import Bits
from ..ir.simulator import (
    OUTCOME_OVERRUN,
    ParseResult,
    simulate_spec,
    spec_input_bound,
    trace_spec,
)
from ..ir.spec import ParserSpec
from ..obs import get_tracer
from ..resilience import CompileFault
from ..smt import SAT, Solver, UNKNOWN, UNSAT
from .encoder import SymbolicProgram
from .skeleton import Skeleton
from .verifier import (
    Counterexample,
    VerificationBudgetExceeded,
    verify_equivalent,
)


class SynthesisTimeout(Exception):
    """The synthesis budget (time or conflicts) ran out.

    ``outcome`` carries the partial :class:`CegisOutcome` accumulated
    before the budget expired, so callers can fold the aborted attempt's
    time and solver counters into their stats (keeping ``CompileStats``
    consistent with the trace, which already saw those solves)."""

    def __init__(self, message: str, outcome: "CegisOutcome" = None) -> None:
        super().__init__(message)
        self.outcome = outcome


@dataclass
class CegisOutcome:
    program: Optional[TcamProgram]
    feasible: bool
    iterations: int = 0
    # Counterexamples re-applied from a checkpoint (repro.persist) before
    # live iterations started; they skip candidate decode + verification.
    replayed: int = 0
    synthesis_seconds: float = 0.0
    verification_seconds: float = 0.0
    counterexamples: List[Counterexample] = field(default_factory=list)
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_restarts: int = 0
    sat_learnt_clauses: int = 0


def initial_tests(
    spec: ParserSpec,
    rng: random.Random,
    max_tests: int = 48,
    max_steps: int = 64,
    directed: bool = True,
) -> List[Tuple[Bits, ParseResult]]:
    """Seed test set.

    The paper seeds CEGIS with a single random input/output pair and lets
    counterexamples do the rest.  We use the same loop but seed it with
    *directed* tests: starting from the all-zero input, each traced run
    spawns mutants that splice every rule's constant into the transition-key
    bit positions the trace touched, until every (path, outcome) signature
    discovered has a representative.  This covers each reachable rule with
    high probability and typically saves several CEGIS round-trips."""
    bound = max(8, spec_input_bound(spec, max_steps))
    if not directed:
        # Paper fidelity (§5.2): a single random input/output pair; the
        # CEGIS loop grows the rest from counterexamples.
        length = rng.randint(1, bound)
        bits = Bits(rng.getrandbits(length), length)
        return [(bits, simulate_spec(spec, bits, max_steps))]
    tests: List[Tuple[Bits, ParseResult]] = []
    seen_sigs = set()
    seen_inputs = set()
    queue: List[Bits] = [Bits(0, bound)]
    for _ in range(3):
        queue.append(Bits(rng.getrandbits(bound), bound))
    # Short inputs exercise truncation behaviour.
    queue.append(Bits(0, max(0, bound // 4)))
    queue.append(Bits(0, 1))
    processed = 0
    while queue and len(tests) < max_tests and processed < 10 * max_tests:
        bits = queue.pop(0)
        processed += 1
        if bits in seen_inputs:
            continue
        seen_inputs.add(bits)
        result, steps = trace_spec(spec, bits, max_steps)
        if result.outcome == OUTCOME_OVERRUN:
            continue
        # Signature includes the observed key values: two inputs with the
        # same spec path can still distinguish candidate implementations.
        sig = (
            tuple(result.path),
            result.outcome,
            tuple((s.state, s.key_value) for s in steps if s.key_width),
        )
        if sig not in seen_sigs:
            seen_sigs.add(sig)
            tests.append((bits, result))
        # Mutants: splice each rule constant of each traced keyed state
        # into the key positions that run touched.
        for step in steps:
            if not step.key_positions:
                continue
            state = spec.states[step.state]
            widths = [k.width for k in state.key]
            full = (1 << step.key_width) - 1
            if step.key_width <= 3:
                # Small key: enumerate it exhaustively.  CEGIS then sees the
                # state's complete transition behaviour up front, which
                # usually makes the first synthesized candidate correct.
                for value in range(1 << step.key_width):
                    mutated = _splice(
                        bits, step.key_positions, step.key_width, value, full
                    )
                    if mutated not in seen_inputs:
                        queue.append(mutated)
                continue
            for rule in state.rules:
                value, mask = rule.combined_value_mask(widths)
                mutated = _splice(bits, step.key_positions, step.key_width,
                                  value, mask)
                if mutated not in seen_inputs:
                    queue.append(mutated)
                # Neighbourhood of each constant (flip one masked bit) plus
                # a random probe, to hit default arms and near-misses.
                for b in range(step.key_width):
                    if (mask >> b) & 1:
                        mutated = _splice(
                            bits, step.key_positions, step.key_width,
                            value ^ (1 << b), full,
                        )
                        if mutated not in seen_inputs:
                            queue.append(mutated)
                rnd = rng.getrandbits(step.key_width) if step.key_width else 0
                mutated = _splice(bits, step.key_positions, step.key_width,
                                  rnd, full)
                if mutated not in seen_inputs:
                    queue.append(mutated)
    return tests


def _splice(
    bits: Bits, positions: List[int], key_width: int, value: int, mask: int
) -> Bits:
    """Overwrite the masked key bits at their absolute input positions."""
    raw = bits.uint()
    n = len(bits)
    for j, pos in enumerate(positions):
        if pos >= n:
            continue
        bit_index = key_width - 1 - j
        if not (mask >> bit_index) & 1:
            continue
        shift = n - 1 - pos
        if (value >> bit_index) & 1:
            raw |= 1 << shift
        else:
            raw &= ~(1 << shift)
    return Bits(raw, n)


def synthesize_for_budget(
    skeleton: Skeleton,
    rng: random.Random,
    max_iterations: int = 40,
    max_seconds: Optional[float] = None,
    max_conflicts_per_solve: Optional[int] = None,
    deadline: Optional[float] = None,
    verify_max_configs: int = 60000,
    directed_tests: bool = True,
    replay: Optional[Sequence[Bits]] = None,
    on_counterexample: Optional[Callable[[Bits], None]] = None,
) -> CegisOutcome:
    """Run CEGIS for one skeleton.  ``feasible=False`` reports a proved
    UNSAT (no program in this budget); a timeout raises
    :class:`SynthesisTimeout`.

    ``replay`` seeds the run with counterexamples recorded by an earlier
    (interrupted) attempt at the *same* budget.  Replay is faithful: each
    replayed counterexample is preceded by the same ``solver.check`` call
    the original iteration made, so the CDCL solver passes through the
    identical state sequence and the resumed run converges to the same
    program an uninterrupted run would — while skipping the replayed
    iterations' candidate decoding and equivalence verification (the
    expensive half of a CEGIS round).  ``on_counterexample`` is invoked
    with each *newly* discovered counterexample's input, which is how the
    checkpoint layer records them."""
    spec = skeleton.spec
    max_steps = max(skeleton.unroll_steps, 16)
    outcome = CegisOutcome(program=None, feasible=True)
    sp = SymbolicProgram(skeleton)
    solver = Solver()
    tracer = get_tracer()
    started = time.monotonic()

    def remaining() -> Optional[float]:
        limits = []
        if max_seconds is not None:
            limits.append(max_seconds - (time.monotonic() - started))
        if deadline is not None:
            limits.append(deadline - time.monotonic())
        if not limits:
            return None
        return min(limits)

    def solve_once() -> str:
        """One budgeted ``solver.check`` with stat accumulation (shared
        by replayed and live iterations, so both stay comparable in the
        trace and in ``CompileStats``)."""
        budget_s = remaining()
        if budget_s is not None and budget_s <= 0:
            raise SynthesisTimeout("CEGIS time budget exhausted", outcome)
        with tracer.span("sat.solve") as solve_span:
            try:
                status = solver.check(
                    max_seconds=budget_s,
                    max_conflicts=max_conflicts_per_solve,
                )
            except CompileFault as exc:
                # Attach the partial outcome so callers can fold this
                # attempt's measurements into their stats (mirrors
                # SynthesisTimeout / VerificationBudgetExceeded).
                if exc.outcome is None:
                    exc.outcome = outcome
                raise
            finally:
                outcome.synthesis_seconds += solve_span.elapsed()
        # Per-solve deltas (not lifetime totals): matches what the
        # tracing layer records, so CompileStats and the span tree
        # agree.  Propagations notably differ — clause insertion also
        # propagates, outside any solve() call.
        delta = solver.last_check_stats()
        outcome.sat_conflicts += delta["conflicts"]
        outcome.sat_decisions += delta["decisions"]
        outcome.sat_propagations += delta["propagations"]
        outcome.sat_restarts += delta["restarts"]
        outcome.sat_learnt_clauses += delta["learned"]
        return status

    for constraint in sp.structural_constraints():
        solver.add(constraint)
    for bits, expected in initial_tests(
        spec, rng, max_steps=max_steps, directed=directed_tests
    ):
        for constraint in sp.encode_test(bits, expected):
            solver.add(constraint)

    # Checkpoint replay: re-apply previously discovered counterexamples,
    # preceding each with the solve its original iteration made (keeping
    # the CDCL state identical to the interrupted run's) but skipping the
    # decode + verification work — that is where resume saves time.
    for bits in replay or ():
        expected = simulate_spec(spec, bits, max_steps)
        if expected.outcome == OUTCOME_OVERRUN:
            continue
        with tracer.span("cegis.replay", index=outcome.replayed + 1):
            status = solve_once()
        if status == UNSAT:
            outcome.feasible = False
            return outcome
        if status == UNKNOWN:
            raise SynthesisTimeout("SAT solver budget exhausted", outcome)
        for constraint in sp.encode_test(bits, expected):
            solver.add(constraint)
        outcome.replayed += 1
        tracer.count("cegis.replayed")

    for iteration in range(1, max_iterations + 1):
        outcome.iterations = iteration
        tracer.count("cegis.iterations")
        with tracer.span("cegis.iteration", index=iteration):
            status = solve_once()
            if status == UNSAT:
                outcome.feasible = False
                return outcome
            if status == UNKNOWN:
                raise SynthesisTimeout("SAT solver budget exhausted", outcome)
            candidate = sp.decode(solver.model())
            with tracer.span("verify") as verify_span:
                try:
                    cex = verify_equivalent(
                        spec,
                        candidate,
                        max_steps=max_steps,
                        max_configs=verify_max_configs,
                    )
                except VerificationBudgetExceeded as exc:
                    exc.outcome = outcome
                    raise
                finally:
                    outcome.verification_seconds += verify_span.elapsed()
            if cex is None:
                outcome.program = candidate
                return outcome
            outcome.counterexamples.append(cex)
            tracer.count("cegis.counterexamples")
            if on_counterexample is not None:
                on_counterexample(cex.bits)
        expected = simulate_spec(spec, cex.bits, max_steps)
        if expected.outcome == OUTCOME_OVERRUN:
            raise RuntimeError(
                "specification overran its step bound on a counterexample; "
                "increase max_unroll_steps"
            )
        for constraint in sp.encode_test(cex.bits, expected):
            solver.add(constraint)
    raise SynthesisTimeout(
        f"CEGIS did not converge within {max_iterations} iterations", outcome
    )
