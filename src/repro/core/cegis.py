"""The CEGIS loop (§5.2, Figure 13).

``synthesize_for_budget`` runs synthesis/verification rounds for one fixed
resource budget (a skeleton).  The synthesis phase solves the accumulated
test-case constraints with the CDCL solver; the verification phase runs the
exact product-equivalence checker.  Counterexamples flow back as new test
cases (edge ③ of Figure 13); an UNSAT synthesis result means no
implementation exists within this budget (edge ②)."""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..hw.impl import TcamProgram
from ..ir.bits import Bits
from ..ir.simulator import (
    OUTCOME_OVERRUN,
    ParseResult,
    simulate_spec,
    spec_input_bound,
    trace_spec,
)
from ..ir.spec import ParserSpec
from ..obs import get_tracer
from ..resilience import CompileFault
from ..smt import SAT, Solver, UNKNOWN, UNSAT
from .encoder import SymbolicProgram
from .skeleton import Skeleton
from .testpool import ORIGIN_SEED, TestPool
from .verifier import (
    Counterexample,
    VerificationBudgetExceeded,
    verify_equivalent,
)

# Pool tests are replayed in chunks with a budgeted solve between chunks.
# One solve per test (what live CEGIS does) wastes the per-solve fixed
# cost — every check retracts to level 0 and re-propagates the whole
# trail; one solve after ALL tests hands the CDCL search a cold, maximally
# constrained instance with no learnt clauses or saved phases to steer it
# (measurably slower than discovering the same tests incrementally).
# Chunking keeps the solver warm while paying the fixed cost once per
# chunk instead of once per test.
POOL_REPLAY_CHUNK = 1

# Conflict cap for the warm-up solves interleaved with pool replay.  A
# warm-up solve's job is to keep the CDCL state (saved phases, learnt
# clauses, activity) co-evolving with the constraints the way live CEGIS
# iterations would — not to fully decide the instance.  Most repairs
# converge in far fewer conflicts; when one doesn't, capping it and
# moving on is cheaper than letting a single hard intermediate instance
# burn the whole time slice.
POOL_WARMUP_MAX_CONFLICTS = 400


class SynthesisTimeout(Exception):
    """The synthesis budget (time or conflicts) ran out.

    ``outcome`` carries the partial :class:`CegisOutcome` accumulated
    before the budget expired, so callers can fold the aborted attempt's
    time and solver counters into their stats (keeping ``CompileStats``
    consistent with the trace, which already saw those solves)."""

    def __init__(self, message: str, outcome: "CegisOutcome" = None) -> None:
        super().__init__(message)
        self.outcome = outcome


class UnitCancelled(Exception):
    """The work unit driving this search was cancelled (winner broadcast,
    stale-runner discard, or shutdown).  Deliberately *not* a
    :class:`SynthesisTimeout` or ``CompileFault``: cancellation must
    unwind out of ``ParserHawkCompiler.compile`` untouched — it is a
    scheduling outcome, never a compile result."""


class SlicePacer:
    """Unit-slice gate for migratable budget search (repro.core.stealing).

    The budget loop calls :meth:`checkpoint` between budget attempts —
    the exact points where all state is either warm-parked (sessions,
    pool, retired set) or durable (checkpoint records), so a compile
    suspended here can resume warm on the same worker or be rebuilt from
    its checkpoint on another.  The base class never blocks; the steal
    scheduler's pacer parks the calling thread until the next unit is
    granted, and raises :class:`UnitCancelled` once the race is over.
    """

    def checkpoint(self) -> None:  # pragma: no cover - trivial default
        return None


@dataclass
class CegisOutcome:
    program: Optional[TcamProgram]
    feasible: bool
    iterations: int = 0
    # Counterexamples re-applied from a checkpoint (repro.persist) before
    # live iterations started; they skip candidate decode + verification.
    replayed: int = 0
    # Tests seeded up front from the shared TestPool (cross-budget /
    # cross-arm reuse); each one is a CEGIS round-trip (SAT solve +
    # product-equivalence verification) this run did not have to make.
    pool_reused: int = 0
    # CNF clauses this run's solver received from the bit-blaster
    # (constant folding shrinks this without changing satisfiability).
    clauses_added: int = 0
    synthesis_seconds: float = 0.0
    verification_seconds: float = 0.0
    counterexamples: List[Counterexample] = field(default_factory=list)
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_restarts: int = 0
    sat_learnt_clauses: int = 0
    # Gate-level CNF cache hits (hash-consed bit-blasting): each hit is a
    # Tseitin gate a warm or repeated encoding did not have to re-emit.
    gate_cache_hits: int = 0
    # Certifying runs only.  On a winner: the SHA-256 of the exact CNF
    # clause stream the solver saw plus the ordered packet-level inputs
    # whose behaviour was encoded as constraints (the certificate's
    # witness tests).  On a proved UNSAT: the DRAT ProofLog refuting the
    # blasted formula.
    constraint_digest: str = ""
    witnesses: List[Bits] = field(default_factory=list)
    proof: Optional[object] = None


def initial_tests(
    spec: ParserSpec,
    rng: random.Random,
    max_tests: int = 48,
    max_steps: int = 64,
    directed: bool = True,
) -> List[Tuple[Bits, ParseResult]]:
    """Seed test set.

    The paper seeds CEGIS with a single random input/output pair and lets
    counterexamples do the rest.  We use the same loop but seed it with
    *directed* tests: starting from the all-zero input, each traced run
    spawns mutants that splice every rule's constant into the transition-key
    bit positions the trace touched, until every (path, outcome) signature
    discovered has a representative.  This covers each reachable rule with
    high probability and typically saves several CEGIS round-trips."""
    bound = max(8, spec_input_bound(spec, max_steps))
    if not directed:
        # Paper fidelity (§5.2): a single random input/output pair; the
        # CEGIS loop grows the rest from counterexamples.
        length = rng.randint(1, bound)
        bits = Bits(rng.getrandbits(length), length)
        return [(bits, simulate_spec(spec, bits, max_steps))]
    tests: List[Tuple[Bits, ParseResult]] = []
    seen_sigs = set()
    # Membership is checked (and recorded) at *enqueue* time: the queue
    # never holds an input twice, so it cannot balloon with the duplicate
    # mutants the splice loops produce, and popleft keeps dequeueing O(1)
    # (the old list.pop(0) made the whole BFS O(n^2)).
    seen_inputs = set()
    queue: deque = deque()

    def enqueue(bits: Bits) -> None:
        if bits not in seen_inputs:
            seen_inputs.add(bits)
            queue.append(bits)

    enqueue(Bits(0, bound))
    for _ in range(3):
        enqueue(Bits(rng.getrandbits(bound), bound))
    # Short inputs exercise truncation behaviour.
    enqueue(Bits(0, max(0, bound // 4)))
    enqueue(Bits(0, 1))
    processed = 0
    while queue and len(tests) < max_tests and processed < 10 * max_tests:
        bits = queue.popleft()
        processed += 1
        result, steps = trace_spec(spec, bits, max_steps)
        if result.outcome == OUTCOME_OVERRUN:
            continue
        # Signature includes the observed key values: two inputs with the
        # same spec path can still distinguish candidate implementations.
        sig = (
            tuple(result.path),
            result.outcome,
            tuple((s.state, s.key_value) for s in steps if s.key_width),
        )
        if sig not in seen_sigs:
            seen_sigs.add(sig)
            tests.append((bits, result))
        # Mutants: splice each rule constant of each traced keyed state
        # into the key positions that run touched.
        for step in steps:
            if not step.key_positions:
                continue
            state = spec.states[step.state]
            widths = [k.width for k in state.key]
            full = (1 << step.key_width) - 1
            if step.key_width <= 3:
                # Small key: enumerate it exhaustively.  CEGIS then sees the
                # state's complete transition behaviour up front, which
                # usually makes the first synthesized candidate correct.
                for value in range(1 << step.key_width):
                    enqueue(_splice(
                        bits, step.key_positions, step.key_width, value, full
                    ))
                continue
            for rule in state.rules:
                value, mask = rule.combined_value_mask(widths)
                enqueue(_splice(bits, step.key_positions, step.key_width,
                                value, mask))
                # Neighbourhood of each constant (flip one masked bit) plus
                # a random probe, to hit default arms and near-misses.
                for b in range(step.key_width):
                    if (mask >> b) & 1:
                        enqueue(_splice(
                            bits, step.key_positions, step.key_width,
                            value ^ (1 << b), full,
                        ))
                rnd = rng.getrandbits(step.key_width) if step.key_width else 0
                enqueue(_splice(bits, step.key_positions, step.key_width,
                                rnd, full))
    return tests


def _splice(
    bits: Bits, positions: List[int], key_width: int, value: int, mask: int
) -> Bits:
    """Overwrite the masked key bits at their absolute input positions."""
    raw = bits.uint()
    n = len(bits)
    for j, pos in enumerate(positions):
        if pos >= n:
            continue
        bit_index = key_width - 1 - j
        if not (mask >> bit_index) & 1:
            continue
        shift = n - 1 - pos
        if (value >> bit_index) & 1:
            raw |= 1 << shift
        else:
            raw &= ~(1 << shift)
    return Bits(raw, n)



class CegisSession:
    """One skeleton's CEGIS run, resumable across time slices.

    The budget search retries a budget whose slice expired with a larger
    slice.  A cold retry re-runs the whole deterministic iteration
    sequence from scratch — every solve, decode and verification of the
    expired attempt is repeated before any new ground is covered.  A
    session instead keeps the *live* run between attempts: the CDCL
    solver (learnt clauses, saved phases, activity), the constraints
    already encoded, the RNG position, the replay/pool cursors and the
    iteration counter.  :meth:`run` executes one attempt under its own
    time budget; when it raises :class:`SynthesisTimeout` the caller can
    simply call :meth:`run` again later and the session continues where
    it stopped, skipping all duplicated work.

    ``max_iterations`` caps the *total* live iterations across the
    session's lifetime — the same ceiling a cold re-run enforces per
    attempt, so a warm continuation can never converge on an iteration a
    cold schedule would not also have reached.

    Construction wiring (``replay``, ``pool``, ``pool_base``,
    ``on_counterexample``) is documented on :func:`synthesize_for_budget`,
    which is the single-attempt convenience wrapper around this class.
    """

    def __init__(
        self,
        skeleton: Skeleton,
        rng: random.Random,
        max_iterations: int = 40,
        max_conflicts_per_solve: Optional[int] = None,
        verify_max_configs: int = 60000,
        directed_tests: bool = True,
        replay: Optional[Sequence[Bits]] = None,
        on_counterexample: Optional[Callable[[Bits], None]] = None,
        pool: Optional[TestPool] = None,
        pool_base: Optional[int] = None,
        certify: bool = False,
    ) -> None:
        self.skeleton = skeleton
        self.spec = skeleton.spec
        self.max_steps = max(skeleton.unroll_steps, 16)
        self.rng = rng
        self.max_iterations = max_iterations
        self.max_conflicts_per_solve = max_conflicts_per_solve
        self.verify_max_configs = verify_max_configs
        self.directed_tests = directed_tests
        self.on_counterexample = on_counterexample
        self.pool = pool
        self.pool_base = pool_base
        self.certify = certify
        self._sp = SymbolicProgram(skeleton)
        # Certifying runs log a DRAT proof of every solver verdict; the
        # search itself is identical (logging only observes).
        self._solver = Solver(proof=certify)
        # Ordered packet-level inputs whose expected behaviour was
        # encoded as constraints — the witness tests of a certificate.
        self._witnesses: List[Bits] = []
        # The pool prefix is materialized now: the session must seed
        # exactly the prefix that existed when the attempt started, even
        # if the shared pool keeps growing while this budget is parked
        # between slices.
        self._pool_tests = (
            list(pool.tests(self.max_steps, size=pool_base))
            if pool is not None else []
        )
        self._replay = list(replay or ())
        # Resume cursors: each phase records how far it got, so a slice
        # that expires mid-phase continues from the same position.
        self._structural_done = False
        self._pool_pos = 0
        self._since_solve = 0
        self._seeds_done = False
        self._replay_pos = 0
        self._iterations = 0
        self._encoded_inputs: set = set()

    # ------------------------------------------------------------------
    def _encode_test(self, bits: Bits, expected: ParseResult) -> None:
        """Encode one test's expected behaviour as constraints, keeping
        the ordered witness record in certifying mode."""
        if self.certify:
            self._witnesses.append(bits)
        for constraint in self._sp.encode_test(bits, expected):
            self._solver.add(constraint)

    def _attach_unsat_proof(self, outcome: CegisOutcome) -> None:
        """Hand the refutation to the caller on a proved-UNSAT outcome."""
        if self.certify:
            outcome.proof = self._solver.proof

    # ------------------------------------------------------------------
    def run(
        self,
        max_seconds: Optional[float] = None,
        deadline: Optional[float] = None,
    ) -> CegisOutcome:
        """One attempt.  Returns the outcome (``feasible=False`` for a
        proved UNSAT); raises :class:`SynthesisTimeout` when the attempt's
        budget expires, leaving the session resumable.  The returned
        outcome carries only *this attempt's* measurements (time, solver
        deltas, clauses), so callers can sum attempts without double
        counting."""
        spec = self.spec
        sp = self._sp
        solver = self._solver
        max_steps = self.max_steps
        outcome = CegisOutcome(program=None, feasible=True)
        tracer = get_tracer()
        started = time.monotonic()
        clauses_at_entry = solver.sat_solver.num_clauses_added

        def remaining() -> Optional[float]:
            limits = []
            if max_seconds is not None:
                limits.append(max_seconds - (time.monotonic() - started))
            if deadline is not None:
                limits.append(deadline - time.monotonic())
            if not limits:
                return None
            return min(limits)

        def solve_once(warmup_conflicts: Optional[int] = None) -> str:
            """One budgeted ``solver.check`` with stat accumulation
            (shared by replayed and live iterations, so both stay
            comparable in the trace and in ``CompileStats``).
            ``warmup_conflicts`` further caps the conflict budget for
            pool-replay warm-up solves."""
            budget_s = remaining()
            if budget_s is not None and budget_s <= 0:
                raise SynthesisTimeout("CEGIS time budget exhausted", outcome)
            max_conflicts = self.max_conflicts_per_solve
            if warmup_conflicts is not None:
                max_conflicts = (
                    warmup_conflicts if max_conflicts is None
                    else min(max_conflicts, warmup_conflicts)
                )
            with tracer.span("sat.solve") as solve_span:
                try:
                    status = solver.check(
                        max_seconds=budget_s,
                        max_conflicts=max_conflicts,
                    )
                except CompileFault as exc:
                    # Attach the partial outcome so callers can fold this
                    # attempt's measurements into their stats (mirrors
                    # SynthesisTimeout / VerificationBudgetExceeded).
                    if exc.outcome is None:
                        exc.outcome = outcome
                    raise
                finally:
                    outcome.synthesis_seconds += solve_span.elapsed()
            # Per-solve deltas (not lifetime totals): matches what the
            # tracing layer records, so CompileStats and the span tree
            # agree.  Propagations notably differ — clause insertion also
            # propagates, outside any solve() call.
            delta = solver.last_check_stats()
            outcome.sat_conflicts += delta["conflicts"]
            outcome.sat_decisions += delta["decisions"]
            outcome.sat_propagations += delta["propagations"]
            outcome.sat_restarts += delta["restarts"]
            outcome.sat_learnt_clauses += delta["learned"]
            outcome.gate_cache_hits += delta.get("gate_cache_hits", 0)
            return status

        # Everything below adds clauses; the finally block snapshots the
        # solver's insertion count so every exit path (success, UNSAT,
        # timeout, fault) reports how many CNF clauses this attempt cost.
        try:
            if not self._structural_done:
                for constraint in sp.structural_constraints():
                    solver.add(constraint)
                self._structural_done = True

            # Up-front test constraints: the shared pool's prefix first
            # (each entry is a solve+verify round-trip this run skips),
            # then this budget's own directed seeds — unless the pool
            # prefix already carries seed tests, in which case
            # regenerating them would only duplicate near-identical
            # coverage at full encoding cost.
            while self._pool_pos < len(self._pool_tests):
                bits, expected, origin = self._pool_tests[self._pool_pos]
                if bits in self._encoded_inputs:
                    self._pool_pos += 1
                    continue
                if self._since_solve >= POOL_REPLAY_CHUNK:
                    # Warm-up solve between chunks: learnt clauses and
                    # saved phases from it make the next chunk's
                    # constraints cheap to absorb.  UNSAT here soundly
                    # retires the budget — pool tests are valid for the
                    # spec, so no correct program at this budget exists.
                    # A conflict-capped UNKNOWN just stops warming: the
                    # learnt clauses are kept and the live loop's
                    # uncapped solves settle the instance.
                    with tracer.span("cegis.pool_warmup"):
                        status = solve_once(
                            warmup_conflicts=POOL_WARMUP_MAX_CONFLICTS
                        )
                    if status == UNSAT:
                        outcome.feasible = False
                        self._attach_unsat_proof(outcome)
                        return outcome
                    self._since_solve = 0
                self._encoded_inputs.add(bits)
                self._encode_test(bits, expected)
                self._pool_pos += 1
                self._since_solve += 1
                outcome.pool_reused += 1
                tracer.count("tests.pool_hits")
                if origin != ORIGIN_SEED:
                    tracer.count("cex.reused")

            if not self._seeds_done:
                self._seeds_done = True
                pool = self.pool
                if pool is None or not pool.has_seeds(self.pool_base):
                    for bits, expected in initial_tests(
                        spec, self.rng, max_steps=max_steps,
                        directed=self.directed_tests,
                    ):
                        if pool is not None:
                            pool.add(bits, ORIGIN_SEED)
                        if bits in self._encoded_inputs:
                            continue
                        self._encoded_inputs.add(bits)
                        self._encode_test(bits, expected)

            # Checkpoint replay: re-apply previously discovered
            # counterexamples, preceding each with the solve its original
            # iteration made (keeping the CDCL state identical to the
            # interrupted run's) but skipping the decode + verification
            # work — that is where resume saves time.
            while self._replay_pos < len(self._replay):
                bits = self._replay[self._replay_pos]
                expected = simulate_spec(spec, bits, max_steps)
                if expected.outcome == OUTCOME_OVERRUN:
                    self._replay_pos += 1
                    continue
                with tracer.span("cegis.replay", index=outcome.replayed + 1):
                    status = solve_once()
                if status == UNSAT:
                    outcome.feasible = False
                    self._attach_unsat_proof(outcome)
                    return outcome
                if status == UNKNOWN:
                    raise SynthesisTimeout(
                        "SAT solver budget exhausted", outcome
                    )
                self._encode_test(bits, expected)
                self._replay_pos += 1
                outcome.replayed += 1
                tracer.count("cegis.replayed")

            while self._iterations < self.max_iterations:
                self._iterations += 1
                outcome.iterations += 1
                tracer.count("cegis.iterations")
                with tracer.span("cegis.iteration", index=self._iterations):
                    status = solve_once()
                    if status == UNSAT:
                        outcome.feasible = False
                        self._attach_unsat_proof(outcome)
                        return outcome
                    if status == UNKNOWN:
                        raise SynthesisTimeout(
                            "SAT solver budget exhausted", outcome
                        )
                    candidate = sp.decode(solver.model())
                    with tracer.span("verify") as verify_span:
                        try:
                            cex = verify_equivalent(
                                spec,
                                candidate,
                                max_steps=max_steps,
                                max_configs=self.verify_max_configs,
                            )
                        except VerificationBudgetExceeded as exc:
                            exc.outcome = outcome
                            raise
                        finally:
                            outcome.verification_seconds += (
                                verify_span.elapsed()
                            )
                    if cex is None:
                        outcome.program = candidate
                        if self.certify:
                            outcome.constraint_digest = (
                                solver.proof.input_digest()
                            )
                            outcome.witnesses = list(self._witnesses)
                        return outcome
                    outcome.counterexamples.append(cex)
                    tracer.count("cegis.counterexamples")
                    if self.on_counterexample is not None:
                        self.on_counterexample(cex.bits)
                expected = simulate_spec(spec, cex.bits, max_steps)
                if expected.outcome == OUTCOME_OVERRUN:
                    raise RuntimeError(
                        "specification overran its step bound on a "
                        "counterexample; increase max_unroll_steps"
                    )
                self._encode_test(cex.bits, expected)
            raise SynthesisTimeout(
                f"CEGIS did not converge within {self.max_iterations} "
                "iterations", outcome
            )
        finally:
            outcome.clauses_added = (
                solver.sat_solver.num_clauses_added - clauses_at_entry
            )
            tracer.count("sat.clauses_added", outcome.clauses_added)


def synthesize_for_budget(
    skeleton: Skeleton,
    rng: random.Random,
    max_iterations: int = 40,
    max_seconds: Optional[float] = None,
    max_conflicts_per_solve: Optional[int] = None,
    deadline: Optional[float] = None,
    verify_max_configs: int = 60000,
    directed_tests: bool = True,
    replay: Optional[Sequence[Bits]] = None,
    on_counterexample: Optional[Callable[[Bits], None]] = None,
    pool: Optional[TestPool] = None,
    pool_base: Optional[int] = None,
    certify: bool = False,
) -> CegisOutcome:
    """Run CEGIS for one skeleton as a single cold attempt.  ``feasible=
    False`` reports a proved UNSAT (no program in this budget); a timeout
    raises :class:`SynthesisTimeout`.  Callers that want to *continue*
    an expired attempt instead of re-running it hold a
    :class:`CegisSession` and call :meth:`CegisSession.run` per slice.

    ``replay`` seeds the run with counterexamples recorded by an earlier
    (interrupted) attempt at the *same* budget.  Replay is faithful: each
    replayed counterexample is preceded by the same ``solver.check`` call
    the original iteration made, so the CDCL solver passes through the
    identical state sequence and the resumed run converges to the same
    program an uninterrupted run would — while skipping the replayed
    iterations' candidate decoding and equivalence verification (the
    expensive half of a CEGIS round).  ``on_counterexample`` is invoked
    with each *newly* discovered counterexample's input, which is how the
    checkpoint layer records them.

    ``pool`` is the compile-wide :class:`TestPool`: its first
    ``pool_base`` entries (all of it when None) are encoded as up-front
    constraints — no solve, no verification — and any tests this run
    generates or discovers are recorded back into it.  When the seeded
    prefix already carries directed seed tests, this run reuses them
    instead of regenerating its own (initial_tests depends on the spec,
    not the budget).  ``pool_base`` exists for faithful crash-resume: a
    resumed budget must see exactly the pool prefix the interrupted run
    saw when it started, not entries recorded afterwards."""
    session = CegisSession(
        skeleton,
        rng,
        max_iterations=max_iterations,
        max_conflicts_per_solve=max_conflicts_per_solve,
        verify_max_configs=verify_max_configs,
        directed_tests=directed_tests,
        replay=replay,
        on_counterexample=on_counterexample,
        pool=pool,
        pool_base=pool_base,
        certify=certify,
    )
    return session.run(max_seconds=max_seconds, deadline=deadline)
