"""Shared test pool: cross-budget / cross-arm counterexample reuse.

Counterexamples and directed seed tests are semantic properties of the
*specification*, not of the resource budget that happened to discover
them: any input/output pair valid for the spec must be satisfied by every
correct implementation at every budget.  The budget search, however, used
to throw everything away between budgets — each counterexample had to be
re-discovered at every subsequent budget, and each re-discovery costs a
full SAT solve plus a product-equivalence verification (the two expensive
halves of a CEGIS round).

A :class:`TestPool` records every test discovered anywhere in a compile
exactly once (keyed by input bits, with the spec's expected
:class:`~repro.ir.simulator.ParseResult` memoized) and replays the pool
as *up-front constraints* into every subsequent budget's CEGIS run.
Because the extra constraints are valid for the spec, they can only prune
spec-inequivalent candidates: per-budget feasibility — and therefore the
minimal budget found — is semantically unchanged, while most of the
re-discovery round-trips disappear.

Pools are strictly per bit **layout**: counterexample inputs live in the
*synthesis* spec's bit positions, and Opt2/Opt6 scaling changes that
layout per portfolio arm.  Arms that share a prepared-spec layout (e.g.
the key-limit levels of §6.7.2, which differ only in device limits)
exchange tests mid-race through a :class:`TestChannel` over a
:class:`CexBus` — a topic-addressed exchange keyed by layout fingerprint.
The bus dedupes on publish (every arm republishes shared tests, so the
old single shared list grew without bound) and serves fetches from
per-topic lists with per-consumer cursors, so one fetch ships exactly the
new entries for that layout instead of the whole tail filtered
client-side.  For the process portfolio the bus lives in a
``multiprocessing`` manager server (:func:`start_bus`) and workers hold a
proxy: one round-trip per publish/fetch, drained at slice granularity.
The bus also carries compile-scoped flags: a winner broadcast
(:meth:`TestChannel.announce_winner`) tells every in-flight work unit of
the same compile to stand down.

Determinism contract (crash-resume): the pool's *content and insertion
order* at the moment each budget's run starts is what that run's solver
sees.  ``repro.persist`` therefore records every pool entry in order plus
a per-budget ``pool_base`` (the pool size when the budget started), and a
resumed run reconstructs exactly that prefix — see
:meth:`TestPool.prefix` and ``CheckpointManager.record_pool_entry``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from multiprocessing.managers import BaseManager
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_OVERRUN, ParseResult, simulate_spec
from ..ir.spec import ParserSpec

ORIGIN_SEED = "seed"     # directed seed test (initial_tests)
ORIGIN_CEX = "cex"       # CEGIS counterexample (verifier)
ORIGIN_SHARED = "shared"  # adopted from a sibling arm via the channel


@dataclass
class PoolEntry:
    """One recorded test input with its memoized expectation."""

    bits: Bits
    origin: str
    # Memoized simulate_spec output and the step count it actually used
    # (len(result.path)).  A non-overrun result is valid at any step
    # bound >= that count; anything else is re-simulated on demand.
    result: Optional[ParseResult] = None
    steps: int = 0


@dataclass
class PoolStats:
    added: int = 0
    duplicates: int = 0
    seeds: int = 0
    counterexamples: int = 0
    shared_in: int = 0
    replayed: int = 0        # entries handed out as up-front constraints


class TestPool:
    """Insertion-ordered, deduplicated set of tests for one spec layout."""

    def __init__(self, spec: ParserSpec, layout_key: str = "") -> None:
        self.spec = spec
        self.layout_key = layout_key
        self._entries: Dict[Tuple[int, int], PoolEntry] = {}
        self.stats = PoolStats()
        # Invoked with each genuinely new entry — the checkpoint layer's
        # hook for making the pool durable in insertion order.
        self.on_add: Optional[Callable[[PoolEntry], None]] = None
        # Cursor into the cross-arm channel (entries before it were
        # already drained).
        self._channel_pos = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bits: Bits) -> bool:
        return (bits.uint(), len(bits)) in self._entries

    def entries(self) -> List[PoolEntry]:
        return list(self._entries.values())

    def add(self, bits: Bits, origin: str = ORIGIN_CEX) -> bool:
        """Record a test input; returns True if it was new."""
        key = (bits.uint(), len(bits))
        if key in self._entries:
            self.stats.duplicates += 1
            return False
        entry = PoolEntry(bits, origin)
        self._entries[key] = entry
        self.stats.added += 1
        if origin == ORIGIN_SEED:
            self.stats.seeds += 1
        elif origin == ORIGIN_SHARED:
            self.stats.shared_in += 1
        else:
            self.stats.counterexamples += 1
        if self.on_add is not None:
            self.on_add(entry)
        return True

    # ------------------------------------------------------------------
    def prefix(self, size: Optional[int] = None) -> List[PoolEntry]:
        """The first ``size`` entries in insertion order (all if None)."""
        entries = list(self._entries.values())
        if size is None:
            return entries
        return entries[:size]

    def expected(
        self, entry: PoolEntry, max_steps: int
    ) -> Optional[ParseResult]:
        """The spec's output for ``entry`` under ``max_steps``, memoized.

        Returns None when the spec overruns the bound on this input (the
        entry is kept — a later budget with a larger unroll may still use
        it) — callers must skip such entries."""
        if (
            entry.result is not None
            and entry.result.outcome != OUTCOME_OVERRUN
            and entry.steps <= max_steps
        ):
            return entry.result
        result = simulate_spec(self.spec, entry.bits, max_steps)
        entry.result = result
        entry.steps = len(result.path)
        if result.outcome == OUTCOME_OVERRUN:
            return None
        return result

    def tests(
        self, max_steps: int, size: Optional[int] = None
    ) -> List[Tuple[Bits, ParseResult, str]]:
        """Replayable ``(bits, expected, origin)`` triples, in pool order,
        limited to the first ``size`` entries (the faithful-resume prefix)
        and to inputs the spec resolves within ``max_steps``."""
        out: List[Tuple[Bits, ParseResult, str]] = []
        for entry in self.prefix(size):
            expected = self.expected(entry, max_steps)
            if expected is None:
                continue
            out.append((entry.bits, expected, entry.origin))
        self.stats.replayed += len(out)
        return out

    def has_seeds(self, size: Optional[int] = None) -> bool:
        """Whether the (prefix of the) pool already carries seed tests —
        if so, a budget run can skip regenerating its own directed
        seeds and reuse the recorded ones."""
        return any(
            e.origin == ORIGIN_SEED for e in self.prefix(size)
        )

    # -- cross-arm exchange --------------------------------------------
    def drain(self, channel: Optional["TestChannel"]) -> int:
        """Adopt new channel entries published for this pool's layout.

        Returns how many genuinely new tests were adopted.  Never raises:
        a broken channel (dead manager process) simply stops supplying."""
        if channel is None or not self.layout_key:
            return 0
        self._channel_pos, items = channel.fetch(
            self.layout_key, self._channel_pos
        )
        adopted = 0
        for value, length in items:
            if self.add(Bits(value, length), ORIGIN_SHARED):
                adopted += 1
        return adopted

    def publish(
        self, channel: Optional["TestChannel"], bits: Bits
    ) -> None:
        if channel is None or not self.layout_key:
            return
        channel.publish(self.layout_key, bits)


class CexBus:
    """Server side of the cross-worker counterexample exchange.

    Topics are layout fingerprints; each topic is an insertion-ordered,
    publish-deduplicated list of ``(value, length)`` pairs.  A consumer's
    cursor indexes into *its* topic only, so a fetch ships exactly the
    entries that are both new to that consumer and meaningful in its
    layout — never the whole tail.  Thread-safe because the manager
    server dispatches each client connection on its own thread (and the
    in-process portfolio shares one instance across arms directly).

    Flags are compile-scoped broadcast bits (winner announcements); they
    piggyback on the bus so cancellation reaches any worker that can
    already reach the exchange.
    """

    def __init__(self) -> None:
        self._topics: Dict[str, List[Tuple[int, int]]] = {}
        self._seen: Dict[str, set] = {}
        self._flags: set = set()
        self._lock = threading.Lock()
        self._stats = {
            "published": 0, "duplicates": 0, "fetches": 0, "shipped": 0,
        }

    def publish(self, topic: str, value: int, length: int) -> bool:
        """Record one test for ``topic``; returns True if it was new."""
        with self._lock:
            seen = self._seen.setdefault(topic, set())
            if (value, length) in seen:
                self._stats["duplicates"] += 1
                return False
            seen.add((value, length))
            self._topics.setdefault(topic, []).append((value, length))
            self._stats["published"] += 1
            return True

    def fetch(
        self, topic: str, cursor: int
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """Entries for ``topic`` past ``cursor`` plus the new cursor."""
        with self._lock:
            entries = self._topics.get(topic, ())
            items = list(entries[cursor:])
            self._stats["fetches"] += 1
            self._stats["shipped"] += len(items)
            return cursor + len(items), items

    def announce(self, flag: str) -> None:
        with self._lock:
            self._flags.add(flag)

    def flagged(self, flag: str) -> bool:
        with self._lock:
            return flag in self._flags

    def size(self) -> int:
        """Total unique entries across all topics."""
        with self._lock:
            return sum(len(v) for v in self._topics.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._stats)


class _BusManager(BaseManager):
    """Manager hosting one :class:`CexBus` for a process portfolio."""


_BusManager.register("CexBus", CexBus)


def start_bus() -> Tuple[_BusManager, Any]:
    """Start a bus server; returns ``(manager, bus proxy)``.

    The proxy pickles into worker processes; every call is one manager
    round-trip.  Callers must ``manager.shutdown()`` when done.  Raises
    whatever ``multiprocessing`` raises in environments that cannot
    start a manager — callers degrade to running without sharing.
    """
    manager = _BusManager()
    manager.start()
    return manager, manager.CexBus()


class TestChannel:
    """Never-raising client handle over a :class:`CexBus`.

    ``bus`` is either an in-process :class:`CexBus` (inline arms, or one
    constructed implicitly when omitted) or a manager proxy for it
    (process portfolio).  All operations are best-effort: a dead manager
    makes the channel silently inert rather than failing the compile.
    """

    def __init__(self, bus: Optional[Any] = None) -> None:
        self._bus = bus if bus is not None else CexBus()

    def publish(self, layout_key: str, bits: Bits) -> None:
        try:
            self._bus.publish(layout_key, bits.uint(), len(bits))
        except Exception:
            pass

    def fetch(
        self, layout_key: str, start: int
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """New entries on this layout's topic from cursor ``start``;
        returns the advanced cursor plus the (value, length) pairs."""
        try:
            return self._bus.fetch(layout_key, start)
        except Exception:
            return start, []

    def announce_winner(self, group: str) -> None:
        try:
            self._bus.announce("winner:" + group)
        except Exception:
            pass

    def winner_declared(self, group: str) -> bool:
        try:
            return self._bus.flagged("winner:" + group)
        except Exception:
            return False

    def stats(self) -> Dict[str, int]:
        try:
            return self._bus.stats()
        except Exception:
            return {}

    def __len__(self) -> int:
        try:
            return self._bus.size()
        except Exception:
            return 0
