"""Shared test pool: cross-budget / cross-arm counterexample reuse.

Counterexamples and directed seed tests are semantic properties of the
*specification*, not of the resource budget that happened to discover
them: any input/output pair valid for the spec must be satisfied by every
correct implementation at every budget.  The budget search, however, used
to throw everything away between budgets — each counterexample had to be
re-discovered at every subsequent budget, and each re-discovery costs a
full SAT solve plus a product-equivalence verification (the two expensive
halves of a CEGIS round).

A :class:`TestPool` records every test discovered anywhere in a compile
exactly once (keyed by input bits, with the spec's expected
:class:`~repro.ir.simulator.ParseResult` memoized) and replays the pool
as *up-front constraints* into every subsequent budget's CEGIS run.
Because the extra constraints are valid for the spec, they can only prune
spec-inequivalent candidates: per-budget feasibility — and therefore the
minimal budget found — is semantically unchanged, while most of the
re-discovery round-trips disappear.

Pools are strictly per bit **layout**: counterexample inputs live in the
*synthesis* spec's bit positions, and Opt2/Opt6 scaling changes that
layout per portfolio arm.  Arms that share a prepared-spec layout (e.g.
the key-limit levels of §6.7.2, which differ only in device limits)
exchange tests mid-race through a :class:`TestChannel`, whose backing
list may be a ``multiprocessing`` manager proxy (process pool) or a plain
list (inline arms).  Entries are tagged with the layout fingerprint so an
arm only ever adopts tests that are meaningful in its own layout.

Determinism contract (crash-resume): the pool's *content and insertion
order* at the moment each budget's run starts is what that run's solver
sees.  ``repro.persist`` therefore records every pool entry in order plus
a per-budget ``pool_base`` (the pool size when the budget started), and a
resumed run reconstructs exactly that prefix — see
:meth:`TestPool.prefix` and ``CheckpointManager.record_pool_entry``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_OVERRUN, ParseResult, simulate_spec
from ..ir.spec import ParserSpec

ORIGIN_SEED = "seed"     # directed seed test (initial_tests)
ORIGIN_CEX = "cex"       # CEGIS counterexample (verifier)
ORIGIN_SHARED = "shared"  # adopted from a sibling arm via the channel


@dataclass
class PoolEntry:
    """One recorded test input with its memoized expectation."""

    bits: Bits
    origin: str
    # Memoized simulate_spec output and the step count it actually used
    # (len(result.path)).  A non-overrun result is valid at any step
    # bound >= that count; anything else is re-simulated on demand.
    result: Optional[ParseResult] = None
    steps: int = 0


@dataclass
class PoolStats:
    added: int = 0
    duplicates: int = 0
    seeds: int = 0
    counterexamples: int = 0
    shared_in: int = 0
    replayed: int = 0        # entries handed out as up-front constraints


class TestPool:
    """Insertion-ordered, deduplicated set of tests for one spec layout."""

    def __init__(self, spec: ParserSpec, layout_key: str = "") -> None:
        self.spec = spec
        self.layout_key = layout_key
        self._entries: Dict[Tuple[int, int], PoolEntry] = {}
        self.stats = PoolStats()
        # Invoked with each genuinely new entry — the checkpoint layer's
        # hook for making the pool durable in insertion order.
        self.on_add: Optional[Callable[[PoolEntry], None]] = None
        # Cursor into the cross-arm channel (entries before it were
        # already drained).
        self._channel_pos = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, bits: Bits) -> bool:
        return (bits.uint(), len(bits)) in self._entries

    def entries(self) -> List[PoolEntry]:
        return list(self._entries.values())

    def add(self, bits: Bits, origin: str = ORIGIN_CEX) -> bool:
        """Record a test input; returns True if it was new."""
        key = (bits.uint(), len(bits))
        if key in self._entries:
            self.stats.duplicates += 1
            return False
        entry = PoolEntry(bits, origin)
        self._entries[key] = entry
        self.stats.added += 1
        if origin == ORIGIN_SEED:
            self.stats.seeds += 1
        elif origin == ORIGIN_SHARED:
            self.stats.shared_in += 1
        else:
            self.stats.counterexamples += 1
        if self.on_add is not None:
            self.on_add(entry)
        return True

    # ------------------------------------------------------------------
    def prefix(self, size: Optional[int] = None) -> List[PoolEntry]:
        """The first ``size`` entries in insertion order (all if None)."""
        entries = list(self._entries.values())
        if size is None:
            return entries
        return entries[:size]

    def expected(
        self, entry: PoolEntry, max_steps: int
    ) -> Optional[ParseResult]:
        """The spec's output for ``entry`` under ``max_steps``, memoized.

        Returns None when the spec overruns the bound on this input (the
        entry is kept — a later budget with a larger unroll may still use
        it) — callers must skip such entries."""
        if (
            entry.result is not None
            and entry.result.outcome != OUTCOME_OVERRUN
            and entry.steps <= max_steps
        ):
            return entry.result
        result = simulate_spec(self.spec, entry.bits, max_steps)
        entry.result = result
        entry.steps = len(result.path)
        if result.outcome == OUTCOME_OVERRUN:
            return None
        return result

    def tests(
        self, max_steps: int, size: Optional[int] = None
    ) -> List[Tuple[Bits, ParseResult, str]]:
        """Replayable ``(bits, expected, origin)`` triples, in pool order,
        limited to the first ``size`` entries (the faithful-resume prefix)
        and to inputs the spec resolves within ``max_steps``."""
        out: List[Tuple[Bits, ParseResult, str]] = []
        for entry in self.prefix(size):
            expected = self.expected(entry, max_steps)
            if expected is None:
                continue
            out.append((entry.bits, expected, entry.origin))
        self.stats.replayed += len(out)
        return out

    def has_seeds(self, size: Optional[int] = None) -> bool:
        """Whether the (prefix of the) pool already carries seed tests —
        if so, a budget run can skip regenerating its own directed
        seeds and reuse the recorded ones."""
        return any(
            e.origin == ORIGIN_SEED for e in self.prefix(size)
        )

    # -- cross-arm exchange --------------------------------------------
    def drain(self, channel: Optional["TestChannel"]) -> int:
        """Adopt new channel entries published for this pool's layout.

        Returns how many genuinely new tests were adopted.  Never raises:
        a broken channel (dead manager process) simply stops supplying."""
        if channel is None or not self.layout_key:
            return 0
        self._channel_pos, items = channel.fetch(
            self.layout_key, self._channel_pos
        )
        adopted = 0
        for value, length in items:
            if self.add(Bits(value, length), ORIGIN_SHARED):
                adopted += 1
        return adopted

    def publish(
        self, channel: Optional["TestChannel"], bits: Bits
    ) -> None:
        if channel is None or not self.layout_key:
            return
        channel.publish(self.layout_key, bits)


class TestChannel:
    """Append-only cross-arm test exchange.

    ``backing`` is any list-like object supporting ``append`` and
    slicing: a plain list for inline (same-process) arms, or a
    ``multiprocessing.Manager().list()`` proxy for the process-pool
    portfolio (the proxy pickles into workers; every operation is a
    manager round-trip, so arms drain at budget granularity, not per
    iteration).  All operations are best-effort: a dead manager makes
    the channel silently inert rather than failing the compile.
    """

    def __init__(self, backing: Optional[Sequence] = None) -> None:
        self._list = backing if backing is not None else []

    def publish(self, layout_key: str, bits: Bits) -> None:
        try:
            self._list.append((layout_key, bits.uint(), len(bits)))
        except Exception:
            pass

    def fetch(
        self, layout_key: str, start: int
    ) -> Tuple[int, List[Tuple[int, int]]]:
        """Entries for ``layout_key`` appended at index >= ``start``;
        returns the new cursor plus the matching (value, length) pairs."""
        try:
            items = list(self._list[start:])
        except Exception:
            return start, []
        matched = [
            (value, length)
            for key, value, length in items
            if key == layout_key
        ]
        return start + len(items), matched

    def __len__(self) -> int:
        try:
            return len(self._list)
        except Exception:
            return 0
