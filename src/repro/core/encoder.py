"""Synthesis-phase encoding: symbolic program variables plus per-test
semantic constraints (φ_common ∧ φ_device of §5.1, specialized to one
concrete input bitstream).

The CEGIS synthesis phase has concrete inputs and a symbolic configuration.
For each test case we unroll the Figure 6 execution into a guarded
reachability DAG whose nodes are (step, state, cursor, extracted-values)
tuples; the guard of a node is a Boolean term over the configuration
variables.  Leaves whose output dictionary disagrees with the expected one
assert the negation of their guard.  Device constraints (stage ordering,
per-stage budgets, key-width fits) are structural constraints over the same
variables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..hw.impl import ACCEPT_SID, REJECT_SID, ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_ACCEPT, OUTCOME_REJECT, ParseResult
from ..ir.spec import FieldKey, LookaheadKey, ParserSpec
from ..resilience.injection import fault_point
from ..smt import (
    And,
    BitVec,
    BitVecVal,
    Bool,
    BvAnd,
    Eq,
    ExactlyOne,
    Extract,
    FALSE,
    If,
    Implies,
    Model,
    Not,
    Or,
    TRUE,
    Term,
)
from .skeleton import FREE_PATTERN, KeyCandidate, Skeleton

# Key evaluation outcomes at a DAG node.
_VALID = "valid"
_LA_SHORT = "lookahead_short"     # lookahead past end of input -> reject
_FORBIDDEN = "forbidden"          # references an unextracted field


class EncodingOverflow(Exception):
    """The execution DAG for a test grew past the configured cap."""


@dataclass(frozen=True)
class _NodeKey:
    step: int
    sid: int
    cursor: int
    od: Tuple[Tuple[str, int, int], ...]       # (od_key, value, width) sorted
    stacks: Tuple[Tuple[str, int], ...]        # (field, count) sorted


class SymbolicProgram:
    """All configuration variables for one skeleton, plus decode()."""

    def __init__(self, skeleton: Skeleton, tag: str = "") -> None:
        fault_point("encoder")
        self.skeleton = skeleton
        self.tag = tag
        sk = skeleton
        # Per state: one-hot key-candidate selection.
        self.key_sel: List[List[Term]] = [
            [Bool(f"k{tag}_s{st.sid}_c{ci}") for ci in range(len(st.candidates))]
            for st in sk.states
        ]
        # Per entry: "off" plus one-hot (state, candidate, pattern) selection.
        self.off: List[Term] = [
            Bool(f"off{tag}_e{e}") for e in range(sk.num_entries)
        ]
        self.entry_sel: List[Dict[Tuple[int, int, int], Term]] = []
        for e in range(sk.num_entries):
            sel: Dict[Tuple[int, int, int], Term] = {}
            for st in sk.states:
                for ci, pool in enumerate(st.patterns):
                    for pi in range(len(pool)):
                        sel[(st.sid, ci, pi)] = Bool(
                            f"sel{tag}_e{e}_s{st.sid}_c{ci}_p{pi}"
                        )
            self.entry_sel.append(sel)
        # Per entry: one-hot next-state selection over the union of targets
        # any possible owner admits (see Skeleton.allowed_next).
        self.allowed_next: Dict[int, List[int]] = sk.allowed_next()
        union_targets: List[int] = sorted(
            {t for targets in self.allowed_next.values() for t in targets}
        )
        self.next_ids: List[int] = union_targets
        self.next_sel: List[Dict[int, Term]] = [
            {t: Bool(f"nxt{tag}_e{e}_t{t}") for t in self.next_ids}
            for e in range(sk.num_entries)
        ]
        # Free symbolic patterns (Opt4 disabled).
        self._max_width = max(
            (c.width for st in sk.states for c in st.candidates), default=1
        )
        self._max_width = max(self._max_width, 1)
        self.free_value: List[Term] = []
        self.free_mask: List[Term] = []
        uses_free = any(
            pool == [FREE_PATTERN] or FREE_PATTERN in pool
            for st in sk.states
            for pool in st.patterns
        )
        if uses_free:
            self.free_value = [
                BitVec(f"fv{tag}_e{e}", self._max_width)
                for e in range(sk.num_entries)
            ]
            self.free_mask = [
                BitVec(f"fm{tag}_e{e}", self._max_width)
                for e in range(sk.num_entries)
            ]
        # Stage ordering via a unary (thermometer) encoding:
        # stage_ge[s][i] means stage(s) >= i+1; the chain
        # stage_ge[s][i] -> stage_ge[s][i-1] makes comparisons linear-size.
        self.use_stages = sk.device.is_pipelined or not sk.allow_loops
        self.stage_ge: List[List[Term]] = []
        if self.use_stages:
            if sk.device.is_pipelined:
                budget = sk.stage_budget
            else:
                # Loop-free arm: stages only enforce acyclicity, so the
                # unrolling depth bounds how many levels any chain needs.
                budget = min(sk.num_states, sk.unroll_steps)
            self.stage_budget = max(1, budget)
            self.stage_ge = [
                [
                    Bool(f"stg{tag}_s{st.sid}_ge{i + 1}")
                    for i in range(self.stage_budget - 1)
                ]
                for st in sk.states
            ]
        # Cached "entry e is owned by state s" terms.
        self._own_cache: Dict[Tuple[int, int], Term] = {}

    # ------------------------------------------------------------------
    def own_term(self, e: int, sid: int) -> Term:
        key = (e, sid)
        if key not in self._own_cache:
            sels = [
                var
                for (s, _ci, _pi), var in self.entry_sel[e].items()
                if s == sid
            ]
            self._own_cache[key] = Or(*sels) if sels else FALSE
        return self._own_cache[key]

    # ------------------------------------------------------------------
    def structural_constraints(self) -> List[Term]:
        sk = self.skeleton
        out: List[Term] = []
        for st in sk.states:
            out.append(ExactlyOne(self.key_sel[st.sid]))
        for e in range(sk.num_entries):
            choices = [self.off[e]] + list(self.entry_sel[e].values())
            out.append(ExactlyOne(choices))
            out.append(ExactlyOne(list(self.next_sel[e].values())))
            # Selecting a (state, candidate, pattern) commits the state to
            # that key candidate.
            for (sid, ci, _pi), var in self.entry_sel[e].items():
                out.append(Implies(var, self.key_sel[sid][ci]))
            # Owner-dependent next-state domain restriction.
            for st in sk.states:
                own = self.own_term(e, st.sid)
                if own is FALSE:
                    continue
                allowed = set(self.allowed_next[st.sid])
                for t, nxt in self.next_sel[e].items():
                    if t not in allowed:
                        out.append(Or(Not(own), Not(nxt)))
        # Symmetry breaking: off entries sink to the high indices, and
        # entry owners are non-decreasing in the state id — the relative
        # order of entries only matters within one state, so sorting owners
        # removes an E!-sized permutation symmetry.
        for e in range(1, sk.num_entries):
            out.append(Implies(self.off[e - 1], self.off[e]))
        for e in range(sk.num_entries - 1):
            for st in sk.states:
                own = self.own_term(e, st.sid)
                if own is FALSE:
                    continue
                for st2 in sk.states:
                    if st2.sid >= st.sid:
                        continue
                    own2 = self.own_term(e + 1, st2.sid)
                    if own2 is FALSE:
                        continue
                    out.append(Or(Not(own), Not(own2)))
        out.extend(self._coverage_constraints())
        if self.use_stages:
            out.extend(self._stage_constraints())
        return out

    def _coverage_constraints(self) -> List[Term]:
        """Implied constraints that sharpen propagation: every distinct
        non-reject destination of an accept-path spec state must be the
        target of at least one entry owned by that state's family (the
        same argument as the entry lower bound, stated clausally)."""
        from ..ir.spec import ACCEPT as SPEC_ACCEPT
        from ..ir.spec import REJECT as SPEC_REJECT
        from .skeleton import accept_path_states

        sk = self.skeleton
        out: List[Term] = []
        on_path = accept_path_states(sk.spec)
        name_to_sid = {s.name: s.sid for s in sk.states if not s.is_aux}
        for st in sk.states:
            if st.is_aux or st.name not in on_path:
                continue
            family = [
                m.sid for m in sk.states if m.unit_sid == st.sid
            ]
            spec_state = sk.spec.states[st.name]
            dests = set()
            for rule in spec_state.rules:
                if rule.next_state == SPEC_REJECT:
                    continue
                if rule.next_state == SPEC_ACCEPT:
                    dests.add(ACCEPT_SID)
                else:
                    dests.add(name_to_sid[rule.next_state])
            for d in dests:
                witnesses = []
                for e in range(sk.num_entries):
                    nxt = self.next_sel[e].get(d)
                    if nxt is None:
                        continue
                    for m in family:
                        own = self.own_term(e, m)
                        if own is not FALSE:
                            witnesses.append(And(own, nxt))
                if witnesses:
                    out.append(Or(*witnesses))
        return out

    def _stage_gt(self, t: int, s: int) -> Term:
        """stage(t) > stage(s) in the thermometer encoding."""
        if self.stage_budget <= 1:
            return FALSE
        disjuncts = [
            And(self.stage_ge[t][i], Not(self.stage_ge[s][i]))
            for i in range(self.stage_budget - 1)
        ]
        return Or(*disjuncts)

    def _stage_constraints(self) -> List[Term]:
        sk = self.skeleton
        out: List[Term] = []
        for st in sk.states:
            ge = self.stage_ge[st.sid]
            for i in range(1, len(ge)):
                out.append(Implies(ge[i], ge[i - 1]))
        # Start state sits in stage 0.
        if self.stage_ge and self.stage_ge[sk.start_sid]:
            out.append(Not(self.stage_ge[sk.start_sid][0]))
        # Forward motion: entry owned by s targeting state t needs
        # stage(t) > stage(s).
        for e in range(sk.num_entries):
            for st in sk.states:
                own = self.own_term(e, st.sid)
                if own is FALSE:
                    continue
                for t_sid, nxt in self.next_sel[e].items():
                    if t_sid < 0 or t_sid not in set(
                        self.allowed_next[st.sid]
                    ):
                        continue
                    out.append(
                        Implies(And(own, nxt), self._stage_gt(t_sid, st.sid))
                    )
        # Per-stage entry budget (skip when trivially satisfied).
        if (
            sk.device.is_pipelined
            and sk.device.tcam_per_stage
            and sk.num_entries > sk.device.tcam_limit
        ):
            from ..smt import PopCountAtMost

            for i in range(self.stage_budget):
                at_stage = []
                for e in range(sk.num_entries):
                    owners = []
                    for st in sk.states:
                        own = self.own_term(e, st.sid)
                        if own is FALSE:
                            continue
                        owners.append(And(own, self._stage_eq(st.sid, i)))
                    at_stage.append(Or(*owners) if owners else FALSE)
                out.append(PopCountAtMost(at_stage, sk.device.tcam_limit))
        return out

    def _stage_eq(self, sid: int, i: int) -> Term:
        ge = self.stage_ge[sid]
        at_least = ge[i - 1] if i >= 1 else TRUE
        below = Not(ge[i]) if i < len(ge) else TRUE
        return And(at_least, below)

    # ------------------------------------------------------------------
    # Per-test semantic constraints
    # ------------------------------------------------------------------
    def encode_test(
        self,
        bits: Bits,
        expected: ParseResult,
        max_nodes: int = 4000,
    ) -> List[Term]:
        """Constraints forcing the configuration to reproduce ``expected``
        on input ``bits``."""
        sk = self.skeleton
        spec = sk.spec
        constraints: List[Term] = []
        if expected.outcome not in (OUTCOME_ACCEPT, OUTCOME_REJECT):
            raise ValueError(
                f"test expectation must be accept/reject, got {expected.outcome}"
            )

        root = _NodeKey(0, sk.start_sid, 0, (), ())
        guards: Dict[_NodeKey, List[Term]] = {root: [TRUE]}
        ordered: List[_NodeKey] = [root]
        seen = {root}
        idx = 0
        while idx < len(ordered):
            node = ordered[idx]
            idx += 1
            if len(ordered) > max_nodes:
                raise EncodingOverflow(
                    f"execution DAG exceeded {max_nodes} nodes"
                )
            guard = Or(*guards[node]) if len(guards[node]) > 1 else guards[node][0]
            if guard is FALSE:
                continue
            if node.step >= sk.unroll_steps:
                # Overrun: never acceptable.
                constraints.append(Not(guard))
                continue
            st = sk.states[node.sid]
            od = dict((k, (v, w)) for k, v, w in node.od)
            stacks = dict(node.stacks)
            cursor = node.cursor
            # --- extraction ---
            ok = True
            for fname in st.extracts:
                fdef = spec.fields[fname]
                if fdef.is_varbit:
                    src = fdef.length_field
                    if src is None or src not in od:
                        ok = False
                        break
                    width = od[src][0] * fdef.length_multiplier
                    if width > fdef.width:
                        ok = False
                        break
                else:
                    width = fdef.width
                if cursor + width > len(bits):
                    ok = False
                    break
                if fdef.is_stack:
                    count = stacks.get(fname, 0)
                    if count >= fdef.stack_depth:
                        ok = False
                        break
                    stacks[fname] = count + 1
                    od_key = fdef.instance_key(count)
                else:
                    od_key = fname
                od[od_key] = (
                    bits.slice(cursor, width).uint() if width else 0,
                    width,
                )
                cursor += width
            if not ok:
                # Packet-dependent reject during extraction.
                self._leaf(constraints, guard, OUTCOME_REJECT, od, expected)
                continue
            # --- key evaluation per candidate ---
            cand_status: List[Tuple[str, Optional[int]]] = []
            for cand in st.candidates:
                cand_status.append(
                    _eval_candidate(cand, od, stacks, bits, cursor, spec)
                )
            # Forbidden candidates cannot be chosen on a reachable path.
            la_short_guards: List[Term] = []
            for ci, (status, _value) in enumerate(cand_status):
                sel = self.key_sel[st.sid][ci]
                if status == _FORBIDDEN:
                    constraints.append(Not(And(guard, sel)))
                elif status == _LA_SHORT:
                    la_short_guards.append(sel)
            if la_short_guards:
                self._leaf(
                    constraints,
                    And(guard, Or(*la_short_guards)),
                    OUTCOME_REJECT,
                    od,
                    expected,
                )
            # --- entry matching (first match wins) ---
            active: List[Term] = []
            for e in range(sk.num_entries):
                act = self._activation(e, st, cand_status)
                active.append(act)
            valid_key = Or(
                *[
                    self.key_sel[st.sid][ci]
                    for ci, (status, _v) in enumerate(cand_status)
                    if status == _VALID
                ]
            )
            not_earlier: Term = TRUE
            od_tuple = tuple(
                sorted((k, v, w) for k, (v, w) in od.items())
            )
            stacks_tuple = tuple(sorted(stacks.items()))
            allowed_here = set(self.allowed_next[st.sid])
            for e in range(sk.num_entries):
                fire = And(guard, valid_key, active[e], not_earlier)
                if fire is not FALSE:
                    for t_sid, nxt in self.next_sel[e].items():
                        if t_sid not in allowed_here:
                            continue
                        edge = And(fire, nxt)
                        if edge is FALSE:
                            continue
                        if t_sid == ACCEPT_SID:
                            self._leaf(
                                constraints, edge, OUTCOME_ACCEPT, od, expected
                            )
                        elif t_sid == REJECT_SID:
                            self._leaf(
                                constraints, edge, OUTCOME_REJECT, od, expected
                            )
                        else:
                            child = _NodeKey(
                                node.step + 1,
                                t_sid,
                                cursor,
                                od_tuple,
                                stacks_tuple,
                            )
                            if child not in seen:
                                seen.add(child)
                                guards[child] = []
                                ordered.append(child)
                            guards[child].append(edge)
                not_earlier = And(not_earlier, Not(active[e]))
            # No entry matched -> reject.
            no_match = And(guard, valid_key, not_earlier)
            self._leaf(constraints, no_match, OUTCOME_REJECT, od, expected)
        return constraints

    def _activation(
        self,
        e: int,
        st,
        cand_status: List[Tuple[str, Optional[int]]],
    ) -> Term:
        """Bool term: entry e is on, owned by st, and its pattern matches the
        key value of st's selected candidate at this node."""
        disjuncts: List[Term] = []
        for ci, (status, value) in enumerate(cand_status):
            if status != _VALID:
                continue
            pool = st.patterns[ci]
            cand = st.candidates[ci]
            for pi, pat in enumerate(pool):
                sel = self.entry_sel[e].get((st.sid, ci, pi))
                if sel is None:
                    continue
                if pat == FREE_PATTERN:
                    disjuncts.append(
                        And(sel, self._free_match(e, cand, value))
                    )
                else:
                    assert isinstance(pat, TernaryPattern)
                    if pat.matches(value):
                        disjuncts.append(sel)
        return Or(*disjuncts) if disjuncts else FALSE

    def _free_match(self, e: int, cand: KeyCandidate, value: int) -> Term:
        width = max(1, cand.width)
        v = self.free_value[e]
        m = self.free_mask[e]
        if width < self._max_width:
            v = Extract(width - 1, 0, v)
            m = Extract(width - 1, 0, m)
        kv = BitVecVal(value & ((1 << width) - 1), width)
        return Eq(BvAnd(kv, m), BvAnd(v, m))

    def _leaf(
        self,
        constraints: List[Term],
        guard: Term,
        outcome: str,
        od: Dict[str, Tuple[int, int]],
        expected: ParseResult,
    ) -> None:
        if guard is FALSE:
            return
        if outcome != expected.outcome:
            constraints.append(Not(guard))
            return
        if outcome == OUTCOME_ACCEPT:
            got = {k: v for k, (v, _w) in od.items()}
            got_widths = {k: w for k, (_v, w) in od.items()}
            if got != expected.od or got_widths != expected.od_widths:
                constraints.append(Not(guard))
        # Matching reject (or matching accept output): no constraint.

    # ------------------------------------------------------------------
    # Decoding a model into a concrete TcamProgram
    # ------------------------------------------------------------------
    def decode(self, model: Model) -> TcamProgram:
        sk = self.skeleton
        states: List[ImplState] = []
        chosen_cand: List[KeyCandidate] = []
        for st in sk.states:
            ci = next(
                (
                    i
                    for i, var in enumerate(self.key_sel[st.sid])
                    if model[var]
                ),
                0,
            )
            cand = st.candidates[ci]
            chosen_cand.append(cand)
            stage = 0
            if self.use_stages and sk.device.is_pipelined:
                for var in self.stage_ge[st.sid]:
                    if model[var]:
                        stage += 1
                    else:
                        break
            states.append(
                ImplState(st.sid, st.name, st.extracts, cand.parts, stage)
            )
        entries: List[ImplEntry] = []
        for e in range(sk.num_entries):
            if model[self.off[e]]:
                continue
            triple = next(
                (
                    key
                    for key, var in self.entry_sel[e].items()
                    if model[var]
                ),
                None,
            )
            if triple is None:
                continue
            sid, ci, pi = triple
            pool = sk.states[sid].patterns[ci]
            cand = sk.states[sid].candidates[ci]
            pat = pool[pi]
            if pat == FREE_PATTERN:
                width = max(1, cand.width)
                mask = model[self.free_mask[e]] & ((1 << width) - 1)
                value = model[self.free_value[e]] & mask
                if cand.width == 0:
                    pattern = TernaryPattern(0, 0, 0)
                else:
                    pattern = TernaryPattern(value, mask, cand.width)
            else:
                pattern = pat
            next_sid = next(
                t for t, var in self.next_sel[e].items() if model[var]
            )
            entries.append(ImplEntry(sid, pattern, next_sid))
        return TcamProgram(
            fields=dict(sk.spec.fields),
            states=states,
            entries=entries,
            start_sid=sk.start_sid,
            source_name=sk.spec.name,
        )


def _eval_candidate(
    cand: KeyCandidate,
    od: Dict[str, Tuple[int, int]],
    stacks: Dict[str, int],
    bits: Bits,
    cursor: int,
    spec: ParserSpec,
) -> Tuple[str, Optional[int]]:
    """Evaluate a key candidate at a concrete DAG node."""
    value = 0
    for part in cand.parts:
        if isinstance(part, FieldKey):
            fdef = spec.fields[part.field]
            if fdef.is_stack:
                count = stacks.get(part.field, 0)
                if count == 0:
                    return (_FORBIDDEN, None)
                od_key = fdef.instance_key(count - 1)
            else:
                od_key = part.field
            if od_key not in od:
                return (_FORBIDDEN, None)
            fv = od[od_key][0]
            piece = (fv >> part.lo) & ((1 << part.width) - 1)
        else:
            assert isinstance(part, LookaheadKey)
            start = cursor + part.offset
            if start + part.width > len(bits):
                return (_LA_SHORT, None)
            piece = bits.slice(start, part.width).uint()
        value = (value << part.width) | piece
    return (_VALID, value)
