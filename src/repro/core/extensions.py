"""Extensions beyond the paper's core system.

``factor_common_suffixes`` implements the paper's first future-work item
(§8, Figure 23): co-optimizing the packet-format definition with the
parser.  When several states extract layout-identical field suffixes and
then make the *same* transition decision over them, the suffix can be
hoisted into a shared "common" header parsed by one shared state — every
factored state then needs no TCAM entries of its own beyond a default
hop, and the shared state's entries are paid for once instead of once per
original state.

Unlike the R1-R5 rewrites this transform REDEFINES the packet format: the
factored fields get new names (``common.fN``), so the output dictionary
schema changes.  That is exactly why no existing compiler can apply it
silently (§8: "Neither ParserHawk nor other existing compilers can do
so") — it needs the downstream pipeline to agree to the new field names.
The function therefore returns the renaming map alongside the new spec,
and ``equivalent_modulo_renaming`` checks behavioural equivalence under
that map.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_ACCEPT, simulate_spec, spec_input_bound
from ..ir.spec import (
    Field,
    FieldKey,
    LookaheadKey,
    ParserSpec,
    Rule,
    SpecState,
)


@dataclass
class FactoredSpec:
    """Result of the Figure 23 transform."""

    spec: ParserSpec
    # old qualified field name -> new qualified field name, per source state
    # (the same common field stands in for different originals depending on
    # which state extracted it, so the map is keyed by (state, old_name)).
    renames: Dict[Tuple[str, str], str] = dc_field(default_factory=dict)
    factored_groups: List[List[str]] = dc_field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.factored_groups)


def _suffix_signature(
    spec: ParserSpec, state: SpecState
) -> Optional[Tuple]:
    """The factoring signature of a state: the widths of its trailing
    key-relevant fields, the key shape over them, and the rule list.

    Only the Figure 23 shape is recognized: the state's key references
    exactly the LAST extracted field (full or sliced), that field is a
    plain fixed-width scalar, and the rules are position-closed."""
    if state.is_unconditional or not state.extracts:
        return None
    last = state.extracts[-1]
    fdef = spec.fields[last]
    if fdef.is_varbit or fdef.is_stack:
        return None
    for part in state.key:
        if isinstance(part, LookaheadKey):
            return None
        assert isinstance(part, FieldKey)
        if part.field != last:
            return None
    key_shape = tuple((p.hi, p.lo) for p in state.key)  # type: ignore[union-attr]
    rules = tuple(
        (rule.patterns, rule.next_state) for rule in state.rules
    )
    return (fdef.width, key_shape, rules)


def factor_common_suffixes(
    spec: ParserSpec, min_group: int = 2
) -> FactoredSpec:
    """Apply the Figure 23 refactoring wherever it helps."""
    groups: Dict[Tuple, List[str]] = {}
    for name in spec.state_order:
        state = spec.states.get(name)
        if state is None:
            continue
        signature = _suffix_signature(spec, state)
        if signature is not None:
            groups.setdefault(signature, []).append(name)

    out = FactoredSpec(spec)
    states = dict(spec.states)
    fields = dict(spec.fields)
    order = list(spec.state_order)
    counter = 0
    changed = False
    for signature, members in groups.items():
        if len(members) < min_group:
            continue
        # Destinations must not point back into the group (the shared
        # state cannot distinguish which original it came from).
        width, key_shape, rules = signature
        dests = {dest for _p, dest in rules}
        if dests & set(members):
            continue
        changed = True
        counter += 1
        common_field = f"common{counter}.f0"
        fields[common_field] = Field(common_field, width)
        common_name = f"common{counter}"
        while common_name in states:
            common_name += "_"
        common_key = tuple(
            FieldKey(common_field, hi, lo) for hi, lo in key_shape
        )
        states[common_name] = SpecState(
            common_name,
            (common_field,),
            common_key,
            tuple(Rule(patterns, dest) for patterns, dest in rules),
        )
        order.append(common_name)
        for member in members:
            state = states[member]
            old_field = state.extracts[-1]
            out.renames[(member, old_field)] = common_field
            states[member] = SpecState(
                member,
                tuple(state.extracts[:-1]),
                (),
                (Rule((), common_name),),
            )
        out.factored_groups.append(list(members))
    if not changed:
        return out
    out.spec = ParserSpec(spec.name, fields, states, spec.start, order)
    return out


def equivalent_modulo_renaming(
    original: ParserSpec,
    factored: FactoredSpec,
    samples: int = 300,
    seed: int = 0,
    max_steps: int = 64,
) -> bool:
    """Differential check: the factored spec behaves like the original
    once the common fields are renamed back per the executed path."""
    rng = random.Random(seed)
    bound = max(8, spec_input_bound(original, max_steps))
    for i in range(samples):
        length = rng.randint(0, bound) if i else bound
        bits = Bits(rng.getrandbits(length) if length else 0, length)
        a = simulate_spec(original, bits, max_steps)
        b = simulate_spec(factored.spec, bits, max_steps)
        if a.outcome != b.outcome:
            return False
        if a.outcome != OUTCOME_ACCEPT:
            continue
        # Rename b's common fields back using the path taken.
        renamed = dict(b.od)
        renamed_widths = dict(b.od_widths)
        for (state_name, old_field), new_field in factored.renames.items():
            if state_name in b.path and new_field in renamed:
                renamed[old_field] = renamed.pop(new_field)
                renamed_widths[old_field] = renamed_widths.pop(new_field)
        if renamed != a.od or renamed_widths != a.od_widths:
            return False
    return True
