"""Verification phase: exact equivalence check between a concrete candidate
implementation and the specification (§5.2's verification step).

Both machines are concrete here; only the input bitstream is symbolic.  We
run a product symbolic execution: each joint configuration carries both
machines' states, cursors and extraction logs plus a path condition — a CNF
over *absolute input bit positions* recording which ternary key tests
matched or missed so far.  Branching at a configuration enumerates the
satisfiable (spec-rule, impl-entry) first-match pairs, discharging each
feasibility query with the CDCL solver (the queries are tiny: one variable
per distinct input bit touched so far).

At a joint leaf:

* differing outcomes                          -> counterexample;
* both accept but a field was extracted from
  different input positions with a consistent
  way to make the slices differ               -> counterexample;
* both accept with different input extents    -> truncation counterexample
  (the shorter side still accepts at length L, the longer side rejects);
* otherwise the leaf is equivalent.

This is sound and complete for the bounded unrolling depth: every control
path of either machine corresponds to some branch, and every remaining
input freedom is checked for observable differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hw.impl import ACCEPT_SID, REJECT_SID, TcamProgram
from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_ACCEPT, OUTCOME_REJECT
from ..ir.spec import (
    ACCEPT,
    REJECT,
    FieldKey,
    LookaheadKey,
    ParserSpec,
    Rule,
)
from ..obs import get_tracer
from ..smt.sat import SatSolver, lit

_DONE_ACCEPT = "#accept"
_DONE_REJECT = "#reject"


class VerificationBudgetExceeded(Exception):
    """The product execution grew past its configured bounds."""


@dataclass
class _Machine:
    """One side of the product: location plus extraction bookkeeping."""

    location: str | int            # state name (spec) / sid (impl) / _DONE_*
    cursor: int
    od_pos: Dict[str, Tuple[int, int]] = dc_field(default_factory=dict)
    stacks: Dict[str, int] = dc_field(default_factory=dict)
    extent: int = 0
    steps: int = 0

    def clone(self) -> "_Machine":
        m = _Machine(self.location, self.cursor, dict(self.od_pos),
                     dict(self.stacks), self.extent, self.steps)
        return m

    @property
    def done(self) -> bool:
        return self.location in (_DONE_ACCEPT, _DONE_REJECT)

    @property
    def outcome(self) -> str:
        return OUTCOME_ACCEPT if self.location == _DONE_ACCEPT else OUTCOME_REJECT


class _Path:
    """CNF over absolute input bit positions + fixed assignments."""

    def __init__(self) -> None:
        self.clauses: List[List[Tuple[int, bool]]] = []  # (pos, is_one)
        self.units: Dict[int, bool] = {}

    def clone(self) -> "_Path":
        p = _Path()
        p.clauses = list(self.clauses)
        p.units = dict(self.units)
        return p

    def add_unit(self, pos: int, value: bool) -> bool:
        """Returns False when inconsistent with existing units."""
        if pos in self.units:
            return self.units[pos] == value
        self.units[pos] = value
        return True

    def add_clause(self, literals: List[Tuple[int, bool]]) -> None:
        self.clauses.append(literals)

    def solve(
        self, extra_clauses: Sequence[List[Tuple[int, bool]]] = ()
    ) -> Optional[Dict[int, bool]]:
        """A model over mentioned positions, or None when unsatisfiable."""
        positions: Set[int] = set(self.units)
        for clause in self.clauses:
            positions.update(p for p, _v in clause)
        for clause in extra_clauses:
            positions.update(p for p, _v in clause)
        index = {p: i for i, p in enumerate(sorted(positions))}
        solver = SatSolver()
        solver.ensure_vars(len(index))
        for pos, value in self.units.items():
            solver.add_clause([lit(index[pos], value)])
        for clause in list(self.clauses) + list(extra_clauses):
            solver.add_clause([lit(index[p], v) for p, v in clause])
        result = solver.solve()
        if not result:
            return None
        model = solver.model()
        return {p: model[i] for p, i in index.items()}


@dataclass
class Counterexample:
    bits: Bits
    reason: str


# ---------------------------------------------------------------------------


class ProductVerifier:
    """Equivalence checker for (spec, TcamProgram) pairs."""

    def __init__(
        self,
        spec: ParserSpec,
        program: TcamProgram,
        max_steps: int = 64,
        max_configs: int = 60000,
    ) -> None:
        self.spec = spec
        self.program = program
        self.max_steps = max_steps
        self.max_configs = max_configs
        self._configs = 0

    # -- public ----------------------------------------------------------
    def find_counterexample(self) -> Optional[Counterexample]:
        spec_m = _Machine(self.spec.start, 0)
        impl_m = _Machine(self.program.start_sid, 0)
        self._configs = 0
        tracer = get_tracer()
        try:
            cex = self._explore(spec_m, impl_m, _Path())
        finally:
            # Reported once per verification, not per configuration, so the
            # product-execution hot loop stays tracer-free.
            if tracer.enabled:
                tracer.count("verify.runs")
                tracer.count("verify.configs", self._configs)
        if cex is not None and tracer.enabled:
            tracer.count("verify.counterexamples")
        return cex

    # -- core ------------------------------------------------------------
    def _explore(
        self, spec_m: _Machine, impl_m: _Machine, path: _Path
    ) -> Optional[Counterexample]:
        self._configs += 1
        if self._configs > self.max_configs:
            raise VerificationBudgetExceeded(
                f"more than {self.max_configs} product configurations"
            )
        if spec_m.done and impl_m.done:
            return self._check_leaf(spec_m, impl_m, path)
        if spec_m.steps > self.max_steps or impl_m.steps > self.max_steps:
            # Non-termination of the candidate (or unrolling too small):
            # treat as a mismatch to force terminating implementations.
            return self._materialize(
                path, spec_m, impl_m, "execution exceeded step bound"
            )
        # Step the machine that is not done; prefer the one that is behind.
        if spec_m.done or (not impl_m.done and impl_m.steps <= spec_m.steps):
            return self._step_impl(spec_m, impl_m, path)
        return self._step_spec(spec_m, impl_m, path)

    # -- spec stepping -----------------------------------------------------
    def _step_spec(
        self, spec_m: _Machine, impl_m: _Machine, path: _Path
    ) -> Optional[Counterexample]:
        state = self.spec.states[spec_m.location]
        for branch_m, branch_path, ok in self._extract_branches(
            spec_m, path, state.extracts, self.spec
        ):
            branch_m.steps += 1
            if not ok:
                branch_m.location = _DONE_REJECT
                cex = self._explore(branch_m, impl_m.clone(), branch_path)
                if cex:
                    return cex
                continue
            if state.is_unconditional:
                dest = state.rules[0].next_state
                branch_m.location = _map_dest(dest)
                cex = self._explore(branch_m, impl_m.clone(), branch_path)
                if cex:
                    return cex
                continue
            positions = self._key_positions_spec(branch_m, state)
            if positions is None:
                branch_m.location = _DONE_REJECT  # lookahead past end: N/A here
                cex = self._explore(branch_m, impl_m.clone(), branch_path)
                if cex:
                    return cex
                continue
            branch_m.extent = max(
                branch_m.extent, max(positions) + 1 if positions else 0
            )
            widths = [k.width for k in state.key]
            folded = [r.combined_value_mask(widths) for r in state.rules]
            dests = [r.next_state for r in state.rules] + [REJECT]
            total = sum(widths)
            cex = self._branch_matches(
                positions,
                total,
                folded,
                dests,
                branch_path,
                lambda dest, new_path: self._after_spec_transition(
                    branch_m, impl_m, dest, new_path
                ),
            )
            if cex:
                return cex
        return None

    def _after_spec_transition(
        self, spec_m: _Machine, impl_m: _Machine, dest: str, path: _Path
    ) -> Optional[Counterexample]:
        m = spec_m.clone()
        m.location = _map_dest(dest)
        return self._explore(m, impl_m.clone(), path)

    # -- impl stepping ------------------------------------------------------
    def _step_impl(
        self, spec_m: _Machine, impl_m: _Machine, path: _Path
    ) -> Optional[Counterexample]:
        state = self.program.state(impl_m.location)
        for branch_m, branch_path, ok in self._extract_branches(
            impl_m, path, state.extracts, self.program
        ):
            branch_m.steps += 1
            if not ok:
                branch_m.location = _DONE_REJECT
                cex = self._explore(spec_m.clone(), branch_m, branch_path)
                if cex:
                    return cex
                continue
            positions = self._key_positions_impl(branch_m, state)
            if positions == "short":
                branch_m.location = _DONE_REJECT
                cex = self._explore(spec_m.clone(), branch_m, branch_path)
                if cex:
                    return cex
                continue
            if positions is None:
                # Key over an unextracted field: malformed candidate.
                return self._materialize(
                    branch_path,
                    spec_m,
                    branch_m,
                    f"impl state {state.name} keys on unextracted field",
                )
            branch_m.extent = max(
                branch_m.extent, max(positions) + 1 if positions else 0
            )
            entries = self.program.entries_of(state.sid)
            folded = [(e.pattern.value, e.pattern.mask) for e in entries]
            dests = [e.next_sid for e in entries] + [REJECT_SID]
            cex = self._branch_matches(
                positions,
                state.key_width,
                folded,
                dests,
                branch_path,
                lambda dest, new_path: self._after_impl_transition(
                    spec_m, branch_m, dest, new_path
                ),
            )
            if cex:
                return cex
        return None

    def _after_impl_transition(
        self, spec_m: _Machine, impl_m: _Machine, dest: int, path: _Path
    ) -> Optional[Counterexample]:
        m = impl_m.clone()
        if dest == ACCEPT_SID:
            m.location = _DONE_ACCEPT
        elif dest == REJECT_SID:
            m.location = _DONE_REJECT
        else:
            m.location = dest
        return self._explore(spec_m.clone(), m, path)

    # -- shared helpers ------------------------------------------------------
    def _extract_branches(self, machine: _Machine, path: _Path, extracts, holder):
        """Yield (machine', path', ok) branches for a state's extraction.

        Varbit fields branch over every possible length value (their length
        field's bits become path constraints); fixed fields are direct.
        ``ok=False`` marks stack-overflow / oversize rejects.  Input-too-
        short rejects are handled by the truncation rule at leaves, so
        extraction itself always "succeeds" positionally here.
        """
        fields = holder.fields
        branches = [(machine.clone(), path.clone(), True)]
        for fname in extracts:
            fdef = fields[fname]
            new_branches = []
            for m, p, ok in branches:
                if not ok:
                    new_branches.append((m, p, ok))
                    continue
                if fdef.is_varbit:
                    src = fdef.length_field
                    if src is None or src not in m.od_pos:
                        new_branches.append((m, p, False))
                        continue
                    src_pos, src_width = m.od_pos[src]
                    for length in range(1 << src_width):
                        width = length * fdef.length_multiplier
                        bm = m.clone()
                        bp = p.clone()
                        feasible = True
                        for b in range(src_width):
                            bitpos = src_pos + b
                            bitval = bool((length >> (src_width - 1 - b)) & 1)
                            if not bp.add_unit(bitpos, bitval):
                                feasible = False
                                break
                        if not feasible or bp.solve() is None:
                            continue
                        if width > fdef.width:
                            new_branches.append((bm, bp, False))
                            continue
                        self._do_extract(bm, fname, fdef, width)
                        new_branches.append((bm, bp, True))
                    continue
                width = fdef.width
                if fdef.is_stack:
                    count = m.stacks.get(fname, 0)
                    if count >= fdef.stack_depth:
                        new_branches.append((m, p, False))
                        continue
                self._do_extract(m, fname, fdef, width)
                new_branches.append((m, p, True))
            branches = new_branches
        return branches

    @staticmethod
    def _do_extract(m: _Machine, fname: str, fdef, width: int) -> None:
        if fdef.is_stack:
            count = m.stacks.get(fname, 0)
            m.stacks[fname] = count + 1
            od_key = fdef.instance_key(count)
        else:
            od_key = fname
        m.od_pos[od_key] = (m.cursor, width)
        m.cursor += width
        m.extent = max(m.extent, m.cursor)

    def _key_positions_spec(self, m: _Machine, state) -> Optional[List[int]]:
        return self._key_positions(m, state.key, self.spec.fields)

    def _key_positions_impl(self, m: _Machine, state):
        out = self._key_positions(m, state.key, self.program.fields)
        return out

    def _key_positions(self, m: _Machine, key, fields):
        """Absolute input positions of each key bit, MSB first."""
        positions: List[int] = []
        for part in key:
            if isinstance(part, FieldKey):
                fdef = fields[part.field]
                if fdef.is_stack:
                    count = m.stacks.get(part.field, 0)
                    if count == 0:
                        return None
                    od_key = fdef.instance_key(count - 1)
                else:
                    od_key = part.field
                if od_key not in m.od_pos:
                    return None
                pos, width = m.od_pos[od_key]
                if part.hi >= width:
                    return None
                for b in range(part.hi, part.lo - 1, -1):
                    positions.append(pos + (width - 1 - b))
            else:
                assert isinstance(part, LookaheadKey)
                start = m.cursor + part.offset
                positions.extend(range(start, start + part.width))
        return positions

    def _branch_matches(
        self,
        positions: List[int],
        key_width: int,
        folded: List[Tuple[int, int]],
        dests: List,
        path: _Path,
        cont,
    ) -> Optional[Counterexample]:
        """Branch over which rule/entry matches first (last dest = no-match).

        ``positions[j]`` is the input bit for key bit index j (MSB first);
        pattern bit (key_width-1-j) corresponds to it."""

        def match_literals(value: int, mask: int) -> Optional[List[Tuple[int, bool]]]:
            lits = []
            for j, pos in enumerate(positions):
                bit = key_width - 1 - j
                if (mask >> bit) & 1:
                    lits.append((pos, bool((value >> bit) & 1)))
            return lits

        for idx in range(len(folded) + 1):
            branch_path = path.clone()
            feasible = True
            # Earlier rules must miss.
            for k in range(min(idx, len(folded))):
                miss = [
                    (pos, not v) for pos, v in match_literals(*folded[k])
                ]
                if not miss:
                    feasible = False  # earlier catch-all: cannot be missed
                    break
                branch_path.add_clause(miss)
            if not feasible:
                continue
            if idx < len(folded):
                ok = True
                for pos, v in match_literals(*folded[idx]):
                    if not branch_path.add_unit(pos, v):
                        ok = False
                        break
                if not ok:
                    continue
            if branch_path.solve() is None:
                continue
            cex = cont(dests[idx], branch_path)
            if cex:
                return cex
        return None

    # -- leaves ----------------------------------------------------------
    def _check_leaf(
        self, spec_m: _Machine, impl_m: _Machine, path: _Path
    ) -> Optional[Counterexample]:
        if spec_m.outcome != impl_m.outcome:
            return self._materialize(
                path,
                spec_m,
                impl_m,
                f"outcome mismatch: spec {spec_m.outcome} vs impl "
                f"{impl_m.outcome}",
            )
        if spec_m.outcome != OUTCOME_ACCEPT:
            return None
        if set(spec_m.od_pos) != set(impl_m.od_pos):
            missing = set(spec_m.od_pos) ^ set(impl_m.od_pos)
            return self._materialize(
                path, spec_m, impl_m, f"extracted-field sets differ: {missing}"
            )
        for od_key, (spos, swidth) in spec_m.od_pos.items():
            ipos, iwidth = impl_m.od_pos[od_key]
            if swidth != iwidth:
                return self._materialize(
                    path,
                    spec_m,
                    impl_m,
                    f"field {od_key} width {swidth} vs {iwidth}",
                )
            if spos == ipos:
                continue
            for k in range(swidth):
                a, b = spos + k, ipos + k
                if a == b:
                    continue
                for va in (False, True):
                    probe = [
                        [(a, va)],
                        [(b, not va)],
                    ]
                    model = path.solve(extra_clauses=probe)
                    if model is not None:
                        return self._materialize(
                            path,
                            spec_m,
                            impl_m,
                            f"field {od_key} value differs "
                            f"(positions {spos} vs {ipos})",
                            model=model,
                        )
        if spec_m.extent != impl_m.extent:
            # Truncation: the shorter side accepts, the longer rejects.
            length = min(spec_m.extent, impl_m.extent)
            return self._materialize(
                path,
                spec_m,
                impl_m,
                f"input-extent mismatch: spec {spec_m.extent} vs impl "
                f"{impl_m.extent}",
                force_length=length,
            )
        return None

    def _materialize(
        self,
        path: _Path,
        spec_m: _Machine,
        impl_m: _Machine,
        reason: str,
        model: Optional[Dict[int, bool]] = None,
        force_length: Optional[int] = None,
    ) -> Optional[Counterexample]:
        if model is None:
            model = path.solve()
        if model is None:
            return None  # infeasible path: not a real counterexample
        length = force_length
        if length is None:
            length = max(spec_m.extent, impl_m.extent)
            if model:
                length = max(length, max(model) + 1)
        value = 0
        for pos, bit in model.items():
            if pos < length and bit:
                value |= 1 << (length - 1 - pos)
        return Counterexample(Bits(value, length), reason)


def _map_dest(dest: str):
    if dest == ACCEPT:
        return _DONE_ACCEPT
    if dest == REJECT:
        return _DONE_REJECT
    return dest


def verify_equivalent(
    spec: ParserSpec,
    program: TcamProgram,
    max_steps: int = 64,
    max_configs: int = 60000,
) -> Optional[Counterexample]:
    """None when equivalent; otherwise a concrete distinguishing input."""
    return ProductVerifier(
        spec, program, max_steps=max_steps, max_configs=max_configs
    ).find_counterexample()
