"""Work-stealing shard scheduler for the synthesis portfolio (§6.7).

The static portfolio (`repro.core.parallel._run_pooled`) pins each arm to
one pool future for its whole life: a slow arm idles every other worker
while tighter-key arms finish early.  This module decomposes each compile
into **work units** of (arm, budget slice) instead:

* a worker drives one unit by resuming the arm's compile thread until the
  budget loop reaches its next slice boundary (``SlicePacer.checkpoint``
  in ``ParserHawkCompiler._search_budgets``), where every piece of search
  state is either warm-parked (live ``CegisSession``s, the test pool, the
  retired-budget set) or durable (checkpoint records);
* units live in a scheduler-side deque and idle workers *steal* the next
  unit of any runnable arm.  Units prefer their arm's previous worker —
  there the parked compile thread is still warm and resumption is free —
  and otherwise **migrate**: the new worker rebuilds the arm from its
  PR-3/PR-4 checkpoint (counterexample replay + retired budgets + pool
  prefix), which is winner-identical to the warm continuation by the
  checkpoint determinism contract;
* counterexamples flow between workers through the
  :class:`~repro.core.testpool.CexBus` at slice granularity, and the
  first valid winner broadcasts cancellation (a ``multiprocessing`` event
  plus a bus flag) so in-flight units stand down at their next boundary.

Supervision mirrors the static pool's contracts: a unit that raises
becomes its arm's ``STATUS_FAULT`` result (``portfolio.arm_faults``), a
hard worker death abandons the worker fleet and re-runs the unfinished
arms in-process from their checkpoints (``portfolio.pool_broken`` +
``portfolio.recovery``), an environment that cannot spawn processes
degrades to the sequential path (``portfolio.pool_unavailable`` +
``portfolio.degraded``), and the portfolio deadline returns the labels of
arms still holding units.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import queue
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..obs import Tracer, use_tracer
from ..resilience import PoolBroken
from ..resilience import injection as _injection
from ..resilience.injection import fault_point
from .cegis import SlicePacer, UnitCancelled
from .testpool import TestChannel

# Unit outcomes a worker reports back to the scheduler.
UNIT_PARKED = "parked"        # slice boundary reached; arm still runnable
UNIT_DONE = "done"            # the arm's compile returned a result
UNIT_FAULT = "fault"          # the unit raised; arm becomes STATUS_FAULT
UNIT_CANCELLED = "cancelled"  # winner broadcast / stale-runner discard

_group_ids = itertools.count(1)


def _next_group() -> str:
    """Compile-scoped identity for winner broadcasts on the bus."""
    return f"{os.getpid()}.{next(_group_ids)}"


class UnitPacer(SlicePacer):
    """Thread gate between a worker's loop and one arm's compile thread.

    The compile thread calls :meth:`checkpoint` between budget attempts;
    unless cancelled it parks there until the worker grants the next
    unit.  One grant runs exactly one budget attempt (or, for the very
    first unit, the front-end preparation up to the first attempt).
    """

    def __init__(self, should_cancel=None) -> None:
        self._resume = threading.Event()
        self._idle = threading.Event()
        self._cancelled = False
        self._should_cancel = should_cancel

    # -- compile-thread side -------------------------------------------
    def checkpoint(self) -> None:
        if self._cancelled or (
            self._should_cancel is not None and self._should_cancel()
        ):
            raise UnitCancelled("cancelled at slice boundary")
        self._idle.set()
        self._resume.wait()
        self._resume.clear()
        if self._cancelled:
            raise UnitCancelled("cancelled while parked")

    def mark_idle(self) -> None:
        self._idle.set()

    # -- worker side ---------------------------------------------------
    def grant(self) -> None:
        self._idle.clear()
        self._resume.set()

    def cancel(self) -> None:
        self._cancelled = True
        self._resume.set()

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        return self._idle.wait(timeout)


class ArmRunner:
    """Slice-at-a-time executor of one portfolio arm.

    The arm's full sequential compile runs in a daemon thread whose only
    scheduling surface is the pacer: between budget attempts it parks,
    keeping every warm structure (sessions, pool, solver) alive in place.
    ``run_unit`` grants one more attempt and blocks until the thread
    parks again or terminates.  ``slices`` mirrors the scheduler's
    per-arm unit count so a worker can detect that an arm migrated away
    and back (its parked thread is then stale and must be discarded in
    favour of a checkpoint rebuild).
    """

    def __init__(
        self,
        spec,
        subproblem,
        channel: Optional[TestChannel] = None,
        trace: bool = False,
        should_cancel=None,
    ) -> None:
        self.spec = spec
        self.subproblem = subproblem
        self.channel = channel
        self.trace = trace
        self.pacer = UnitPacer(should_cancel)
        self.slices = 0
        self.outcome: Optional[Tuple[str, Any]] = None
        self._thread: Optional[threading.Thread] = None

    def _drive(self) -> None:
        from .compiler import ParserHawkCompiler

        sub = self.subproblem
        try:
            compiler = ParserHawkCompiler(sub.options)
            if not self.trace:
                result = compiler.compile(
                    self.spec, sub.device,
                    test_channel=self.channel, pacer=self.pacer,
                )
                payload = (sub.priority, result, None, None)
            else:
                tracer = Tracer()
                with use_tracer(tracer):
                    with tracer.span(
                        "portfolio.arm",
                        label=sub.label,
                        priority=sub.priority,
                    ) as arm_span:
                        result = compiler.compile(
                            self.spec, sub.device,
                            test_channel=self.channel, pacer=self.pacer,
                        )
                payload = (
                    sub.priority, result,
                    arm_span.to_dict(), tracer.registry.snapshot(),
                )
            self.outcome = (UNIT_DONE, payload)
        except UnitCancelled:
            self.outcome = (UNIT_CANCELLED, None)
        except BaseException as exc:  # supervised: becomes STATUS_FAULT
            self.outcome = (UNIT_FAULT, exc)
        finally:
            self.pacer.mark_idle()

    def run_unit(self) -> Tuple[str, Any]:
        """Run one unit; returns ``(kind, payload)`` when the arm parks
        (``UNIT_PARKED``) or terminates (done / fault / cancelled)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._drive,
                name=f"arm:{self.subproblem.label}",
                daemon=True,
            )
            self._thread.start()
        else:
            self.pacer.grant()
        self.pacer.wait_idle()
        self.slices += 1
        if self.outcome is not None:
            return self.outcome
        return (UNIT_PARKED, None)

    def cancel(self) -> None:
        """Unpark the thread into a ``UnitCancelled`` exit."""
        self.pacer.cancel()


def _steal_worker_main(
    worker_id: int,
    spec,
    subproblems: Sequence,
    device,
    task_q,
    result_q,
    faults,
    trace: bool,
    channel: Optional[TestChannel],
    cancel_event,
    group: str,
) -> None:
    """Worker process: execute units the scheduler assigns, one at a time.

    A task is ``(priority, slice_index, subproblem)``.  ``slice_index``
    is the scheduler's unit count for the arm: if it disagrees with the
    local runner's count the arm ran elsewhere in between, so the stale
    warm thread is discarded and the arm is rebuilt from its checkpoint
    (``resume=True``) — the migration path.  ``None`` shuts the worker
    down.
    """
    from .parallel import Subproblem, _arm_failure

    _injection.install(faults)

    def should_cancel() -> bool:
        if cancel_event is not None and cancel_event.is_set():
            return True
        return (
            channel.winner_declared(group) if channel is not None else False
        )

    runners: Dict[int, ArmRunner] = {}
    result_q.put(("ready", worker_id))
    while True:
        task = task_q.get()
        if task is None:
            break
        priority, slice_index, sub = task
        try:
            fault_point("portfolio.worker", label=sub.label)
            if should_cancel():
                kind, payload = UNIT_CANCELLED, None
            else:
                runner = runners.get(priority)
                if runner is not None and runner.slices != slice_index:
                    # The arm migrated away and back: this worker's
                    # parked thread predates slices run elsewhere.
                    runner.cancel()
                    runner = None
                    runners.pop(priority, None)
                if runner is None:
                    options = sub.options
                    if slice_index > 0 and options.checkpoint_dir:
                        # Migrated here: rebuild from the arm's durable
                        # checkpoint (replay counterexamples, skip
                        # retired budgets, restore the pool prefix).
                        options = options.with_(resume=True)
                    runner = ArmRunner(
                        spec,
                        Subproblem(sub.label, sub.device, options,
                                   sub.priority),
                        channel=channel,
                        trace=trace,
                        should_cancel=should_cancel,
                    )
                    runner.slices = slice_index
                    runners[priority] = runner
                kind, payload = runner.run_unit()
                if kind != UNIT_PARKED:
                    runners.pop(priority, None)
        except BaseException as exc:
            kind, payload = UNIT_FAULT, exc
        if kind == UNIT_FAULT:
            failure = _arm_failure(sub, payload, device)
            payload = (sub.priority, failure, None, None)
        try:
            result_q.put(("unit", worker_id, priority, kind, payload))
        except Exception as exc:
            # The payload would not serialize: report the arm as faulted
            # rather than silently stalling the scheduler.
            failure = _arm_failure(sub, exc, device)
            result_q.put(
                ("unit", worker_id, priority, UNIT_FAULT,
                 (sub.priority, failure, None, None))
            )


def run_stealing(
    spec,
    subproblems: Sequence,
    device,
    tracer,
    deadline: Optional[float],
    workers: int,
    results: List[Tuple[int, Any]],
    on_result=None,
    channel: Optional[TestChannel] = None,
    manager=None,
) -> List[str]:
    """Race arms as stealable work units; returns still-pending labels.

    Mirrors ``_run_pooled``'s contract: per-arm outcomes append to
    ``results`` (via ``on_result`` for checkpointing), the first valid
    winner cancels everything in flight, and the returned labels name
    arms that still held units when the deadline expired (empty
    otherwise).  Supervision outcomes (fault/broken/unavailable) use the
    same counters and spans as the static pool so operators and tests
    see one vocabulary across schedulers.
    """
    from .parallel import (
        _POOL_UNAVAILABLE_ERRORS,
        _run_arms_inline,
        _valid_winner,
        _with_deadline,
    )

    ordered = sorted(subproblems, key=lambda s: s.priority)
    n_workers = max(1, min(workers, len(ordered)))
    group = _next_group()

    try:
        fault_point("portfolio.pool")
        ctx = multiprocessing.get_context()
        cancel_event = ctx.Event()
        result_q = ctx.Queue()
        faults = _injection.snapshot() or None
        task_qs: Dict[int, Any] = {}
        procs: Dict[int, Any] = {}
        for wid in range(n_workers):
            task_qs[wid] = ctx.Queue()
            proc = ctx.Process(
                target=_steal_worker_main,
                args=(wid, spec, ordered, device, task_qs[wid], result_q,
                      faults, tracer.enabled, channel, cancel_event, group),
                daemon=True,
            )
            proc.start()
            procs[wid] = proc
    except _POOL_UNAVAILABLE_ERRORS as exc:
        tracer.count("portfolio.pool_unavailable")
        with tracer.span(
            "portfolio.degraded", reason=f"{type(exc).__name__}: {exc}"
        ):
            return _run_arms_inline(
                spec, ordered, device, tracer, deadline, results,
                on_result, channel,
            )

    label_of = {s.priority: s.label for s in ordered}
    sub_of = {s.priority: s for s in ordered}
    slices = {s.priority: 0 for s in ordered}
    owner: Dict[int, Optional[int]] = {s.priority: None for s in ordered}
    terminal: Set[int] = set()
    pending = deque(s.priority for s in ordered)
    idle: deque = deque()
    in_flight: Dict[int, int] = {}
    winner_found = False
    broken: Optional[BaseException] = None

    def dispatch() -> None:
        while idle and pending and not winner_found:
            wid = idle[0]
            # Affinity order: this worker's own parked arm (warm resume
            # is free) > a never-run arm > stealing another worker's arm.
            pick = next(
                (p for p in pending if owner[p] == wid), None
            )
            if pick is None:
                pick = next(
                    (p for p in pending if owner[p] is None), None
                )
            stolen = pick is None
            if pick is None:
                pick = pending[0]
            bounded = _with_deadline(sub_of[pick], deadline)
            if bounded is None:
                # Deadline already expired: never launch another unit.
                tracer.count("portfolio.deadline_expired")
                return
            idle.popleft()
            pending.remove(pick)
            if stolen:
                tracer.count("portfolio.units_stolen")
                if slices[pick] > 0:
                    # The unit's warm state lives on another worker: it
                    # will be rebuilt there from the checkpoint.
                    tracer.count("portfolio.units_migrated")
            owner[pick] = wid
            in_flight[wid] = pick
            tracer.count("portfolio.units_dispatched")
            if manager is not None:
                manager.record_unit(label_of[pick], wid, slices[pick])
            task_qs[wid].put((pick, slices[pick], bounded))

    def find_broken() -> Optional[BaseException]:
        dead = [
            wid for wid, proc in procs.items() if not proc.is_alive()
        ]
        if not dead:
            return None
        codes = [procs[wid].exitcode for wid in dead]
        return PoolBroken(
            f"steal worker(s) {dead} died (exitcode {codes})"
        )

    try:
        while len(terminal) < len(ordered) and not winner_found:
            if deadline is not None and time.monotonic() > deadline:
                tracer.count("portfolio.deadline_expired")
                break
            # A worker that died hard never reports its in-flight unit;
            # poll liveness every pass so the loss is noticed even while
            # other workers keep the result queue busy.
            broken = find_broken()
            if broken is not None:
                break
            dispatch()
            try:
                msg = result_q.get(timeout=0.05)
            except queue.Empty:
                continue
            if msg[0] == "ready":
                idle.append(msg[1])
                continue
            _, wid, priority, kind, payload = msg
            in_flight.pop(wid, None)
            idle.append(wid)
            if kind == UNIT_PARKED:
                slices[priority] += 1
                pending.append(priority)
                continue
            terminal.add(priority)
            if kind == UNIT_CANCELLED:
                continue
            pr, result, spans, counters = payload
            if kind == UNIT_FAULT:
                with tracer.span(
                    "portfolio.arm.fault",
                    label=label_of.get(priority, f"arm#{priority}"),
                    priority=priority,
                    error=result.message,
                ):
                    pass
                tracer.count("portfolio.arm_faults")
            if spans is not None:
                tracer.attach(spans)
            if counters is not None and tracer.enabled:
                tracer.registry.merge(counters)
            results.append((pr, result))
            if on_result is not None:
                on_result(pr, result)
            if _valid_winner(result, device):
                winner_found = True
                cancel_event.set()
                if channel is not None:
                    channel.announce_winner(group)

        if broken is not None:
            # Hard worker death: abandon the fleet entirely and finish
            # the unfinished arms in-process, best priority first — each
            # resuming from its own checkpoint so completed slices are
            # not repeated.  (The injection registry's "subprocess"
            # scope keeps worker-killing test faults from re-firing.)
            tracer.count("portfolio.pool_broken")
            cancel_event.set()
            _shutdown(procs, task_qs, result_q)
            procs = {}
            remaining = []
            for sub in ordered:
                if sub.priority in terminal:
                    continue
                opts = sub.options
                if slices[sub.priority] > 0 and opts.checkpoint_dir:
                    opts = opts.with_(resume=True)
                remaining.append(
                    type(sub)(sub.label, sub.device, opts, sub.priority)
                )
            with tracer.span(
                "portfolio.recovery",
                reason=f"{type(broken).__name__}: {broken}",
                arms=len(remaining),
            ):
                return _run_arms_inline(
                    spec, remaining, device, tracer, deadline, results,
                    on_result, channel,
                )
        if not winner_found and len(terminal) < len(ordered):
            return [
                label_of[p]
                for p in sorted(set(label_of) - terminal)
            ]
        return []
    finally:
        cancel_event.set()
        _shutdown(procs, task_qs, result_q)


def _shutdown(procs, task_qs, result_q) -> None:
    """Best-effort teardown of the worker fleet and its queues."""
    for tq in task_qs.values():
        try:
            tq.put_nowait(None)
        except Exception:
            pass
    for proc in procs.values():
        try:
            proc.terminate()
        except Exception:
            pass
    for proc in procs.values():
        try:
            proc.join(timeout=0.5)
        except Exception:
            pass
    for q in list(task_qs.values()) + [result_q]:
        try:
            q.cancel_join_thread()
            q.close()
        except Exception:
            pass
