"""Random-simulation correctness check (§7.1, Figure 22).

Independent of the exact product verifier: sample random bitstreams, run
both the specification simulator and the implementation simulator, and
compare their output dictionaries under the §4 correctness relation."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..hw.impl import TcamProgram
from ..ir.bits import Bits
from ..ir.simulator import (
    equivalent_behavior,
    simulate_spec,
    spec_input_bound,
)
from ..ir.spec import ParserSpec


@dataclass
class ValidationReport:
    samples: int
    failures: List[Bits] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        if self.passed:
            return f"validation passed on {self.samples} random inputs"
        return (
            f"validation FAILED: {len(self.failures)}/{self.samples} inputs "
            f"disagree (first: {self.failures[0]!r})"
        )


def random_simulation_check(
    spec: ParserSpec,
    program: TcamProgram,
    samples: int = 500,
    seed: int = 0,
    max_steps: int = 64,
    max_length: Optional[int] = None,
) -> ValidationReport:
    """Figure 22: feed random inputs to Spec and Impl, compare dictionaries."""
    rng = random.Random(seed)
    bound = max_length or max(8, spec_input_bound(spec, max_steps))
    report = ValidationReport(samples=samples)
    for i in range(samples):
        if i == 0:
            bits = Bits(0, bound)
        else:
            length = rng.randint(0, bound)
            bits = Bits(rng.getrandbits(length) if length else 0, length)
        expected = simulate_spec(spec, bits, max_steps)
        got = program.simulate(bits, max_steps)
        if not equivalent_behavior(expected, got):
            report.failures.append(bits)
    return report
