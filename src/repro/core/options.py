"""Compilation options: the §6 optimization toggles and search budgets.

Each ``optN`` flag corresponds to one optimization from the paper; the
Table 5 ablation benches flip them individually.  ``all_disabled`` is the
"Orig" arm of Table 3 (naive encoding).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for a :class:`~repro.core.compiler.ParserHawkCompiler` run."""

    # §6.1 spec-guided key construction: restrict impl transition-key bits
    # to those the specification itself keys on.
    opt1_spec_guided_keys: bool = True
    # §6.2 bit-width minimization: shrink fields irrelevant to control flow
    # to 1 bit during synthesis, restore afterwards.
    opt2_bitwidth_minimization: bool = True
    # §6.3 pre-allocated field extraction: fix which impl state extracts
    # which fields; the solver only orders the states.
    opt3_preallocation: bool = True
    # §6.4 constant synthesis: one-hot candidate pools for TCAM value/mask
    # pairs instead of free symbolic bit-vectors.
    opt4_constant_synthesis: bool = True
    # §6.4.1 recovery: include concatenations of adjacent states' constants.
    opt4_adjacent_concat: bool = True
    # §6.5 grouped transition-key allocation: treat each field slice used by
    # the spec as one indivisible key group.
    opt5_key_grouping: bool = True
    # §6.6 fixed-size treatment of varbit fields during synthesis.
    opt6_fixed_varbits: bool = True
    # §6.7 portfolio parallelism (loop-aware vs loop-free, key-limit levels).
    opt7_parallelism: bool = True
    parallel_workers: int = 1          # 1 = deterministic sequential portfolio
    # Portfolio execution strategy when parallel_workers > 1:
    # "steal"  — shard scheduler: arms are decomposed into (arm, budget
    #            slice) work units that long-lived workers steal when idle;
    #            parked sessions migrate across workers via the checkpoint
    #            format (see repro.core.stealing);
    # "static" — the PR-2 arm-per-future process pool, kept as the A/B
    #            baseline and fallback.
    # Pure placement: never changes which program a compile produces, so
    # fingerprint.NON_SEMANTIC_OPTIONS excludes it from cache keys.
    schedule: str = "steal"
    # Directed seed tests for CEGIS (our addition; the paper seeds with a
    # single random input/output pair, which the "Orig" arm reproduces).
    directed_seed_tests: bool = True
    # Incremental synthesis (repro.core.testpool): record every
    # counterexample and directed seed test once and replay the pool as
    # up-front constraints into every subsequent budget's CEGIS run (and
    # across portfolio arms sharing a bit layout).  Valid tests only ever
    # prune spec-inequivalent candidates, so per-budget feasibility — and
    # the minimal budget found — is unchanged; the knob exists for A/B
    # measurement (CLI --no-test-reuse, benchmarks/bench_compile_speed).
    test_reuse: bool = True
    # Equality-saturation normalization (PR 10, repro.ir.eqsat): after
    # the greedy canonicalize pass, build an e-graph over the spec,
    # saturate the non-destructive R1–R5 rewrites to a bounded fixed
    # point, and enumerate skeletons from the extracted cost-minimal
    # representative.  Changes the spec the synthesizer sees, so it is
    # semantic — cache and checkpoint keys never mix regimes.
    eqsat: bool = False

    # CEGIS budgets.
    max_cegis_iterations: int = 40
    max_unroll_steps: Optional[int] = None   # K in Figure 6; None = derive
    synthesis_max_conflicts: Optional[int] = None
    synthesis_max_seconds: Optional[float] = None
    total_max_seconds: Optional[float] = None

    # Resource search.
    max_extra_entries: int = 8         # beyond the lower bound, per attempt
    max_aux_states_per_state: int = 4  # key-splitting auxiliaries
    minimize_stages: bool = True       # lexicographic (stages, entries) on IPU
    # Iterative-deepening schedule over budgets (§6.7.2 portfolio,
    # sequential emulation): each budget gets a time slice per round.
    budget_time_slice: float = 10.0
    time_slice_growth: float = 4.0
    max_time_slice: float = 900.0

    # Reproducibility.
    seed: int = 0

    # Persistence (see repro.persist).  ``checkpoint_dir`` enables durable
    # CEGIS/budget-search checkpoints; ``resume`` additionally reloads an
    # existing checkpoint with a matching compile key.  ``cache_dir``
    # enables the content-addressed compile cache.  None disables each.
    # These knobs change where state lives, never which program a
    # successful compile produces, so fingerprint.NON_SEMANTIC_OPTIONS
    # excludes them from cache keys.
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    checkpoint_interval_seconds: float = 0.0   # min seconds between flushes
    cache_dir: Optional[str] = None
    # Certifying mode: DRAT proof logging in every CEGIS solver, an
    # equivalence certificate written next to the cache entry on winner
    # paths (requires cache_dir), and proof-log references recorded in
    # the checkpoint manifest for UNSAT-gated outcomes (requires
    # checkpoint_dir).  Pure observation — the search, the winning
    # program, and cache keys are unchanged — so it is listed in
    # fingerprint.NON_SEMANTIC_OPTIONS.
    certify: bool = False

    def with_(self, **kwargs) -> "CompileOptions":
        return replace(self, **kwargs)

    @classmethod
    def all_disabled(cls, **overrides) -> "CompileOptions":
        """The naive-encoding "Orig" configuration of Table 3."""
        base = cls(
            opt1_spec_guided_keys=False,
            opt2_bitwidth_minimization=False,
            opt3_preallocation=False,
            opt4_constant_synthesis=False,
            opt4_adjacent_concat=False,
            opt5_key_grouping=False,
            opt6_fixed_varbits=False,
            opt7_parallelism=False,
            directed_seed_tests=False,
        )
        return replace(base, **overrides)

    @classmethod
    def all_enabled(cls, **overrides) -> "CompileOptions":
        return replace(cls(), **overrides)

    def enabled_summary(self) -> str:
        bits = []
        for i, flag in enumerate(
            [
                self.opt1_spec_guided_keys,
                self.opt2_bitwidth_minimization,
                self.opt3_preallocation,
                self.opt4_constant_synthesis,
                self.opt5_key_grouping,
                self.opt6_fixed_varbits,
                self.opt7_parallelism,
            ],
            start=1,
        ):
            if flag:
                bits.append(f"Opt{i}")
        return "+".join(bits) if bits else "none"
