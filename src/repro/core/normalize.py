"""Pre-synthesis specification normalization.

The code analyzer half of ParserHawk's front-end (Figure 8).  Everything
here is a semantics-preserving specification transform:

* canonicalization — drop unreachable states/rules and rules subsumed by
  earlier ones, merge unconditional chains (-R1/-R2/-R5 as cleanups), and
  collapse key-split chains back into wide keys (-R4) so the synthesizer
  sees one canonical spec regardless of the input's written style.  This is
  the concrete mechanism behind the paper's claim that ParserHawk depends
  only on semantics, never on how the program was written (§3.3).
* loop unrolling — for pipelined (forward-only) targets, self-loop states
  bounded by a header stack are replicated ``depth`` times (§7's
  "+unroll loop"; the commercial IPU compiler cannot do this).
* Opt2 bit-width minimization — fields irrelevant to control flow shrink
  to 1 bit during synthesis (Figure 14), restored afterwards.
* Opt6 fixed-size varbits — varbit fields become max-width fixed fields
  during synthesis (Figure 18), restored afterwards.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..ir.analysis import irrelevant_fields, looping_states
from ..ir.rewrites import (
    merge_states,
    merge_transition_key,
    remove_redundant_entries,
    remove_unreachable_entries,
)
from ..ir.spec import REJECT, Field, LookaheadKey, ParserSpec, Rule, SpecState


class CompileError(Exception):
    """The specification cannot be compiled for the requested target."""


def canonicalize(spec: ParserSpec) -> ParserSpec:
    """Apply the cleanup rewrites to a fixpoint.

    ``merge_transition_key`` and ``merge_states`` rewrite one site per
    call, so each rewrite is drained to its own fixpoint inside the
    round — otherwise a chained mutation (e.g. +R5 applied twice) needs
    one outer round per site and an early ``_same_shape`` hit between
    rounds can freeze the spec short of canonical.
    """
    current = spec
    for _ in range(10 * max(1, len(spec.states))):
        step = _drain(remove_unreachable_entries, current)
        step = _drain(remove_redundant_entries, step)
        step = _drain(merge_transition_key, step)
        step = _drain(merge_states, step)
        if step is current or _same_shape(step, current):
            return step
        current = step
    return current


def _drain(rewrite, spec: ParserSpec) -> ParserSpec:
    """Run a single-site rewrite until it stops changing the spec."""
    current = spec
    for _ in range(10 * max(1, len(spec.states))):
        step = rewrite(current)
        if step is current or _same_shape(step, current):
            return step
        current = step
    return current


def saturate(spec: ParserSpec, budget: Optional["EqsatBudget"] = None):
    """Equality-saturation normalization (PR 10): build an e-graph over
    the spec, saturate the non-destructive R1–R5 rewrites to a bounded
    fixed point, and extract the cost-minimal canonical representative.
    Returns ``(spec, EqsatStats)``; see ``ir/eqsat.py``.
    """
    from ..ir.eqsat import saturate_spec

    return saturate_spec(spec, budget)


def _same_shape(a: ParserSpec, b: ParserSpec) -> bool:
    if set(a.states) != set(b.states):
        return False
    for name in a.states:
        sa, sb = a.states[name], b.states[name]
        if (sa.extracts, sa.key, sa.rules) != (sb.extracts, sb.key, sb.rules):
            return False
    return True


# ---------------------------------------------------------------------------
# Loop unrolling (pipelined targets)
# ---------------------------------------------------------------------------

def unroll_self_loops(spec: ParserSpec) -> ParserSpec:
    """Replicate each self-looping state ``depth`` times for forward-only
    architectures.  ``depth`` comes from the stack bound of the fields the
    state extracts; the final copy's back-edge leads to an overflow state
    whose extraction necessarily rejects (preserving the stack-overflow
    semantics of the loop-capable original).
    """
    loopers = looping_states(spec)
    if not loopers:
        return spec
    states = dict(spec.states)
    order = list(spec.state_order)
    for name in sorted(loopers):
        state = spec.states[name]
        back_edges = [r for r in state.rules if r.next_state == name]
        if not back_edges:
            raise CompileError(
                f"state {name} is part of a multi-state cycle; only "
                "self-loops can be unrolled for pipelined targets"
            )
        depth = _loop_depth(spec, state)
        if depth is None:
            raise CompileError(
                f"cannot bound loop at state {name}: it extracts no "
                "stack-bounded field"
            )
        copies = [name] + [
            _fresh(states, f"{name}_u{i}") for i in range(1, depth)
        ]
        overflow = _fresh(states, f"{name}_ovf")
        for i, cname in enumerate(copies):
            succ = copies[i + 1] if i + 1 < depth else overflow
            rules = tuple(
                Rule(r.patterns, succ) if r.next_state == name
                else r
                for r in state.rules
            )
            states[cname] = SpecState(cname, state.extracts, state.key, rules)
            if cname not in order:
                order.insert(order.index(name) + i, cname)
        # The overflow state extracts one more stack instance, which rejects
        # at run time (stack full); its transition is never taken.
        states[overflow] = SpecState(
            overflow, state.extracts, (), (Rule((), REJECT),)
        )
        order.append(overflow)
    return spec.with_states(states, spec.start, order)


def _loop_depth(spec: ParserSpec, state: SpecState) -> Optional[int]:
    depths = [
        spec.fields[f].stack_depth
        for f in state.extracts
        if spec.fields[f].is_stack
    ]
    return min(depths) if depths else None


def _fresh(states: Dict[str, SpecState], base: str) -> str:
    name = base
    index = 0
    while name in states:
        index += 1
        name = f"{base}_{index}"
    return name


# ---------------------------------------------------------------------------
# Opt2 / Opt6 scaling (Figures 14 and 18)
# ---------------------------------------------------------------------------

class ScalePlan:
    """Remembers original field definitions so the synthesized program can
    be scaled back up (Impl' -> Impl in Figure 14)."""

    def __init__(self, original_fields: Dict[str, Field]):
        self.original_fields = dict(original_fields)

    def restore_fields(self, scaled: Dict[str, Field]) -> Dict[str, Field]:
        out = dict(scaled)
        for name, fdef in self.original_fields.items():
            if name in out:
                out[name] = fdef
        return out


def _lookahead_used(spec: ParserSpec) -> bool:
    return any(
        isinstance(part, LookaheadKey)
        for state in spec.states.values()
        for part in state.key
    )


def scale_spec(
    spec: ParserSpec,
    minimize_widths: bool,
    fix_varbits: bool,
    min_width: int = 1,
) -> Tuple[ParserSpec, ScalePlan]:
    """Apply Opt2 (irrelevant-field shrinking) and Opt6 (varbit fixing).

    Scaling moves field boundaries, so it is skipped entirely when the spec
    uses lookahead keys (whose window offsets are position-sensitive) —
    the safety net is that the final program is always verified against the
    *original* specification.
    """
    plan = ScalePlan(spec.fields)
    if _lookahead_used(spec):
        minimize_widths = False
    fields = dict(spec.fields)
    changed = False
    if minimize_widths:
        for name in irrelevant_fields(spec):
            fdef = fields[name]
            if fdef.is_varbit or fdef.width <= min_width:
                continue
            fields[name] = replace(fdef, width=min_width)
            changed = True
    if fix_varbits:
        for name, fdef in fields.items():
            if fdef.is_varbit:
                fields[name] = replace(
                    fdef,
                    is_varbit=False,
                    length_field=None,
                    length_multiplier=1,
                )
                changed = True
    if not changed:
        return spec, plan
    scaled = ParserSpec(
        spec.name, fields, dict(spec.states), spec.start, list(spec.state_order)
    )
    return scaled, plan


# ---------------------------------------------------------------------------
# Full front-end pipeline
# ---------------------------------------------------------------------------

def prepare_spec(
    spec: ParserSpec,
    pipelined: bool,
    minimize_widths: bool,
    fix_varbits: bool,
    eqsat: bool = False,
) -> Tuple[ParserSpec, ScalePlan]:
    """Canonicalize, unroll if the target is forward-only, scale.

    With ``eqsat`` the greedy canonical spec is additionally
    equality-saturated (after unrolling for pipelined targets, so the
    unrolled chain itself gets normalized) and the skeleton enumerates
    from the extracted representative.
    """
    prepared = canonicalize(spec)
    if eqsat and not pipelined:
        prepared, _stats = saturate(prepared)
    if pipelined:
        prepared = unroll_self_loops(prepared)
        prepared = canonicalize(prepared)
        if eqsat:
            prepared, _stats = saturate(prepared)
    scaled, plan = scale_spec(prepared, minimize_widths, fix_varbits)
    return scaled, plan
