"""Post-synthesis optimization (§5.3).

The synthesis phase restricts the skeleton (pre-allocated extraction, one
extraction unit per state) to keep the search tractable; this pass cleans
up the result:

* prune states and entries unreachable from the start state;
* recursively merge a state whose only exit is a catch-all entry into its
  successor (when the successor has no other predecessors) — the merged
  catch-all entry disappears, saving one TCAM row;
* split states whose extraction exceeds the device's per-state extraction
  limit into chains (each link costs one catch-all entry).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw.device import DeviceProfile
from ..hw.impl import ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern


def prune_unreachable(program: TcamProgram) -> TcamProgram:
    """Drop states/entries not reachable from the start state."""
    live = set(program.used_sids())
    live.add(program.start_sid)
    states = [s for s in program.states if s.sid in live]
    entries = [e for e in program.entries if e.sid in live]
    return TcamProgram(
        program.fields, states, entries, program.start_sid, program.source_name
    )


def merge_passthrough_states(
    program: TcamProgram, device: DeviceProfile
) -> TcamProgram:
    """Merge A -> B when A's only entry is a catch-all to B, B's only
    predecessor is A, and the merged extraction fits the device limit."""
    changed = True
    current = program
    while changed:
        changed = False
        preds: Dict[int, List[int]] = {}
        for entry in current.entries:
            if entry.next_sid >= 0:
                preds.setdefault(entry.next_sid, []).append(entry.sid)
        for state in current.states:
            own = current.entries_of(state.sid)
            if len(own) != 1:
                continue
            entry = own[0]
            if not entry.pattern.is_catch_all or entry.next_sid < 0:
                continue
            succ_sid = entry.next_sid
            if succ_sid == state.sid:
                continue
            if preds.get(succ_sid, []) != [state.sid]:
                continue
            if succ_sid == current.start_sid:
                continue
            succ = current.state(succ_sid)
            merged_bits = sum(
                current.fields[f].width
                for f in state.extracts + succ.extracts
            )
            if merged_bits > device.extract_limit:
                continue
            # Lookahead keys in the successor shift by the successor's own
            # extraction only, which is unchanged; field keys are position
            # independent.  Merge is safe.
            merged = ImplState(
                state.sid,
                state.name,
                tuple(state.extracts) + tuple(succ.extracts),
                succ.key,
                state.stage,
            )
            new_states = [
                merged if s.sid == state.sid else s
                for s in current.states
                if s.sid != succ_sid
            ]
            new_entries: List[ImplEntry] = []
            for e in current.entries:
                if e.sid == state.sid:
                    continue  # the catch-all disappears
                if e.sid == succ_sid:
                    new_entries.append(
                        ImplEntry(state.sid, e.pattern, e.next_sid)
                    )
                else:
                    new_entries.append(e)
            current = TcamProgram(
                current.fields,
                new_states,
                new_entries,
                current.start_sid,
                current.source_name,
            )
            changed = True
            break
    return current


def split_oversize_extractions(
    program: TcamProgram, device: DeviceProfile
) -> TcamProgram:
    """Split any state whose extraction exceeds the device's per-state limit
    into a chain of states (each chained link costs one catch-all entry)."""
    states = list(program.states)
    entries = list(program.entries)
    next_sid = max((s.sid for s in states), default=0) + 1
    changed = False
    for state in list(states):
        total = sum(program.fields[f].width for f in state.extracts)
        if total <= device.extract_limit:
            continue
        # Greedily pack fields into links.
        chunks: List[List[str]] = [[]]
        acc = 0
        for fname in state.extracts:
            w = program.fields[fname].width
            if acc + w > device.extract_limit and chunks[-1]:
                chunks.append([])
                acc = 0
            chunks[-1].append(fname)
            acc += w
        if len(chunks) == 1:
            continue
        changed = True
        # First link keeps the sid; later links are fresh states; the key
        # and original entries move to the last link.
        link_sids = [state.sid] + [next_sid + i for i in range(len(chunks) - 1)]
        next_sid += len(chunks) - 1
        new_states = []
        for i, (sid, chunk) in enumerate(zip(link_sids, chunks)):
            last = i == len(chunks) - 1
            new_states.append(
                ImplState(
                    sid,
                    state.name if i == 0 else f"{state.name}__x{i}",
                    tuple(chunk),
                    state.key if last else (),
                    state.stage + i if device.is_pipelined else state.stage,
                )
            )
        states = [s for s in states if s.sid != state.sid] + new_states
        moved = []
        for e in entries:
            if e.sid == state.sid:
                moved.append(ImplEntry(link_sids[-1], e.pattern, e.next_sid))
            else:
                moved.append(e)
        entries = moved
        for i in range(len(link_sids) - 1):
            entries.append(
                ImplEntry(
                    link_sids[i],
                    TernaryPattern(0, 0, 0),
                    link_sids[i + 1],
                )
            )
    if not changed:
        return program
    return TcamProgram(
        program.fields, states, entries, program.start_sid, program.source_name
    )


def optimize(program: TcamProgram, device: DeviceProfile) -> TcamProgram:
    """The full §5.3 pipeline."""
    out = prune_unreachable(program)
    out = merge_passthrough_states(out, device)
    out = split_oversize_extractions(out, device)
    return out
