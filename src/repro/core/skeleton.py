"""Parameterized parser skeleton (§5's "parser skeleton with symbolic
variables").

From a normalized specification and a device profile, the skeleton fixes
everything the optimizations allow us to fix up front and leaves the rest
symbolic:

* implementation states: one per specification state ("extraction unit",
  Opt3 pre-allocation) plus auxiliary extraction-free states for
  transition-key splitting (Figure 4 Step 2);
* per state, a finite list of candidate transition keys (Opt1 restricts
  them to spec-used bits, Opt5 keeps field slices atomic);
* per (state, candidate), a finite pool of ternary patterns for TCAM
  entries (Opt4: spec constants, merged cubes, sub-range splits,
  catch-all) — or a fully symbolic value/mask pair when Opt4 is off;
* a fixed budget of symbolic TCAM entries whose owner / pattern /
  next-state assignments the solver decides.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..hw.device import DeviceProfile
from ..hw.tcam import TernaryPattern, minimal_cover_exact
from ..ir.analysis import build_state_graph
from ..ir.spec import (
    ACCEPT,
    REJECT,
    FieldKey,
    KeyPart,
    LookaheadKey,
    ParserSpec,
    SpecState,
)
from .options import CompileOptions

FREE_PATTERN = "FREE"   # sentinel: symbolic value/mask (Opt4 disabled)


@dataclass(frozen=True)
class KeyCandidate:
    """One possible transition key for an implementation state."""

    parts: Tuple[KeyPart, ...]

    @property
    def width(self) -> int:
        return sum(p.width for p in self.parts)

    @property
    def lookahead_bits(self) -> int:
        return sum(p.width for p in self.parts if isinstance(p, LookaheadKey))

    def __str__(self) -> str:
        return "+".join(str(p) for p in self.parts) if self.parts else "<none>"


@dataclass
class SkelState:
    """An implementation state slot."""

    sid: int
    name: str
    extracts: Tuple[str, ...]
    candidates: List[KeyCandidate]
    # Per candidate index: the ternary patterns an entry owned by this state
    # may use (or the FREE_PATTERN sentinel for symbolic patterns).
    patterns: List[List[object]]
    is_aux: bool = False
    unit_sid: int = -1          # the unit this aux state belongs to

    def __post_init__(self) -> None:
        if self.unit_sid < 0:
            self.unit_sid = self.sid


@dataclass
class Skeleton:
    """Everything the encoder needs to build the synthesis formula."""

    spec: ParserSpec
    device: DeviceProfile
    options: CompileOptions
    states: List[SkelState]
    num_entries: int
    stage_budget: int
    allow_loops: bool
    unroll_steps: int
    start_sid: int = 0

    def state(self, sid: int) -> SkelState:
        return self.states[sid]

    @property
    def num_states(self) -> int:
        return len(self.states)

    def allowed_next(self) -> Dict[int, List[int]]:
        """Per state: the destinations entries owned by it may take.

        A state realizing specification state U may only transition to
        (a) the units realizing U's spec successors (or accept/reject),
        or (b) other members of U's own aux chain.  Any correct
        implementation built on pre-allocated extraction units must follow
        the spec's unit graph, so this prunes the search space without
        losing solutions (reject is always allowed: explicit reject rules
        may need shadowing entries)."""
        from ..hw.impl import ACCEPT_SID, REJECT_SID
        from ..ir.spec import ACCEPT as SPEC_ACCEPT
        from ..ir.spec import REJECT as SPEC_REJECT

        name_to_sid = {s.name: s.sid for s in self.states if not s.is_aux}
        out: Dict[int, List[int]] = {}
        for st in self.states:
            unit = self.states[st.unit_sid]
            spec_state = self.spec.states[unit.name]
            allowed = {REJECT_SID}
            for rule in spec_state.rules:
                dest = rule.next_state
                if dest == SPEC_ACCEPT:
                    allowed.add(ACCEPT_SID)
                elif dest == SPEC_REJECT:
                    allowed.add(REJECT_SID)
                else:
                    allowed.add(name_to_sid[dest])
            for other in self.states:
                if (
                    other.is_aux
                    and other.unit_sid == st.unit_sid
                    and other.sid != st.sid
                ):
                    allowed.add(other.sid)
            out[st.sid] = sorted(allowed)
        return out

    def describe(self) -> str:
        lines = [
            f"Skeleton: {self.num_states} states, {self.num_entries} entries, "
            f"stage budget {self.stage_budget}, K={self.unroll_steps}, "
            f"loops={'yes' if self.allow_loops else 'no'}"
        ]
        for st in self.states:
            kind = "aux" if st.is_aux else "unit"
            cands = "; ".join(
                f"{c} ({len(p)} pat)" for c, p in zip(st.candidates, st.patterns)
            )
            lines.append(f"  [{st.sid}] {st.name} ({kind}): {cands}")
        return "\n".join(lines)

    def candidate_space(self) -> Dict[str, int]:
        """The enumerated candidate-space dimensions the encoder
        bit-blasts: implementation states, the summed Opt4 pattern
        pools, and table entries — plus their product, the single
        number the eqsat A/B benchmark tracks per row."""
        patterns = sum(len(sum(st.patterns, [])) for st in self.states)
        product = (
            max(1, self.num_states)
            * max(1, patterns)
            * max(1, self.num_entries)
        )
        return {
            "states": self.num_states,
            "patterns": patterns,
            "entries": self.num_entries,
            "product": product,
        }

    def search_space_bits(self) -> int:
        """Size of the symbolic search space in bits (Table 3 column)."""
        import math

        total = 0
        for st in self.states:
            if len(st.candidates) > 1:
                total += max(1, math.ceil(math.log2(len(st.candidates))))
        next_choices = self.num_states + 2
        for _ in range(self.num_entries):
            triples = sum(
                (len(p) if p != [FREE_PATTERN] else 0)
                for st in self.states
                for p in [sum(st.patterns, [])]
            )
            if self.options.opt4_constant_synthesis:
                pool = sum(len(sum(st.patterns, [])) for st in self.states)
                total += max(1, math.ceil(math.log2(max(2, pool))))
            else:
                widest = max(
                    (c.width for st in self.states for c in st.candidates),
                    default=1,
                )
                total += 2 * widest + max(
                    1, math.ceil(math.log2(max(2, self.num_states)))
                )
            total += max(1, math.ceil(math.log2(next_choices)))
        if self.device.is_pipelined:
            import math as _m

            total += self.num_states * max(
                1, _m.ceil(_m.log2(max(2, self.stage_budget)))
            )
        return total


# ---------------------------------------------------------------------------
# Candidate-key generation
# ---------------------------------------------------------------------------

def _slice_key(parts: Sequence[KeyPart], hi: int, lo: int) -> Tuple[KeyPart, ...]:
    """Bits [hi:lo] (LSB order over the concatenated key) as key parts."""
    out: List[KeyPart] = []
    offset = 0  # LSB offset of the current part within the whole key
    for part in reversed(parts):
        part_lo = offset
        part_hi = offset + part.width - 1
        take_lo = max(lo, part_lo)
        take_hi = min(hi, part_hi)
        if take_lo <= take_hi:
            inner_lo = take_lo - part_lo
            inner_hi = take_hi - part_lo
            if isinstance(part, FieldKey):
                out.insert(
                    0,
                    FieldKey(part.field, part.lo + inner_hi, part.lo + inner_lo),
                )
            else:
                assert isinstance(part, LookaheadKey)
                # Wire order: part's first bits are its most significant.
                skip_msb = part.width - 1 - inner_hi
                out.insert(
                    0,
                    LookaheadKey(
                        part.offset + skip_msb, inner_hi - inner_lo + 1
                    ),
                )
        offset += part.width
    return tuple(out)


def _candidate_slices(
    natural: Sequence[KeyPart],
    key_limit: int,
    per_bit: bool,
    cap: int = 24,
) -> List[KeyCandidate]:
    """Contiguous sub-keys of the natural key that fit the device limit.

    With Opt5 (``per_bit=False``) boundaries snap to key-part edges except
    inside oversized parts, where aligned and sliding windows are added.
    Without Opt5 every bit boundary is considered (a much larger pool)."""
    width = sum(p.width for p in natural)
    if width == 0:
        return []
    boundaries: Set[int] = {0, width}
    offset = 0
    for part in reversed(natural):
        boundaries.add(offset)
        boundaries.add(offset + part.width)
        offset += part.width
    if per_bit:
        boundaries.update(range(width + 1))
    else:
        # Oversized parts must still be splittable: add aligned cut points
        # (and all offsets when the part is modest) inside them.
        offset = 0
        for part in reversed(natural):
            if part.width > key_limit:
                if part.width <= 4 * key_limit:
                    boundaries.update(
                        range(offset, offset + part.width + 1)
                    )
                else:
                    boundaries.update(
                        range(offset, offset + part.width + 1, key_limit)
                    )
                    boundaries.add(offset + part.width)
            offset += part.width
    cuts = sorted(boundaries)
    part_cuts: Set[int] = {0, width}
    offset = 0
    for part in reversed(natural):
        part_cuts.add(offset)
        part_cuts.add(offset + part.width)
        offset += part.width
    out: List[KeyCandidate] = []
    seen: Set[Tuple[KeyPart, ...]] = set()
    for i, lo in enumerate(cuts):
        for hi_bound in cuts[i + 1 :]:
            w = hi_bound - lo
            if w <= 0 or w > key_limit:
                continue
            if not per_bit:
                # Keep the pool small: a slice is interesting when it is
                # maximal (full device width) or snaps to key-part
                # boundaries; narrower interior slices add search space
                # without enabling new split shapes.
                if w < key_limit and not (
                    lo in part_cuts and hi_bound in part_cuts
                ):
                    continue
            parts = _slice_key(natural, hi_bound - 1, lo)
            if parts and parts not in seen:
                seen.add(parts)
                out.append(KeyCandidate(parts))
    # Prefer wide candidates first (they usually need fewer entries).
    out.sort(key=lambda c: (-c.width,))
    return out[:cap]


# ---------------------------------------------------------------------------
# Pattern-pool generation (Opt4)
# ---------------------------------------------------------------------------

# Sliced projections larger than this add nothing the pool cap would
# keep anyway (the catch-all is always pooled), so skip their covers.
EQSAT_POOL_MAX_VALUES = 64


@lru_cache(maxsize=256)
def _semantic_dest_sets(
    rules: Tuple, widths: Tuple[int, ...]
) -> Tuple[Tuple[str, Tuple[int, ...]], ...]:
    """First-match value -> destination map over the whole key, grouped by
    non-reject destination (unmatched values reject).  A function of the
    state's *semantics*, not its written rule style, so pools built from
    it are invariant under the eqsat canonicalization.  Callers gate on
    small total widths."""
    total = sum(widths)
    folded = [r.combined_value_mask(widths) for r in rules]
    dests = [r.next_state for r in rules]
    sets: Dict[str, List[int]] = {}
    for kv in range(1 << total):
        for (value, mask), dest in zip(folded, dests):
            if (kv & mask) == (value & mask):
                if dest != REJECT:
                    sets.setdefault(dest, []).append(kv)
                break
    return tuple(sorted((d, tuple(v)) for d, v in sets.items()))


def _restrict_constant(
    value: int, mask: int, natural_width: int, lo: int, width: int
) -> Tuple[int, int]:
    sub_value = (value >> lo) & ((1 << width) - 1)
    sub_mask = (mask >> lo) & ((1 << width) - 1)
    return sub_value, sub_mask


def _candidate_lo(natural: Sequence[KeyPart], cand: KeyCandidate) -> Optional[int]:
    """LSB offset of a candidate inside the natural key, or None if the
    candidate is not a contiguous slice of it."""
    width = sum(p.width for p in natural)
    for lo in range(width - cand.width + 1):
        if _slice_key(natural, lo + cand.width - 1, lo) == cand.parts:
            return lo
    return None


def _patterns_for_candidate(
    spec_state: SpecState,
    natural: Sequence[KeyPart],
    cand: KeyCandidate,
    options: CompileOptions,
    cap: int = 16,
) -> List[TernaryPattern]:
    """The Opt4 constant pool for one (state, key-candidate) pair."""
    width = cand.width
    pool: List[TernaryPattern] = []
    seen: Set[Tuple[int, int]] = set()

    def add(value: int, mask: int) -> None:
        value &= (1 << width) - 1
        mask &= (1 << width) - 1
        value &= mask
        if (value, mask) not in seen:
            seen.add((value, mask))
            pool.append(TernaryPattern(value, mask, width))

    add(0, 0)  # catch-all: always available (defaults / unconditional moves)
    lo = _candidate_lo(natural, cand)
    if lo is not None and spec_state.key:
        widths = [k.width for k in spec_state.key]
        constants = [r.combined_value_mask(widths) for r in spec_state.rules]
        # 6.4.1: the constants present in the spec, restricted to the slice.
        for value, mask in constants:
            sv, sm = _restrict_constant(value, mask, sum(widths), lo, width)
            add(sv, sm)
            add(sv, (1 << width) - 1)  # exact form of the same constant
        # 6.4.2: merged cubes per destination (mask synthesis candidates).
        by_dest: Dict[str, List[int]] = {}
        full = (1 << sum(widths)) - 1
        for rule, (value, mask) in zip(spec_state.rules, constants):
            if mask == full:
                by_dest.setdefault(rule.next_state, []).append(value)
        for dest, values in by_dest.items():
            sliced = sorted(
                {(v >> lo) & ((1 << width) - 1) for v in values}
            )
            if len(sliced) > 1 and width <= 16:
                for cube in minimal_cover_exact(sliced, width):
                    add(cube.value, cube.mask)
            for v in sliced:
                add(v, (1 << width) - 1)
        if options.eqsat and sum(widths) <= 12:
            # Eqsat canonicalization rewrites the rule list (masked
            # covers instead of written exact values), which would
            # starve the constant pool above of the slice projections
            # 6.4.2 mines from fully-masked rules.  Rebuild those
            # projections from the state's semantic value -> destination
            # map instead, making the pool invariant under how the rules
            # were written.  Mirror 6.4.2's scope: non-default
            # destinations with small value sets — mining the catch-all
            # destination's huge set would flood the pool cap with
            # patterns 6.4.2 never offers, inflating every encoding.
            default_dest = None
            if spec_state.rules:
                last = spec_state.rules[-1]
                if last.combined_value_mask(widths)[1] == 0:
                    default_dest = last.next_state
            for dest, values in _semantic_dest_sets(
                tuple(spec_state.rules), tuple(widths)
            ):
                if dest == default_dest:
                    continue
                if len(values) > EQSAT_POOL_MAX_VALUES:
                    continue
                sliced = sorted(
                    {(v >> lo) & ((1 << width) - 1) for v in values}
                )
                if len(sliced) > 1 and width <= 16:
                    for cube in minimal_cover_exact(sliced, width):
                        add(cube.value, cube.mask)
                for v in sliced:
                    add(v, (1 << width) - 1)
    return pool[:cap]


# ---------------------------------------------------------------------------
# Skeleton construction
# ---------------------------------------------------------------------------

def accept_path_states(spec: ParserSpec) -> Set[str]:
    """States on at least one start->accept path (they must appear in the
    implementation because their extractions are observable)."""
    graph = build_state_graph(spec)
    if ACCEPT not in graph:
        return set()
    from_start = nx.descendants(graph, spec.start) | {spec.start}
    to_accept = nx.ancestors(graph, ACCEPT)
    return {s for s in from_start & to_accept if s in spec.states}


def entry_lower_bound(
    spec: ParserSpec, device: Optional[DeviceProfile] = None
) -> int:
    """Sound lower bound on TCAM entries.

    Every state on a start->accept path must be exited, and the family of
    states realizing one specification state (the unit plus any auxiliary
    key-splitting states) needs at least one entry per distinct non-reject
    destination the spec state can take: each destination requires some
    entry pointing at it, and families do not share entries.  Rules whose
    destination is ``reject`` need no entry (a TCAM miss already rejects),
    so they are excluded, which keeps the bound a true lower bound.

    When a device is given and a state's semantic transition function
    provably cannot be decided by any single slice of at most
    ``device.key_limit`` key bits, its family needs a routing hop, adding
    one more entry."""
    total = 0
    for name in accept_path_states(spec):
        state = spec.states[name]
        dests = {
            r.next_state for r in state.rules if r.next_state != REJECT
        }
        bound = max(1, len(dests))
        if (
            device is not None
            and state.key_width > device.key_limit
            and state.key_width <= 12
            and not _single_slice_separates(state, device.key_limit)
        ):
            bound += 1
        total += bound
    return max(1, total)


def _single_slice_separates(spec_state: SpecState, key_limit: int) -> bool:
    """Can some contiguous slice of at most key_limit bits decide the
    state's transition function?  (Exhaustive over key values; callers
    gate on small key widths.)"""
    widths = [k.width for k in spec_state.key]
    total = sum(widths)
    folded = [r.combined_value_mask(widths) for r in spec_state.rules]
    dests = [r.next_state for r in spec_state.rules]

    def dest_of(kv: int) -> str:
        for (value, mask), dest in zip(folded, dests):
            if (kv & mask) == (value & mask):
                return dest
        return REJECT

    behaviour = [dest_of(kv) for kv in range(1 << total)]
    for width in range(1, min(key_limit, total) + 1):
        for lo in range(total - width + 1):
            mapping: Dict[int, str] = {}
            consistent = True
            for kv, dest in enumerate(behaviour):
                sub = (kv >> lo) & ((1 << width) - 1)
                if mapping.setdefault(sub, dest) != dest:
                    consistent = False
                    break
            if consistent:
                return True
    return False


def build_skeleton(
    spec: ParserSpec,
    device: DeviceProfile,
    options: CompileOptions,
    num_entries: int,
    stage_budget: Optional[int] = None,
    allow_loops: Optional[bool] = None,
) -> Skeleton:
    """Construct the symbolic skeleton for one (entries, stages) budget."""
    if allow_loops is None:
        allow_loops = device.allows_loops
    if stage_budget is None:
        stage_budget = device.stage_limit if device.is_pipelined else 1

    states: List[SkelState] = []
    order = [n for n in spec.state_order if n in spec.states]
    unit_sids: Dict[str, int] = {}

    per_bit = not options.opt5_key_grouping

    for name in order:
        spec_state = spec.states[name]
        sid = len(states)
        unit_sids[name] = sid
        natural = spec_state.key
        candidates: List[KeyCandidate] = []
        natural_cand = KeyCandidate(tuple(natural))
        fits = (
            natural_cand.width <= device.key_limit
            and natural_cand.lookahead_bits <= device.lookahead_limit
        )
        if natural and fits:
            candidates.append(natural_cand)
        for cand in _candidate_slices(natural, device.key_limit, per_bit):
            if cand.lookahead_bits > device.lookahead_limit:
                continue
            if cand not in candidates:
                candidates.append(cand)
        if not options.opt1_spec_guided_keys:
            # Naive arm: also offer keys over bits the spec never uses.
            for fname in spec_state.extracts:
                fdef = spec.fields[fname]
                if fdef.is_varbit:
                    continue
                w = min(fdef.width, device.key_limit)
                extra = KeyCandidate((FieldKey(fname, w - 1, 0),))
                if extra not in candidates:
                    candidates.append(extra)
        candidates.append(KeyCandidate(()))  # keyless (single catch-all exit)
        patterns: List[List[object]] = []
        for cand in candidates:
            if not cand.parts:
                patterns.append([TernaryPattern(0, 0, 0)])
            elif options.opt4_constant_synthesis:
                patterns.append(
                    _patterns_for_candidate(spec_state, natural, cand, options)
                )
            else:
                patterns.append([FREE_PATTERN])
        states.append(
            SkelState(sid, name, tuple(spec_state.extracts), candidates, patterns)
        )

    # Auxiliary states for key splitting: only for units whose natural key
    # exceeds the device key width (or lookahead window).
    for name in order:
        spec_state = spec.states[name]
        natural_w = spec_state.key_width
        if natural_w == 0 or natural_w <= device.key_limit:
            continue
        import math

        needed = min(
            options.max_aux_states_per_state,
            max(
                math.ceil(natural_w / device.key_limit) - 1,
                _distinct_high_groups(spec_state, device.key_limit),
            ),
        )
        unit = states[unit_sids[name]]
        for i in range(needed):
            sid = len(states)
            aux_candidates = [
                c for c in unit.candidates if c.parts
            ]
            aux_patterns: List[List[object]] = []
            for cand in aux_candidates:
                if options.opt4_constant_synthesis:
                    aux_patterns.append(
                        _patterns_for_candidate(
                            spec_state, spec_state.key, cand, options
                        )
                    )
                else:
                    aux_patterns.append([FREE_PATTERN])
            states.append(
                SkelState(
                    sid,
                    f"{name}__aux{i}",
                    (),
                    list(aux_candidates),
                    aux_patterns,
                    is_aux=True,
                    unit_sid=unit.sid,
                )
            )

    from ..ir.analysis import max_parse_depth

    base_depth = max_parse_depth(spec, loop_unroll=_max_stack_depth(spec))
    # Any single run can pass through each unit's aux chain at most once;
    # a chain is at most ceil(key_width / key_limit) - 1 long.
    import math

    chain_total = sum(
        max(0, math.ceil(spec.states[n].key_width / device.key_limit) - 1)
        for n in order
        if spec.states[n].key_width > 0
    )
    loop_extra = 0
    if any(f.is_stack for f in spec.fields.values()):
        # Looping states revisit their aux chain once per stack instance.
        loop_extra = chain_total * (_max_stack_depth(spec) - 1)
    unroll = options.max_unroll_steps or (base_depth + chain_total + loop_extra + 2)

    start_name = spec.start
    return Skeleton(
        spec=spec,
        device=device,
        options=options,
        states=states,
        num_entries=num_entries,
        stage_budget=stage_budget,
        allow_loops=allow_loops,
        unroll_steps=unroll,
        start_sid=unit_sids[start_name],
    )


def _distinct_high_groups(spec_state: SpecState, key_limit: int) -> int:
    """How many distinct high-part groups a split at key_limit creates —
    each may need its own auxiliary check state (Figure 4 Step 2)."""
    widths = [k.width for k in spec_state.key]
    total = sum(widths)
    if total <= key_limit:
        return 0
    cut = total - key_limit
    highs = set()
    for rule in spec_state.rules:
        value, mask = rule.combined_value_mask(widths)
        if mask == 0:
            continue
        highs.add(value >> cut)
    return min(len(highs), 3)


def _max_stack_depth(spec: ParserSpec) -> int:
    depths = [f.stack_depth for f in spec.fields.values() if f.is_stack]
    return max(depths) if depths else 4
