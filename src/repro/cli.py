"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``compile``  — compile a parser source file for a target device and emit
  the synthesized program (human-readable, vendor config, or JSON);
* ``simulate`` — run the reference simulator on an input bitstream;
* ``validate`` — compile then run the Figure 22 random-simulation check;
* ``bench``    — regenerate one of the paper's tables from the harness;
* ``cache``    — inspect/clear/verify a persistent compile cache directory;
* ``sat``      — run the standalone CDCL solver on DIMACS input (profiling
  and triage for the synthesis substrate);
* ``serve``    — run the compile service on a spool directory (see
  :mod:`repro.serve`): admission control, request coalescing, classified
  retry, and a crash-safe job journal; ``--owner-id`` joins a fleet;
* ``fleet``    — supervise N ``serve`` processes sharing one spool
  directory: leases with fencing tokens, job reclamation, crash
  restarts under a budget, graceful drain;
* ``submit``   — spool a compile request to a ``serve`` directory;
* ``status``   — print a submitted job's journaled state;
* ``result``   — print a finished job's synthesized program.

The ``submit``/``status``/``result`` commands talk to the server purely
through files (atomic envelopes in the service directory), so ``status``
and ``result`` work even when no server is running.

Interrupting a checkpointed compile (Ctrl-C) flushes a final checkpoint
and prints the ``--resume`` invocation hint before exiting with the
conventional SIGINT status (130).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from .core import (
    CompileOptions,
    STATUS_FAULT,
    STATUS_TIMEOUT,
    compile_spec,
    portfolio_compile,
)
from .core.validate import random_simulation_check
from .obs import Tracer, format_profile, use_tracer
from .persist import CompileCache, flush_active
from .hw import (
    custom_profile,
    emit_ipu,
    emit_json,
    emit_tofino,
    ipu_profile,
    tofino_profile,
    trident_profile,
)
from .ir import Bits, parse_spec, simulate_spec


def make_device(args: argparse.Namespace):
    builders = {
        "tofino": lambda: tofino_profile(
            key_limit=args.key_limit,
            tcam_limit=args.tcam_limit,
            lookahead_limit=args.lookahead_limit,
            extract_limit=args.extract_limit,
        ),
        "ipu": lambda: ipu_profile(
            key_limit=args.key_limit,
            tcam_per_stage_limit=args.tcam_limit,
            lookahead_limit=args.lookahead_limit,
            stage_limit=args.stage_limit,
            extract_limit=args.extract_limit,
        ),
        "trident": lambda: trident_profile(
            key_limit=args.key_limit,
            tcam_per_stage_limit=args.tcam_limit,
            lookahead_limit=args.lookahead_limit,
            stage_limit=args.stage_limit,
        ),
        "custom": lambda: custom_profile(
            key_limit=args.key_limit,
            tcam_limit=args.tcam_limit,
            lookahead_limit=args.lookahead_limit,
            extract_limit=args.extract_limit,
        ),
    }
    return builders[args.target]()


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target",
        choices=["tofino", "ipu", "trident", "custom"],
        default="tofino",
    )
    parser.add_argument("--key-limit", type=int, default=16)
    parser.add_argument("--tcam-limit", type=int, default=64)
    parser.add_argument("--lookahead-limit", type=int, default=16)
    parser.add_argument("--stage-limit", type=int, default=10)
    parser.add_argument("--extract-limit", type=int, default=256)


def _make_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    if getattr(args, "trace", None) or getattr(args, "profile", False):
        return Tracer()
    return None


def _emit_trace(tracer: Optional[Tracer], args: argparse.Namespace) -> None:
    if tracer is None:
        return
    tracer.finish()
    if getattr(args, "trace", None):
        try:
            Path(args.trace).write_text(tracer.export_json() + "\n")
        except OSError as exc:
            print(f"could not write trace to {args.trace}: {exc}",
                  file=sys.stderr)
    if getattr(args, "profile", False):
        print(format_profile(tracer), file=sys.stderr)


def _print_failure(result, args: argparse.Namespace) -> None:
    """Human-readable failure line, with timeout/fault outcomes called
    out explicitly (they are operational conditions, not spec problems)."""
    if result.status == STATUS_TIMEOUT:
        budget = (
            f" (wall-clock budget {args.timeout:g}s)"
            if getattr(args, "timeout", None)
            else ""
        )
        print(f"compilation timed out{budget}: {result.message}",
              file=sys.stderr)
    elif result.status == STATUS_FAULT:
        print(f"compilation failed on a fault: {result.message}",
              file=sys.stderr)
    else:
        print(f"compilation failed: {result.status}: {result.message}",
              file=sys.stderr)
    if getattr(result, "checkpoint_path", ""):
        print(
            f"progress saved to {result.checkpoint_path}; "
            "re-run with --resume to continue from it",
            file=sys.stderr,
        )


def cmd_compile(args: argparse.Namespace) -> int:
    spec = parse_spec(Path(args.source).read_text())
    device = make_device(args)
    if args.certify and not (args.cache_dir or args.checkpoint_dir):
        print(
            "warning: --certify without --cache-dir/--checkpoint-dir "
            "logs proofs but has nowhere to persist certificates",
            file=sys.stderr,
        )
    options = CompileOptions(
        total_max_seconds=args.timeout,
        parallel_workers=args.jobs,
        schedule=getattr(args, "schedule", "steal"),
        seed=args.seed,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        checkpoint_interval_seconds=args.checkpoint_interval,
        cache_dir=args.cache_dir,
        test_reuse=not args.no_test_reuse,
        certify=args.certify,
        eqsat=args.eqsat == "on",
    )
    tracer = _make_tracer(args)
    with use_tracer(tracer):
        if args.jobs > 1:
            result = portfolio_compile(spec, device, options)
        else:
            result = compile_spec(spec, device, options)
    _emit_trace(tracer, args)
    if not result.ok:
        _print_failure(result, args)
        return 1
    assert result.program is not None
    if args.emit == "text":
        print(result.program.describe())
    elif args.emit == "json":
        print(emit_json(result.program))
    elif args.emit == "config":
        emitter = emit_ipu if device.is_pipelined else emit_tofino
        print(emitter(result.program))
    elif args.emit == "dot":
        from .ir.dot import program_to_dot

        print(program_to_dot(result.program))
    if args.report:
        from .hw.resources import resource_report

        print(resource_report(result.program, device).render(),
              file=sys.stderr)
    if result.certificate_path:
        print(
            f"# equivalence certificate: {result.certificate_path} "
            "(re-check with `repro cache verify --deep`)",
            file=sys.stderr,
        )
    print(f"# {result.summary_row()}", file=sys.stderr)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    spec = parse_spec(Path(args.source).read_text())
    text = args.input
    if text.startswith("0x"):
        raw = bytes.fromhex(text[2:])
        bits = Bits.from_bytes(raw)
    else:
        bits = Bits.from_str(text.removeprefix("0b"))
    result = simulate_spec(spec, bits)
    print(f"outcome: {result.outcome}")
    print(f"consumed: {result.consumed} bits")
    print(f"path: {' -> '.join(result.path)}")
    for key in sorted(result.od):
        width = result.od_widths[key]
        print(f"  {key} = {result.od[key]:#x} ({width} bits)")
    return 0 if result.outcome != "overrun" else 1


def cmd_ir_canon(args: argparse.Namespace) -> int:
    from .ir.eqsat import EGraph, EqsatBudget, saturate_spec

    spec = parse_spec(Path(args.source).read_text())
    budget = EqsatBudget(
        max_nodes=args.max_nodes, max_iterations=args.max_iterations
    )
    if args.dot:
        from .ir.dot import egraph_to_dot

        graph = EGraph(spec)
        stats = graph.saturate(budget)
        print(egraph_to_dot(graph))
        for row in graph.class_summary():
            names = ", ".join(sorted(row["names"]))
            print(
                f"# class c{row['class']}: {row['nodes']} node(s) "
                f"[{names}]",
                file=sys.stderr,
            )
    else:
        canon, stats = saturate_spec(spec, budget)
        print(canon.to_source())
    summary = " ".join(f"{k}={v}" for k, v in stats.as_dict().items())
    print(f"# eqsat: {summary}", file=sys.stderr)
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    spec = parse_spec(Path(args.source).read_text())
    device = make_device(args)
    options = CompileOptions(total_max_seconds=args.timeout, seed=args.seed)
    tracer = _make_tracer(args)
    with use_tracer(tracer):
        result = compile_spec(spec, device, options)
    _emit_trace(tracer, args)
    if not result.ok:
        _print_failure(result, args)
        return 1
    report = random_simulation_check(
        spec, result.program, samples=args.samples, seed=args.seed
    )
    print(report)
    return 0 if report.passed else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from .harness import (
        format_table3,
        format_table4,
        format_table5,
        run_table3,
        run_table4,
        run_table5,
    )

    if args.table == "table3":
        rows = run_table3(
            args.device,
            include_orig=args.orig,
            orig_cap_seconds=args.orig_cap,
            progress=lambda line: print(line, file=sys.stderr),
            cache_dir=args.cache_dir,
        )
        print(format_table3(rows))
    elif args.table == "table4":
        print(format_table4(run_table4()))
    elif args.table == "table5":
        print(format_table5(run_table5(args.device)))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = CompileCache(args.cache_dir)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache directory: {args.cache_dir}")
        print(f"entries: {stats['entries']}")
        print(f"certificates: {stats['certificates']}")
        print(f"bytes: {stats['bytes']}")
        print(f"quarantined: {stats['quarantined']}")
        return 0
    if args.action == "clear":
        if args.quarantined:
            removed = cache.purge_quarantined()
            print(
                f"removed {removed} quarantined "
                f"file{'' if removed == 1 else 's'}"
            )
            return 0
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    # verify: re-read every entry through the integrity-checking loader;
    # corrupt entries are quarantined as a side effect (and reported, so
    # the numbers agree with a subsequent `cache stats`).
    report = cache.verify(deep=args.deep)
    print(
        f"verified {report['ok']} entr{'y' if report['ok'] == 1 else 'ies'}"
        f", {report['invalid']} corrupt"
        f" ({report['quarantined']} quarantined)"
    )
    failed = report["invalid"]
    if args.deep:
        print(
            f"certificates: {report['cert_ok']} ok, "
            f"{report['cert_invalid']} invalid, "
            f"{report['witnesses_checked']} witness test(s) re-run"
        )
        failed += report["cert_invalid"]
    return 0 if failed == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .resilience import injection
    from .serve import CompileService, SpoolServer

    if args.inject:
        injection.configure_from_string(args.inject)
    service = CompileService(
        args.dir,
        workers=args.workers,
        capacity=args.capacity,
        per_tenant=args.per_tenant,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        owner_id=args.owner_id,
        lease_ttl=args.lease_ttl,
    )
    server = SpoolServer(args.dir, service)
    if args.owner_id:
        # Fleet member: SIGTERM means "drain gracefully" — the run loop
        # picks the stop file up, finishes/releases held leases, exits 0.
        def _drain(signum, frame):  # noqa: ARG001
            (Path(args.dir) / f"stop-{args.owner_id}").touch()

        try:
            signal.signal(signal.SIGTERM, _drain)
        except ValueError:
            pass
    who = f" as {args.owner_id}" if args.owner_id else ""
    print(
        f"serving {args.dir}{who} with {args.workers} worker(s), "
        f"capacity {args.capacity}, per-tenant quota {args.per_tenant}",
        file=sys.stderr,
    )
    handled = server.run(duration=args.duration)
    metrics = service.metrics()
    print(
        f"served {handled} request(s); "
        f"counters: {metrics['counters']}",
        file=sys.stderr,
    )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from .serve import FleetSupervisor

    supervisor = FleetSupervisor(
        args.dir,
        workers=args.workers,
        threads=args.threads,
        capacity=args.capacity,
        per_tenant=args.per_tenant,
        lease_ttl=args.lease_ttl,
        restart_budget=args.restart_budget,
        drain_timeout=args.drain_timeout,
        inject=args.inject,
    )
    print(
        f"fleet of {args.workers} server(s) on {args.dir} "
        f"({args.threads} thread(s) each, lease ttl {args.lease_ttl:g}s)",
        file=sys.stderr,
    )
    summary = supervisor.run(duration=args.duration)
    restarts = sum(summary["restarts"].values())
    print(
        f"fleet drained after {summary['elapsed_seconds']:g}s; "
        f"{restarts} restart(s); exit codes: {summary['exit_codes']}",
        file=sys.stderr,
    )
    return 0


def _parse_option_overrides(pairs) -> dict:
    """``KEY=VALUE`` pairs, values parsed as JSON with a string fallback
    (so ``seed=7`` and ``certify=true`` both do the obvious thing)."""
    import json

    options = {}
    for pair in pairs or []:
        key, sep, value = pair.partition("=")
        if not sep:
            raise ValueError(f"expected KEY=VALUE, got {pair!r}")
        try:
            options[key] = json.loads(value)
        except ValueError:
            options[key] = value
    return options


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve import SpoolClient

    client = SpoolClient(args.dir)
    try:
        options = _parse_option_overrides(args.option)
    except ValueError as exc:
        print(f"bad --option: {exc}", file=sys.stderr)
        return 1
    if args.timeout is not None:
        options["total_max_seconds"] = args.timeout
    if args.seed is not None:
        options["seed"] = args.seed
    req_id = client.submit(
        Path(args.source).read_text(),
        make_device(args),
        tenant=args.tenant,
        options=options,
        deadline_seconds=args.deadline,
    )
    print(req_id)
    if not args.wait:
        return 0
    ack = client.wait_ack(req_id, timeout=args.wait_timeout)
    if ack is None:
        print("no ack (is a server running on this directory?)",
              file=sys.stderr)
        return 2
    if not ack.get("accepted"):
        retry = ack.get("retry_after")
        hint = "" if retry is None else f" (retry after {retry:g}s)"
        print(f"rejected: {ack.get('reason', '?')}{hint}", file=sys.stderr)
        return 1
    job = client.wait_job(req_id, timeout=args.wait_timeout)
    if job is None or not job.terminal:
        print("job not finished before --wait-timeout", file=sys.stderr)
        return 2
    return _print_job(job, emit=None)


def _print_job(job, emit: Optional[str]) -> int:
    """Render a journaled job; exit code mirrors its state."""
    flags = []
    if job.coalesced_into:
        flags.append(f"coalesced into {job.coalesced_into}")
    if job.degraded:
        flags.append("degraded")
    suffix = f" ({', '.join(flags)})" if flags else ""
    print(
        f"# job {job.job_id} [{job.tenant}] {job.state}"
        f"{': ' + job.failure_kind if job.failure_kind else ''}{suffix}",
        file=sys.stderr,
    )
    if job.message:
        print(f"# {job.message}", file=sys.stderr)
    if job.state == "failed":
        return 1
    if not job.terminal:
        return 2
    if job.result_doc and job.result_doc.get("program") and emit:
        from .persist.serialize import program_from_doc

        program = program_from_doc(job.result_doc["program"])
        if emit == "json":
            print(emit_json(program))
        else:
            print(program.describe())
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    from .serve import SpoolClient

    job = SpoolClient(args.dir).job(args.job_id)
    if job is None:
        print(f"unknown job {args.job_id}", file=sys.stderr)
        return 1
    return _print_job(job, emit=None)


def cmd_result(args: argparse.Namespace) -> int:
    from .serve import SpoolClient

    job = SpoolClient(args.dir).job(args.job_id)
    if job is None:
        print(f"unknown job {args.job_id}", file=sys.stderr)
        return 1
    return _print_job(job, emit=args.emit)


def _emit_and_check_proof(
    args: argparse.Namespace, proof, num_vars: int, clauses
) -> Optional[int]:
    """Write/verify the DRAT refutation of an UNSAT solve.

    Returns an exit code to use instead of 20 when the proof fails its
    own check (the verdict must not be trusted then), else None.
    """
    drat = proof.to_drat()
    if args.proof is not None:
        try:
            Path(args.proof).write_text(drat)
            print(f"c proof written to {args.proof}", file=sys.stderr)
        except OSError as exc:
            print(f"could not write proof to {args.proof}: {exc}",
                  file=sys.stderr)
            return 1
    if args.check_proof:
        # The independent checker: reverse unit propagation over the
        # clauses as *parsed from the input file*, shared solver state
        # deliberately not consulted.  Round-tripping through DRAT text
        # also exercises the on-disk format.
        from .smt.sat import check_proof, parse_drat

        result = check_proof(num_vars, clauses, parse_drat(drat))
        if result.verified:
            # A comment line, so it lands next to the s-line it backs.
            print(
                f"c proof verified ({result.additions} additions, "
                f"{result.deletions} deletions)"
            )
        else:
            print(f"c proof check FAILED: {result.reason}", file=sys.stderr)
            return 1
    return None


def cmd_sat(args: argparse.Namespace) -> int:
    """Standalone SAT solving on DIMACS CNF, for profiling and triage.

    Prints the conventional competition ``s`` line; exit status follows
    the SAT-competition convention (10 SAT, 20 UNSAT, 0 unknown).
    """
    from .smt.sat import Budget, SatSolver, dump_solver, parse_dimacs

    want_proof = args.proof is not None or args.check_proof
    try:
        text = Path(args.cnf).read_text()
    except OSError as exc:
        print(f"cannot read {args.cnf}: {exc}", file=sys.stderr)
        return 1
    try:
        num_vars, clauses = parse_dimacs(text)
    except ValueError as exc:
        print(f"malformed DIMACS input: {exc}", file=sys.stderr)
        return 1
    solver = SatSolver()
    if want_proof:
        proof = solver.enable_proof()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            break
    simplify_stats = None
    if args.simplify and solver.ok:
        # Standalone solving is the one place nothing is incremental, so
        # no variable needs freezing.
        simplify_stats = solver.presimplify()
    if args.dump and solver.ok:
        Path(args.dump).write_text(dump_solver(solver))
    budget = None
    if args.max_conflicts is not None or args.max_seconds is not None:
        budget = Budget(
            max_conflicts=args.max_conflicts, max_seconds=args.max_seconds
        )
    result = solver.solve(budget=budget) if solver.ok else False
    if result is None:
        print("s UNKNOWN")
        code = 0
    elif result:
        # Verify the model against the original clauses before claiming
        # SAT — the simplifier's reconstruction must cover every input.
        model = solver.model()
        for clause in clauses:
            if not any(model[l >> 1] ^ bool(l & 1) for l in clause):
                print("s UNKNOWN")
                print("c model failed verification", file=sys.stderr)
                return 1
        print("s SATISFIABLE")
        assignment = " ".join(
            str(v + 1) if model[v] else str(-(v + 1))
            for v in range(num_vars)
        )
        print(f"v {assignment} 0" if assignment else "v 0")
        if want_proof:
            print("c satisfiable: no refutation to log", file=sys.stderr)
        code = 10
    else:
        print("s UNSATISFIABLE")
        code = 20
        if want_proof:
            rc = _emit_and_check_proof(args, proof, num_vars, clauses)
            if rc is not None:
                return rc
    if args.stats:
        for key, value in solver.stats().items():
            print(f"c {key} = {value}")
        if simplify_stats is not None:
            for key, value in simplify_stats.as_dict().items():
                print(f"c simplify.{key} = {value}")
    return code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParserHawk reproduction: synthesis-based parser compiler",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="compile a parser source")
    p_compile.add_argument("source")
    _add_device_args(p_compile)
    p_compile.add_argument(
        "--emit", choices=["text", "config", "json", "dot"], default="text"
    )
    p_compile.add_argument(
        "--report", action="store_true",
        help="print a resource-utilization report to stderr",
    )
    p_compile.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget (CompileOptions.total_max_seconds); the "
        "portfolio returns its best result so far or a timeout naming "
        "the arms still running",
    )
    p_compile.add_argument(
        "--jobs", "--parallel-workers", dest="jobs", type=int, default=1,
        metavar="N",
        help="portfolio worker processes (1 = deterministic sequential)",
    )
    p_compile.add_argument(
        "--schedule", choices=["steal", "static"], default="steal",
        help="portfolio execution with --jobs > 1: 'steal' races "
        "migratable (arm, budget slice) work units over a shared "
        "counterexample bus; 'static' pins each arm to one pool worker "
        "(A/B baseline)",
    )
    p_compile.add_argument("--seed", type=int, default=0)
    p_compile.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="persist durable CEGIS/budget-search checkpoints under DIR "
        "(atomic, checksummed); timeouts, faults, and Ctrl-C then print "
        "a --resume hint",
    )
    p_compile.add_argument(
        "--resume", action="store_true",
        help="reload a matching checkpoint from --checkpoint-dir: prior "
        "counterexamples are replayed and budgets proved UNSAT are "
        "skipped",
    )
    p_compile.add_argument(
        "--checkpoint-interval", type=float, default=0.0, metavar="SECONDS",
        help="minimum seconds between checkpoint flushes (0 = every event)",
    )
    p_compile.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed compile cache: identical "
        "(spec, device, solver options) compiles are served from DIR "
        "instead of re-synthesized",
    )
    p_compile.add_argument(
        "--certify", action="store_true",
        help="certifying compile: DRAT proof logging in every CEGIS "
        "solver, an offline-checkable equivalence certificate next to "
        "the cache entry (with --cache-dir), and proof bundles for "
        "budgets proved UNSAT (with --checkpoint-dir)",
    )
    p_compile.add_argument(
        "--no-test-reuse", action="store_true",
        help="disable the incremental-synthesis test pool (counterexamples "
        "and seed tests are re-discovered at every budget instead of "
        "being replayed); mainly for A/B perf measurement",
    )
    p_compile.add_argument(
        "--eqsat", choices=["on", "off"], default="off",
        help="equality-saturation normalization: collapse symmetric "
        "spec writings to one canonical form before skeleton "
        "enumeration (semantic flag — cache/checkpoint keys differ "
        "from --eqsat off)",
    )
    p_compile.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write the structured span tree (JSON) to PATH",
    )
    p_compile.add_argument(
        "--profile", action="store_true",
        help="print a per-span-kind timing/counter summary to stderr",
    )
    p_compile.set_defaults(func=cmd_compile)

    p_sim = sub.add_parser("simulate", help="run the reference simulator")
    p_sim.add_argument("source")
    p_sim.add_argument(
        "input", help="input bitstream: 0b0101... or 0xAB... (byte aligned)"
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_ir = sub.add_parser(
        "ir", help="inspect the parser-spec IR (equality saturation)"
    )
    ir_sub = p_ir.add_subparsers(dest="ir_command", required=True)
    p_ir_canon = ir_sub.add_parser(
        "canon",
        help="equality-saturate a spec and print its canonical form "
        "(or the saturated e-graph with --dot)",
    )
    p_ir_canon.add_argument("source")
    p_ir_canon.add_argument(
        "--dot", action="store_true",
        help="emit the saturated e-graph as Graphviz DOT (one cluster "
        "per e-class) instead of the extracted canonical spec",
    )
    p_ir_canon.add_argument(
        "--max-nodes", type=int, default=4096,
        help="saturation node budget (EqsatBudget.max_nodes)",
    )
    p_ir_canon.add_argument(
        "--max-iterations", type=int, default=24,
        help="saturation iteration budget (EqsatBudget.max_iterations)",
    )
    p_ir_canon.set_defaults(func=cmd_ir_canon)

    p_val = sub.add_parser(
        "validate", help="compile + Figure 22 random check"
    )
    p_val.add_argument("source")
    _add_device_args(p_val)
    p_val.add_argument("--samples", type=int, default=500)
    p_val.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock compile budget (CompileOptions.total_max_seconds)",
    )
    p_val.add_argument("--seed", type=int, default=0)
    p_val.add_argument("--trace", metavar="PATH", default=None)
    p_val.add_argument("--profile", action="store_true")
    p_val.set_defaults(func=cmd_validate)

    p_bench = sub.add_parser("bench", help="regenerate a paper table")
    p_bench.add_argument(
        "table", choices=["table3", "table4", "table5"]
    )
    p_bench.add_argument(
        "--device", choices=["tofino", "ipu"], default="tofino"
    )
    p_bench.add_argument("--orig", action="store_true")
    p_bench.add_argument("--orig-cap", type=float, default=20.0)
    p_bench.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="serve previously compiled benchmark rows from a persistent "
        "compile cache at DIR (and populate it)",
    )
    p_bench.set_defaults(func=cmd_bench)

    p_cache = sub.add_parser(
        "cache", help="inspect a persistent compile cache"
    )
    p_cache.add_argument("action", choices=["stats", "clear", "verify"])
    p_cache.add_argument("cache_dir", metavar="DIR")
    p_cache.add_argument(
        "--deep", action="store_true",
        help="verify only: additionally re-validate every equivalence "
        "certificate offline — re-parse the spec, rebuild the program, "
        "re-check fingerprints/device constraints, and re-run every "
        "witness test through both simulators (no solver involved)",
    )
    p_cache.add_argument(
        "--quarantined", action="store_true",
        help="clear only: delete quarantined (.corrupt-N) files instead "
        "of live entries",
    )
    p_cache.set_defaults(func=cmd_cache)

    p_sat = sub.add_parser(
        "sat", help="run the standalone CDCL solver on a DIMACS file"
    )
    sat_sub = p_sat.add_subparsers(dest="sat_command", required=True)
    p_sat_solve = sat_sub.add_parser(
        "solve", help="solve a DIMACS CNF and print the s-line"
    )
    p_sat_solve.add_argument("cnf", help="path to a DIMACS .cnf file")
    p_sat_solve.add_argument(
        "--simplify",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="run SatELite-style preprocessing (subsumption, "
        "self-subsuming resolution, bounded variable elimination) "
        "before search",
    )
    p_sat_solve.add_argument(
        "--stats", action="store_true",
        help="print solver and simplifier counters as 'c' comment lines",
    )
    p_sat_solve.add_argument(
        "--max-conflicts", type=int, default=None, metavar="N",
        help="budget: give up (s UNKNOWN) after N conflicts",
    )
    p_sat_solve.add_argument(
        "--max-seconds", type=float, default=None, metavar="SECONDS",
        help="budget: give up (s UNKNOWN) after this much wall clock",
    )
    p_sat_solve.add_argument(
        "--dump", metavar="PATH", default=None,
        help="write the (possibly preprocessed) formula the search "
        "actually ran on back out as DIMACS",
    )
    p_sat_solve.add_argument(
        "--proof", metavar="PATH", default=None,
        help="log a DRAT proof during the solve and, on UNSAT, write "
        "the refutation to PATH",
    )
    p_sat_solve.add_argument(
        "--check-proof", action="store_true",
        help="on UNSAT, re-verify the DRAT refutation with the "
        "independent reverse-unit-propagation checker against the "
        "original CNF (exit 1 if it does not check)",
    )
    p_sat_solve.set_defaults(func=cmd_sat)

    p_serve = sub.add_parser(
        "serve", help="run the compile service on a spool directory"
    )
    p_serve.add_argument(
        "dir", metavar="DIR",
        help="service directory (inbox/, acks/, journal/, cache/, ckpt/)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=2,
        help="concurrent compile workers (threads)",
    )
    p_serve.add_argument(
        "--capacity", type=int, default=32,
        help="bounded queue: max queued+running primary jobs before "
        "submissions are rejected with a retry-after hint",
    )
    p_serve.add_argument(
        "--per-tenant", type=int, default=8, metavar="N",
        help="max live jobs (coalesced included) per tenant",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive faulting outcomes that open a per-(tenant, "
        "compile key) circuit breaker",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0, metavar="SECONDS",
        help="how long an open breaker rejects before admitting a probe",
    )
    p_serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="serve for this long then shut down gracefully "
        "(default: until DIR/stop appears)",
    )
    p_serve.add_argument(
        "--inject", metavar="SPEC", default=None,
        help="arm deterministic fault injection: comma-separated "
        "site:FaultName[:times[:match]] entries (soak testing)",
    )
    p_serve.add_argument(
        "--owner-id", default=None, metavar="ID",
        help="fleet mode: join DIR as this named instance (leases, "
        "fencing, reclamation; see 'repro fleet')",
    )
    p_serve.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="SECONDS",
        help="fleet mode: heartbeat TTL before a lease may be stolen",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_fleet = sub.add_parser(
        "fleet",
        help="supervise N serve processes sharing one spool directory",
    )
    p_fleet.add_argument(
        "dir", metavar="DIR",
        help="shared service directory (same layout as 'serve')",
    )
    p_fleet.add_argument(
        "--workers", type=int, default=3, metavar="N",
        help="server processes to supervise",
    )
    p_fleet.add_argument(
        "--threads", type=int, default=2, metavar="N",
        help="compile worker threads per server process",
    )
    p_fleet.add_argument("--capacity", type=int, default=32)
    p_fleet.add_argument("--per-tenant", type=int, default=8, metavar="N")
    p_fleet.add_argument(
        "--lease-ttl", type=float, default=5.0, metavar="SECONDS",
        help="heartbeat TTL before a worker's lease may be stolen",
    )
    p_fleet.add_argument(
        "--restart-budget", type=int, default=8, metavar="N",
        help="max respawns per worker slot before giving up on it",
    )
    p_fleet.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="grace period for workers to finish after a drain request",
    )
    p_fleet.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="supervise for this long then drain "
        "(default: until SIGTERM or DIR/stop appears)",
    )
    p_fleet.add_argument(
        "--inject", metavar="SPEC", default=None,
        help="fault-injection spec passed through to every worker",
    )
    p_fleet.set_defaults(func=cmd_fleet)

    p_submit = sub.add_parser(
        "submit", help="spool a compile request to a serve directory"
    )
    p_submit.add_argument("dir", metavar="DIR", help="service directory")
    p_submit.add_argument("source", help="parser source file")
    _add_device_args(p_submit)
    p_submit.add_argument("--tenant", default="default")
    p_submit.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="end-to-end deadline from submission; propagated into the "
        "compiler's wall-clock budget",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt compile budget (total_max_seconds override)",
    )
    p_submit.add_argument("--seed", type=int, default=None)
    p_submit.add_argument(
        "--option", action="append", metavar="KEY=VALUE",
        help="whitelisted CompileOptions override (repeatable); values "
        "are parsed as JSON with a string fallback",
    )
    p_submit.add_argument(
        "--wait", action="store_true",
        help="block until the job is acked and terminal",
    )
    p_submit.add_argument(
        "--wait-timeout", type=float, default=300.0, metavar="SECONDS",
    )
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="print a submitted job's journaled state"
    )
    p_status.add_argument("dir", metavar="DIR", help="service directory")
    p_status.add_argument("job_id")
    p_status.set_defaults(func=cmd_status)

    p_result = sub.add_parser(
        "result", help="print a finished job's synthesized program"
    )
    p_result.add_argument("dir", metavar="DIR", help="service directory")
    p_result.add_argument("job_id")
    p_result.add_argument(
        "--emit", choices=["text", "json"], default="text"
    )
    p_result.set_defaults(func=cmd_result)

    return parser


def main(argv: Optional[list] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(
        args, "checkpoint_dir", None
    ):
        parser.error("--resume requires --checkpoint-dir")
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Make Ctrl-C durable: flush every live checkpoint manager so the
        # interrupted compile can be continued, then exit with the
        # conventional 128+SIGINT status.
        flush_active()
        if getattr(args, "checkpoint_dir", None):
            print(
                f"interrupted; progress saved under {args.checkpoint_dir} "
                "— re-run with --resume to continue",
                file=sys.stderr,
            )
        else:
            print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
