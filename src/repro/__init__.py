"""ParserHawk reproduction: a hardware-aware parser generator using
program synthesis (SIGCOMM 2025).

Public API quick tour::

    from repro import parse_spec, compile_spec, tofino_profile

    spec = parse_spec(P4_SUBSET_SOURCE)
    result = compile_spec(spec, tofino_profile())
    print(result.program.describe())

Packages:

* :mod:`repro.smt`       — from-scratch CDCL SAT + bit-vector SMT substrate
* :mod:`repro.lang`      — P4-subset frontend (lexer, parser, AST)
* :mod:`repro.ir`        — semantic IR, reference simulator, analyses, rewrites
* :mod:`repro.hw`        — TCAM primitives, device profiles, implementation
  programs, back-end code generators
* :mod:`repro.core`      — the ParserHawk compiler: encoder, CEGIS, verifier,
  optimizations, post-synthesis optimizer
* :mod:`repro.baselines` — DPParserGen (Gibb et al.) and emulated commercial
  Tofino/IPU compilers
* :mod:`repro.packets`   — Scapy-substitute packet crafting
* :mod:`repro.bmv2`      — behavioural-model substitute for end-to-end checks
* :mod:`repro.benchgen`  — the paper's benchmark suite and mutation driver
* :mod:`repro.harness`   — regenerates every table and figure
"""

from .core import (
    CompileOptions,
    CompileResult,
    ParserHawkCompiler,
    compile_spec,
    random_simulation_check,
    verify_equivalent,
)
from .hw import (
    DeviceProfile,
    TcamProgram,
    custom_profile,
    ipu_profile,
    tofino_profile,
    trident_profile,
)
from .ir import Bits, ParserSpec, parse_spec, simulate_spec

__version__ = "1.0.0"

__all__ = [
    "Bits",
    "CompileOptions",
    "CompileResult",
    "DeviceProfile",
    "ParserHawkCompiler",
    "ParserSpec",
    "TcamProgram",
    "compile_spec",
    "custom_profile",
    "ipu_profile",
    "parse_spec",
    "random_simulation_check",
    "simulate_spec",
    "tofino_profile",
    "trident_profile",
    "verify_equivalent",
    "__version__",
]
