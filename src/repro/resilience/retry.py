"""Reusable retry policy: bounded attempts, exponential backoff,
deterministic jitter.

Two layers of the pipeline retry the same way for different reasons —
the serve layer re-runs compiles that died on a *transient*
:class:`CompileFault` (a crashed worker, a broken pool), and the
checkpoint manager gives up on persistence after repeated consecutive
write failures.  Both need the same three ingredients:

* a **policy** (:class:`RetryPolicy`): how many attempts are allowed and
  how long to wait between them.  Backoff is exponential with a
  *deterministic* jitter — the jitter fraction is derived by hashing
  ``(seed, key, attempt)``, never from a live RNG, so a retry schedule
  is reproducible run-to-run and testable without statistical slop;
* a **state** (:class:`RetryState`): the mutable attempt counter one
  operation threads through its retries, with an injectable ``sleep``
  (and no sleeping at all for callers like the checkpoint manager that
  only want the give-up decision);
* a **classification**: which failures are worth retrying at all.
  :func:`transient_fault` says yes for the faults that describe the
  *environment* dying (worker crash, broken pool, exhausted solver
  resources) and no for everything that describes the *problem* (an
  infeasible spec is infeasible on every retry).

Deliberately stdlib-only and free of ``repro.core`` imports, like the
rest of :mod:`repro.resilience` — the serve layer, the persistence
layer and tests all sit above it.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .faults import (
    CompileFault,
    PoolBroken,
    SolverResourceExhausted,
    WorkerCrash,
)

# Faults describing the environment (retry can help), not the problem.
TRANSIENT_FAULTS = (WorkerCrash, PoolBroken, SolverResourceExhausted)


def transient_fault(exc: BaseException) -> bool:
    """Whether retrying the failed operation could possibly succeed.

    A generic :class:`CompileFault` (e.g. an injected fault with no more
    specific class) is treated as transient — the taxonomy reserves
    *non*-retryable outcomes for planned results (infeasible, timeout),
    which are never raised as faults.  ``ArmTimeout`` is deliberately
    NOT transient: it means a deadline was spent, and retrying without
    new budget only spends more.
    """
    from .faults import ArmTimeout

    if isinstance(exc, TRANSIENT_FAULTS):
        return True
    if isinstance(exc, ArmTimeout):
        return False
    return isinstance(exc, CompileFault)


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry and how long to back off in between.

    ``max_attempts`` counts *attempts*, not retries: 3 means one initial
    try plus two retries.  The delay before attempt ``n+1`` (``n`` >= 1
    failures so far) is ``base_delay * multiplier**(n-1)``, capped at
    ``max_delay``, scaled by a deterministic jitter factor in
    ``[1 - jitter, 1 + jitter]`` derived from ``(seed, key, n)``.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25
    seed: int = 0

    def jitter_factor(self, attempt: int, key: str = "") -> float:
        """The deterministic jitter multiplier for ``attempt`` (1-based)."""
        if self.jitter <= 0:
            return 1.0
        material = f"{self.seed}:{key}:{attempt}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return 1.0 - self.jitter + 2.0 * self.jitter * unit

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait after the ``attempt``-th consecutive failure."""
        if attempt < 1:
            return 0.0
        raw = self.base_delay * (self.multiplier ** (attempt - 1))
        return min(self.max_delay, raw) * self.jitter_factor(attempt, key)

    def start(
        self,
        key: str = "",
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ) -> "RetryState":
        """A fresh :class:`RetryState` bound to this policy."""
        return RetryState(self, key=key, sleep=sleep)


class RetryState:
    """One operation's live retry bookkeeping.

    ``record_failure`` returns True while the policy allows another
    attempt; ``record_success`` resets the consecutive-failure count
    (the checkpoint manager's "self-heal on a good write" behaviour).
    ``backoff`` sleeps the policy's delay for the current failure count
    (no-op when constructed with ``sleep=None``) and returns it.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        key: str = "",
        sleep: Optional[Callable[[float], None]] = time.sleep,
    ) -> None:
        self.policy = policy
        self.key = key
        self._sleep = sleep
        self.consecutive = 0
        self.total_failures = 0

    @property
    def attempts(self) -> int:
        """Attempts spent in the current consecutive-failure streak."""
        return self.consecutive

    @property
    def exhausted(self) -> bool:
        return self.consecutive >= self.policy.max_attempts

    def record_success(self) -> None:
        self.consecutive = 0

    def record_failure(self) -> bool:
        """Note a failure; True if another attempt is still allowed."""
        self.consecutive += 1
        self.total_failures += 1
        return self.consecutive < self.policy.max_attempts

    def next_delay(self) -> float:
        """The backoff the *next* :meth:`backoff` call would sleep."""
        return self.policy.delay(self.consecutive, self.key)

    def backoff(self, cap: Optional[float] = None) -> float:
        """Sleep the current backoff (optionally capped); returns it."""
        delay = self.next_delay()
        if cap is not None:
            delay = max(0.0, min(delay, cap))
        if self._sleep is not None and delay > 0:
            self._sleep(delay)
        return delay


__all__ = [
    "RetryPolicy",
    "RetryState",
    "TRANSIENT_FAULTS",
    "transient_fault",
]
