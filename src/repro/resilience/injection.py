"""Deterministic fault injection for the compile pipeline.

Every recovery path in the resilience layer must be testable without a
real crash, hang, or out-of-memory condition.  This module provides a
process-global registry of *injected faults* keyed by **site** — a
stable string naming an instrumented pipeline location:

================  ====================================================
site              fired from
================  ====================================================
``sat.solve``     :meth:`repro.smt.solver.Solver.check`
``bitblast``      :meth:`repro.smt.bitblast.BitBlaster.assert_term`
``encoder``       ``repro.core.encoder.SymbolicProgram`` construction
``portfolio.worker``  ``repro.core.parallel._run_subproblem`` (per arm)
``portfolio.pool``    process-pool creation in ``portfolio_compile``
``persist.write``     :func:`repro.persist.atomic.write_atomic`
``persist.read``      :func:`repro.persist.atomic.load_envelope`
``cache.store``       :meth:`repro.persist.cache.CompileCache.store`
``serve.enqueue``     ``repro.serve.service.CompileService.submit``
``serve.worker``      the serve worker loop, before each compile attempt
``serve.journal``     :meth:`repro.serve.journal.JobJournal` writes
================  ====================================================

Production code calls :func:`fault_point` at each site; with an empty
registry that is one module-global read, so the instrumentation is free
in normal operation.  Tests arm the registry::

    inject("portfolio.worker", WorkerCrash("boom"), match="key<=8")
    try:
        ...  # exercise the pipeline
    finally:
        clear()

A fault may be an exception *instance* (raised as-is), an exception
*class* (instantiated then raised), or a zero-argument *callable*
(invoked; it may sleep to simulate a hang, call ``os._exit`` to
simulate a worker crash, or raise).  ``times`` bounds how often it
fires, ``match`` restricts it to sites whose label contains a substring
(e.g. one portfolio arm), and ``scope="subprocess"`` restricts it to
processes other than the one that registered it — which is how a test
kills a pool worker without also killing the in-process recovery rerun.

Worker processes receive the registry explicitly: ``portfolio_compile``
ships :func:`snapshot` alongside each subproblem and the worker calls
:func:`install`, so injection works under both ``fork`` and ``spawn``
start methods.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, List, Optional

from .faults import CompileFault

SITES = (
    "sat.solve",
    "bitblast",
    "encoder",
    "portfolio.worker",
    "portfolio.pool",
    "persist.write",
    "persist.read",
    "cache.store",
    "serve.enqueue",
    "serve.worker",
    "serve.journal",
)


@dataclass
class InjectedFault:
    """One armed fault; mutable so firings can be counted."""

    site: str
    fault: Any                      # exception instance/class or callable
    times: Optional[int] = 1        # None = fire on every visit
    match: Optional[str] = None     # substring of the site label
    scope: str = "any"              # "any" | "subprocess"
    origin_pid: int = field(default_factory=os.getpid)
    fired: int = 0

    def applies(self, site: str, label: Optional[str]) -> bool:
        if self.site != site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.match is not None and self.match not in (label or ""):
            return False
        if self.scope == "subprocess" and os.getpid() == self.origin_pid:
            return False
        return True

    def trigger(self, site: str) -> None:
        self.fired += 1
        fault = self.fault
        if isinstance(fault, BaseException):
            if isinstance(fault, CompileFault) and fault.site is None:
                fault.site = site
            raise fault
        if isinstance(fault, type) and issubclass(fault, BaseException):
            raise fault(f"injected fault at {site}")
        # Callable action: may sleep (hang), os._exit (crash), or raise.
        fault()


_FAULTS: List[InjectedFault] = []


def inject(
    site: str,
    fault: Any,
    *,
    times: Optional[int] = 1,
    match: Optional[str] = None,
    scope: str = "any",
) -> InjectedFault:
    """Arm ``fault`` at ``site``; returns the (mutable) registration."""
    if site not in SITES:
        raise ValueError(
            f"unknown injection site {site!r}; known sites: {SITES}"
        )
    if scope not in ("any", "subprocess"):
        raise ValueError(f"unknown scope {scope!r}")
    entry = InjectedFault(
        site=site, fault=fault, times=times, match=match, scope=scope
    )
    _FAULTS.append(entry)
    return entry


def clear() -> None:
    """Disarm every injected fault (tests call this in teardown)."""
    _FAULTS.clear()


def active() -> bool:
    return bool(_FAULTS)


def snapshot() -> List[InjectedFault]:
    """The current registrations, for shipping to worker processes."""
    return list(_FAULTS)


def install(faults: Optional[List[InjectedFault]]) -> None:
    """Replace the registry (worker-process side of :func:`snapshot`)."""
    _FAULTS.clear()
    if faults:
        _FAULTS.extend(faults)


def configure_from_string(text: str) -> List[InjectedFault]:
    """Arm faults from a compact CLI spec (``repro serve --inject``).

    Comma-separated ``site:FaultName[:times[:match]]`` entries, where
    ``FaultName`` is a class from :mod:`repro.resilience.faults` and
    ``times`` is an integer or ``*`` (every visit)::

        serve.worker:WorkerCrash:2,serve.journal:PoolBroken:1

    ``hang=<seconds>`` in place of a fault class injects a stall
    instead of an exception (a worker that wedges rather than dies)::

        serve.worker:hang=0.3:4
    """
    import time as _time

    from . import faults as _faults

    armed: List[InjectedFault] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        parts = item.split(":")
        if len(parts) < 2:
            raise ValueError(
                f"expected site:FaultName[:times[:match]], got {item!r}"
            )
        site, name = parts[0], parts[1]
        times: Optional[int] = 1
        if len(parts) > 2 and parts[2]:
            times = None if parts[2] == "*" else int(parts[2])
        match = parts[3] if len(parts) > 3 and parts[3] else None
        if name.startswith("hang"):
            _, eq, dur = name.partition("=")
            seconds = float(dur) if eq else 0.1
            fault: Any = lambda s=seconds: _time.sleep(s)  # noqa: E731
        else:
            fault_cls = getattr(_faults, name, None)
            if not (
                isinstance(fault_cls, type)
                and issubclass(fault_cls, BaseException)
            ):
                raise ValueError(f"unknown fault type {name!r}")
            fault = fault_cls
        armed.append(inject(site, fault, times=times, match=match))
    return armed


def fault_point(site: str, label: Optional[str] = None) -> None:
    """Instrumentation hook: fire any armed fault matching ``site``.

    Near-zero cost when nothing is armed (the common case).
    """
    if not _FAULTS:
        return
    for entry in _FAULTS:
        if entry.applies(site, label):
            entry.trigger(site)
