"""Resilience layer: fault taxonomy and deterministic fault injection.

The compile pipeline — especially the §6.7 portfolio, which races many
arms across a process pool — must degrade instead of dying: a crashing
worker becomes a per-arm failure, a broken pool is recovered by
re-running pending arms in-process, and a wall-clock deadline yields the
best partial result rather than a hang.  This package holds the
pieces those behaviours share:

* :mod:`repro.resilience.faults` — the :class:`CompileFault` exception
  taxonomy supervision code catches and converts into results;
* :mod:`repro.resilience.injection` — a deterministic fault-injection
  registry (``inject(site, fault)``) so every recovery path is testable
  without real crashes (see ``tests/resilience/``);
* :mod:`repro.resilience.retry` — a reusable retry policy (bounded
  attempts, exponential backoff, deterministic jitter) plus the
  transient-vs-permanent fault classification, shared by the serve
  layer and the checkpoint manager's write-failure self-disable.

Deliberately dependency-free (stdlib only): both ``repro.smt`` and
``repro.core`` import it, so it must sit below everything.
"""

from .faults import (
    ArmTimeout,
    CompileFault,
    PoolBroken,
    SolverResourceExhausted,
    WorkerCrash,
)
from .injection import (
    SITES,
    InjectedFault,
    active,
    clear,
    fault_point,
    inject,
    install,
    snapshot,
)
from .retry import (
    TRANSIENT_FAULTS,
    RetryPolicy,
    RetryState,
    transient_fault,
)

__all__ = [
    "ArmTimeout",
    "CompileFault",
    "InjectedFault",
    "PoolBroken",
    "RetryPolicy",
    "RetryState",
    "SITES",
    "SolverResourceExhausted",
    "TRANSIENT_FAULTS",
    "WorkerCrash",
    "active",
    "clear",
    "fault_point",
    "inject",
    "install",
    "snapshot",
    "transient_fault",
]
