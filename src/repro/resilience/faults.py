"""The :class:`CompileFault` exception taxonomy.

Every *expected* way the compile pipeline can fail abnormally — as
opposed to the planned outcomes "infeasible" and "timeout" — has a
dedicated exception class here.  The supervision code in
``core/parallel.py`` and the top-level ``ParserHawkCompiler.compile``
catch :class:`CompileFault` (never bare ``Exception`` when a precise
class exists) and convert it into a per-arm / per-compile failure
*result* instead of letting it unwind the whole portfolio.

The taxonomy is deliberately flat and small; classes carry an optional
``site`` naming the pipeline location that raised (one of the
fault-injection site names in :mod:`repro.resilience.injection`).
"""

from __future__ import annotations

from typing import Optional


class CompileFault(Exception):
    """Base class for abnormal (but anticipated) compile-pipeline failures.

    ``site`` names the pipeline location that raised (an injection-site
    string such as ``"sat.solve"``); ``outcome`` optionally carries a
    partial ``CegisOutcome`` so callers can fold the aborted attempt's
    solver statistics into their stats (mirroring ``SynthesisTimeout``).
    """

    def __init__(
        self, message: str = "", site: Optional[str] = None
    ) -> None:
        super().__init__(message or type(self).__name__)
        self.site = site
        self.outcome = None  # optional partial CegisOutcome

    def describe(self) -> str:
        where = f" at {self.site}" if self.site else ""
        return f"{type(self).__name__}{where}: {self}"


class WorkerCrash(CompileFault):
    """A portfolio worker process raised or died mid-arm."""


class PoolBroken(CompileFault):
    """The process pool itself is unusable (workers killed, fork failed,
    result unpicklable); pending arms must be re-run in-process."""


class ArmTimeout(CompileFault):
    """One portfolio arm exceeded its share of the wall-clock deadline."""


class SolverResourceExhausted(CompileFault):
    """The SAT solver ran out of a hard resource (memory, recursion),
    as opposed to a *planned* conflict/time budget, which reports
    ``unknown``."""
