"""Lexer for the P4-subset parser-description language.

Token kinds: identifiers/keywords, integer literals (decimal, ``0x``, ``0b``),
punctuation, and the ternary-mask operator ``&&&`` used in select cases
(as in P4-16).  Comments: ``//`` to end of line and ``/* ... */``.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import ParseError, SourceLocation

KEYWORDS = {
    "header",
    "parser",
    "state",
    "extract",
    "extract_var",
    "transition",
    "select",
    "default",
    "accept",
    "reject",
    "lookahead",
    "varbit",
    "stack",
}

PUNCTUATION = {
    "{", "}", "(", ")", "[", "]", ":", ";", ",", "*", "-", "&&&", "..",
}


class Token:
    __slots__ = ("kind", "text", "value", "location")

    def __init__(self, kind: str, text: str, location: SourceLocation, value=None):
        self.kind = kind          # "ident", "keyword", "int", "punct", "eof"
        self.text = text
        self.value = value        # int value for "int" tokens
        self.location = location

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}@{self.location})"


def tokenize(source: str) -> List[Token]:
    """Tokenize the whole source, returning a list ending with an EOF token."""
    tokens: List[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start = loc()
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                raise ParseError("unterminated block comment", start)
            advance(2)
            continue
        if source.startswith("&&&", i):
            tokens.append(Token("punct", "&&&", loc()))
            advance(3)
            continue
        if source.startswith("..", i):
            tokens.append(Token("punct", "..", loc()))
            advance(2)
            continue
        if ch in "{}()[]:;,*-":
            tokens.append(Token("punct", ch, loc()))
            advance(1)
            continue
        if ch.isdigit():
            start_loc = loc()
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and (source[j] in "0123456789abcdefABCDEF_"):
                    j += 1
                text = source[i:j]
                value = int(text.replace("_", ""), 16)
            elif source.startswith("0b", i) or source.startswith("0B", i):
                j = i + 2
                while j < n and source[j] in "01_":
                    j += 1
                text = source[i:j]
                value = int(text.replace("_", ""), 2)
            else:
                while j < n and (source[j].isdigit() or source[j] == "_"):
                    j += 1
                text = source[i:j]
                value = int(text.replace("_", ""))
            tokens.append(Token("int", text, start_loc, value=value))
            advance(j - i)
            continue
        if ch.isalpha() or ch == "_":
            start_loc = loc()
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_."):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_loc))
            advance(j - i)
            continue
        raise ParseError(f"unexpected character {ch!r}", loc())
    tokens.append(Token("eof", "", loc()))
    return tokens


def iter_tokens(source: str) -> Iterator[Token]:
    return iter(tokenize(source))
