"""Source-located diagnostics for the P4-subset frontend."""

from __future__ import annotations


class SourceLocation:
    """Line/column position inside a parser-program source string."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return f"{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and (self.line, self.column) == (other.line, other.column)
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column))


class ParseError(Exception):
    """A lexing or parsing failure, with source position."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        where = f" at {location}" if location else ""
        super().__init__(f"{message}{where}")


class SemanticError(Exception):
    """A well-formed program that violates language rules
    (unknown state, duplicate field, bad slice bounds, ...)."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        where = f" at {location}" if location else ""
        super().__init__(f"{message}{where}")
