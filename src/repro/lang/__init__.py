"""P4-subset frontend: lexer, AST, recursive-descent parser."""

from .ast import (
    ACCEPT,
    REJECT,
    Extract,
    ExtractVar,
    FieldDecl,
    FieldRef,
    HeaderDecl,
    Lookahead,
    ParserDecl,
    Program,
    SelectCase,
    StateDecl,
    Transition,
    ValueMask,
)
from .errors import ParseError, SemanticError, SourceLocation
from .lexer import Token, tokenize
from .parser import parse_program

__all__ = [
    "ACCEPT",
    "Extract",
    "ExtractVar",
    "FieldDecl",
    "FieldRef",
    "HeaderDecl",
    "Lookahead",
    "ParseError",
    "ParserDecl",
    "Program",
    "REJECT",
    "SelectCase",
    "SemanticError",
    "SourceLocation",
    "StateDecl",
    "Token",
    "Transition",
    "ValueMask",
    "parse_program",
    "tokenize",
]
