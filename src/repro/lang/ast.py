"""Abstract syntax tree for the P4-subset parser language.

The language (see :mod:`repro.lang.parser` for the grammar) describes:

* ``header`` blocks declaring a header instance and its fields, each a
  fixed bit-width or ``varbit N`` (max width, actual width decided at
  run time as in P4's varbit);
* a single ``parser`` block of named states.  Each state extracts zero or
  more headers and ends in a ``transition``: either unconditional or a
  ``select`` over one or more keys (header fields, field slices, or
  ``lookahead(n)`` windows) with value / value``&&&``mask / ``default`` arms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .errors import SourceLocation

ACCEPT = "accept"
REJECT = "reject"


@dataclass(frozen=True)
class FieldDecl:
    """One field inside a header: fixed width, or varbit with a max width,
    or a header-stack slot (``label : 20 stack 4;``) extracted repeatedly."""

    name: str
    width: int
    is_varbit: bool = False
    stack_depth: int = 1
    location: Optional[SourceLocation] = None

    @property
    def qualified(self) -> str:
        raise AttributeError("qualified name needs the owning header")


@dataclass(frozen=True)
class HeaderDecl:
    name: str
    fields: Tuple[FieldDecl, ...]
    location: Optional[SourceLocation] = None

    @property
    def total_width(self) -> int:
        return sum(f.width for f in self.fields)

    def field(self, name: str) -> FieldDecl:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"header {self.name} has no field {name}")


@dataclass(frozen=True)
class FieldRef:
    """A reference ``header.field`` with an optional bit slice [hi:lo].

    Slice indices follow the P4/z3 convention: bit 0 is the least
    significant bit of the field.
    """

    header: str
    field: str
    hi: Optional[int] = None
    lo: Optional[int] = None
    location: Optional[SourceLocation] = None

    @property
    def sliced(self) -> bool:
        return self.hi is not None

    def __str__(self) -> str:
        base = f"{self.header}.{self.field}"
        if self.sliced:
            return f"{base}[{self.hi}:{self.lo}]"
        return base


@dataclass(frozen=True)
class Lookahead:
    """``lookahead(width)`` — the next ``width`` un-extracted bits,
    starting ``offset`` bits past the current cursor."""

    width: int
    offset: int = 0
    location: Optional[SourceLocation] = None

    def __str__(self) -> str:
        if self.offset:
            return f"lookahead({self.width}, offset={self.offset})"
        return f"lookahead({self.width})"


SelectKey = Union[FieldRef, Lookahead]


@dataclass(frozen=True)
class ValueMask:
    """A select-case literal: value, or value &&& mask, or ``_`` wildcard.

    A wildcard is represented as mask == 0 with ``wildcard=True`` so that
    semantics (match-anything) are explicit rather than relying on the
    mask encoding.
    """

    value: int
    mask: Optional[int] = None  # None => exact match on the full key width
    wildcard: bool = False

    def matches(self, key_value: int, key_width: int) -> bool:
        if self.wildcard:
            return True
        mask = self.mask if self.mask is not None else (1 << key_width) - 1
        return (key_value & mask) == (self.value & mask)

    def __str__(self) -> str:
        if self.wildcard:
            return "_"
        if self.mask is not None:
            return f"{self.value:#x} &&& {self.mask:#x}"
        return f"{self.value:#x}"


@dataclass(frozen=True)
class SelectCase:
    """One arm of a select: a tuple of value-masks (one per key) plus the
    destination state name (or ``accept``/``reject``)."""

    patterns: Tuple[ValueMask, ...]
    next_state: str
    is_default: bool = False
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Extract:
    """``extract(header)`` — consume all the header's fixed fields — or
    ``extract(header.field)`` — consume a single field (used by the IR's
    source renderer so state-splitting rewrites round-trip exactly)."""

    header: str
    field: Optional[str] = None
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ExtractVar:
    """``extract_var(header.field, length_ref, multiplier)`` — extract a
    varbit field whose run-time size is ``value(length_ref) * multiplier``
    bits (the IPv4-options / Geneve-options pattern)."""

    header: str
    field: str
    length_ref: FieldRef
    multiplier: int
    location: Optional[SourceLocation] = None


Statement = Union[Extract, ExtractVar]


@dataclass(frozen=True)
class Transition:
    """State epilogue.  ``keys`` empty means an unconditional transition
    whose destination is the single case's next_state."""

    keys: Tuple[SelectKey, ...]
    cases: Tuple[SelectCase, ...]
    location: Optional[SourceLocation] = None

    @property
    def is_unconditional(self) -> bool:
        return not self.keys


@dataclass(frozen=True)
class StateDecl:
    name: str
    statements: Tuple[Statement, ...]
    transition: Transition
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class ParserDecl:
    name: str
    states: Tuple[StateDecl, ...]
    start: str = "start"
    location: Optional[SourceLocation] = None

    def state(self, name: str) -> StateDecl:
        for s in self.states:
            if s.name == name:
                return s
        raise KeyError(f"parser {self.name} has no state {name}")


@dataclass
class Program:
    """A complete parsed source file: headers plus one parser."""

    headers: List[HeaderDecl] = field(default_factory=list)
    parser: Optional[ParserDecl] = None

    def header(self, name: str) -> HeaderDecl:
        for h in self.headers:
            if h.name == name:
                return h
        raise KeyError(f"no header named {name}")
