"""Recursive-descent parser for the P4-subset language.

Grammar (EBNF, ``//`` comments allowed anywhere)::

    program     := header_decl* parser_decl
    header_decl := "header" IDENT "{" field_decl* "}"
    field_decl  := IDENT ":" (INT | "varbit" INT) ";"
    parser_decl := "parser" IDENT "{" state_decl* "}"
    state_decl  := "state" IDENT "{" statement* transition "}"
    statement   := "extract" "(" IDENT ")" ";"
                 | "extract_var" "(" DOTTED "," DOTTED "," INT ")" ";"
    transition  := "transition" dest ";"
                 | "transition" "select" "(" key ("," key)* ")" "{" case* "}"
    key         := DOTTED ("[" INT ":" INT "]")?
                 | "lookahead" "(" INT ("," INT)? ")"
    case        := patterns ":" dest ";"
    patterns    := pattern | "(" pattern ("," pattern)* ")"
    pattern     := INT ("&&&" INT)? | "default" | "_"
    dest        := IDENT | "accept" | "reject"

``DOTTED`` is an identifier containing exactly one dot (``hdr.field``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .ast import (
    ACCEPT,
    REJECT,
    Extract,
    ExtractVar,
    FieldDecl,
    FieldRef,
    HeaderDecl,
    Lookahead,
    ParserDecl,
    Program,
    SelectCase,
    StateDecl,
    Transition,
    ValueMask,
)
from .errors import ParseError, SemanticError
from .lexer import Token, tokenize


class _TokenStream:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._idx = 0

    def peek(self) -> Token:
        return self._tokens[self._idx]

    def next(self) -> Token:
        tok = self._tokens[self._idx]
        if tok.kind != "eof":
            self._idx += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.peek()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise ParseError(f"expected {want!r}, found {tok.text!r}", tok.location)
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None


def parse_program(source: str) -> Program:
    """Parse a complete source string into a validated :class:`Program`."""
    stream = _TokenStream(tokenize(source))
    program = Program()
    while True:
        tok = stream.peek()
        if tok.kind == "eof":
            break
        if tok.kind == "keyword" and tok.text == "header":
            program.headers.append(_parse_header(stream))
        elif tok.kind == "keyword" and tok.text == "parser":
            if program.parser is not None:
                raise ParseError("multiple parser blocks", tok.location)
            program.parser = _parse_parser(stream)
        else:
            raise ParseError(
                f"expected 'header' or 'parser', found {tok.text!r}", tok.location
            )
    if program.parser is None:
        raise ParseError("source contains no parser block")
    _validate(program)
    return program


def _parse_header(stream: _TokenStream) -> HeaderDecl:
    kw = stream.expect("keyword", "header")
    name = stream.expect("ident").text
    stream.expect("punct", "{")
    fields: List[FieldDecl] = []
    while not stream.accept("punct", "}"):
        fname_tok = stream.expect("ident")
        stream.expect("punct", ":")
        if stream.accept("keyword", "varbit"):
            width_tok = stream.expect("int")
            fields.append(
                FieldDecl(
                    fname_tok.text,
                    width_tok.value,
                    is_varbit=True,
                    location=fname_tok.location,
                )
            )
        else:
            width_tok = stream.expect("int")
            depth = 1
            if stream.accept("keyword", "stack"):
                depth = stream.expect("int").value
                if depth < 1:
                    raise ParseError("stack depth must be >= 1", width_tok.location)
            fields.append(
                FieldDecl(
                    fname_tok.text,
                    width_tok.value,
                    stack_depth=depth,
                    location=fname_tok.location,
                )
            )
        stream.expect("punct", ";")
    return HeaderDecl(name, tuple(fields), location=kw.location)


def _parse_parser(stream: _TokenStream) -> ParserDecl:
    kw = stream.expect("keyword", "parser")
    name = stream.expect("ident").text
    stream.expect("punct", "{")
    states: List[StateDecl] = []
    while not stream.accept("punct", "}"):
        states.append(_parse_state(stream))
    return ParserDecl(name, tuple(states), location=kw.location)


def _parse_state(stream: _TokenStream) -> StateDecl:
    kw = stream.expect("keyword", "state")
    name = stream.expect("ident").text
    stream.expect("punct", "{")
    statements: List = []
    transition: Optional[Transition] = None
    while not stream.accept("punct", "}"):
        tok = stream.peek()
        if tok.kind == "keyword" and tok.text == "extract":
            statements.append(_parse_extract(stream))
        elif tok.kind == "keyword" and tok.text == "extract_var":
            statements.append(_parse_extract_var(stream))
        elif tok.kind == "keyword" and tok.text == "transition":
            if transition is not None:
                raise ParseError("state has multiple transitions", tok.location)
            transition = _parse_transition(stream)
        else:
            raise ParseError(
                f"expected statement or transition, found {tok.text!r}", tok.location
            )
    if transition is None:
        raise ParseError(f"state {name} has no transition", kw.location)
    return StateDecl(name, tuple(statements), transition, location=kw.location)


def _parse_extract(stream: _TokenStream) -> Extract:
    kw = stream.expect("keyword", "extract")
    stream.expect("punct", "(")
    target = stream.expect("ident").text
    stream.expect("punct", ")")
    stream.expect("punct", ";")
    if "." in target:
        header, fld = target.split(".", 1)
        if "." in fld:
            raise ParseError(f"malformed extract target {target!r}", kw.location)
        return Extract(header, fld, location=kw.location)
    return Extract(target, location=kw.location)


def _parse_extract_var(stream: _TokenStream) -> ExtractVar:
    kw = stream.expect("keyword", "extract_var")
    stream.expect("punct", "(")
    target = stream.expect("ident")
    if "." not in target.text:
        raise ParseError("extract_var target must be header.field", target.location)
    hdr, fld = target.text.split(".", 1)
    stream.expect("punct", ",")
    length_tok = stream.expect("ident")
    if "." not in length_tok.text:
        raise ParseError("extract_var length must be header.field", length_tok.location)
    lh, lf = length_tok.text.split(".", 1)
    stream.expect("punct", ",")
    mult = stream.expect("int").value
    stream.expect("punct", ")")
    stream.expect("punct", ";")
    return ExtractVar(
        hdr, fld, FieldRef(lh, lf, location=length_tok.location), mult,
        location=kw.location,
    )


def _parse_transition(stream: _TokenStream) -> Transition:
    kw = stream.expect("keyword", "transition")
    if stream.accept("keyword", "select"):
        stream.expect("punct", "(")
        keys = [_parse_key(stream)]
        while stream.accept("punct", ","):
            keys.append(_parse_key(stream))
        stream.expect("punct", ")")
        stream.expect("punct", "{")
        cases: List[SelectCase] = []
        while not stream.accept("punct", "}"):
            cases.append(_parse_case(stream, len(keys)))
        if not cases:
            raise ParseError("select with no cases", kw.location)
        return Transition(tuple(keys), tuple(cases), location=kw.location)
    dest = _parse_dest(stream)
    stream.expect("punct", ";")
    case = SelectCase((), dest, is_default=True, location=kw.location)
    return Transition((), (case,), location=kw.location)


def _parse_key(stream: _TokenStream):
    tok = stream.peek()
    if stream.accept("keyword", "lookahead"):
        stream.expect("punct", "(")
        width = stream.expect("int").value
        offset = 0
        if stream.accept("punct", ","):
            offset = stream.expect("int").value
        stream.expect("punct", ")")
        return Lookahead(width, offset, location=tok.location)
    ident = stream.expect("ident")
    if "." not in ident.text:
        raise ParseError(
            f"select key must be header.field or lookahead(..), found {ident.text!r}",
            ident.location,
        )
    hdr, fld = ident.text.split(".", 1)
    hi = lo = None
    if stream.accept("punct", "["):
        hi = stream.expect("int").value
        stream.expect("punct", ":")
        lo = stream.expect("int").value
        stream.expect("punct", "]")
        if lo > hi:
            raise ParseError(f"slice [{hi}:{lo}] has lo > hi", ident.location)
    return FieldRef(hdr, fld, hi, lo, location=ident.location)


def _parse_case(stream: _TokenStream, num_keys: int) -> SelectCase:
    tok = stream.peek()
    patterns: Tuple[ValueMask, ...]
    is_default = False
    if stream.accept("punct", "("):
        pats = [_parse_pattern(stream)]
        while stream.accept("punct", ","):
            pats.append(_parse_pattern(stream))
        stream.expect("punct", ")")
        patterns = tuple(pats)
    else:
        pattern = _parse_pattern(stream)
        if pattern.wildcard and num_keys > 1:
            patterns = tuple(ValueMask(0, wildcard=True) for _ in range(num_keys))
        else:
            patterns = (pattern,)
        is_default = pattern.wildcard and stream.peek().text == ":"
    stream.expect("punct", ":")
    dest = _parse_dest(stream)
    stream.expect("punct", ";")
    if len(patterns) != num_keys and not all(p.wildcard for p in patterns):
        raise ParseError(
            f"case has {len(patterns)} patterns for {num_keys} keys", tok.location
        )
    is_default = all(p.wildcard for p in patterns)
    return SelectCase(patterns, dest, is_default=is_default, location=tok.location)


def _parse_pattern(stream: _TokenStream) -> ValueMask:
    tok = stream.peek()
    if stream.accept("keyword", "default") or stream.accept("ident", "_"):
        return ValueMask(0, wildcard=True)
    value = stream.expect("int").value
    if stream.accept("punct", "&&&"):
        mask = stream.expect("int").value
        return ValueMask(value, mask)
    return ValueMask(value)


def _parse_dest(stream: _TokenStream) -> str:
    tok = stream.peek()
    if stream.accept("keyword", "accept"):
        return ACCEPT
    if stream.accept("keyword", "reject"):
        return REJECT
    ident = stream.expect("ident")
    if "." in ident.text:
        raise ParseError("transition target cannot contain '.'", ident.location)
    return ident.text


# ---------------------------------------------------------------------------
# Semantic validation
# ---------------------------------------------------------------------------

def _validate(program: Program) -> None:
    headers = {h.name: h for h in program.headers}
    if len(headers) != len(program.headers):
        raise SemanticError("duplicate header names")
    for header in program.headers:
        names = [f.name for f in header.fields]
        if len(set(names)) != len(names):
            raise SemanticError(f"duplicate fields in header {header.name}")
        for f in header.fields:
            if f.width <= 0:
                raise SemanticError(
                    f"field {header.name}.{f.name} has non-positive width"
                )
    parser = program.parser
    assert parser is not None
    state_names = {s.name for s in parser.states}
    if len(state_names) != len(parser.states):
        raise SemanticError("duplicate state names")
    if parser.start not in state_names:
        raise SemanticError(f"parser has no start state {parser.start!r}")
    for state in parser.states:
        for stmt in state.statements:
            if isinstance(stmt, Extract):
                if stmt.header not in headers:
                    raise SemanticError(
                        f"state {state.name} extracts unknown header {stmt.header}",
                        stmt.location,
                    )
                if stmt.field is not None:
                    fdecl = None
                    try:
                        fdecl = headers[stmt.header].field(stmt.field)
                    except KeyError:
                        raise SemanticError(
                            f"state {state.name} extracts unknown field "
                            f"{stmt.header}.{stmt.field}",
                            stmt.location,
                        ) from None
                    if fdecl.is_varbit:
                        raise SemanticError(
                            f"use extract_var for varbit field "
                            f"{stmt.header}.{stmt.field}",
                            stmt.location,
                        )
            elif isinstance(stmt, ExtractVar):
                _validate_field_ref(
                    headers, FieldRef(stmt.header, stmt.field), state.name
                )
                _validate_field_ref(headers, stmt.length_ref, state.name)
                target = headers[stmt.header].field(stmt.field)
                if not target.is_varbit:
                    raise SemanticError(
                        f"extract_var target {stmt.header}.{stmt.field} "
                        "is not varbit",
                        stmt.location,
                    )
        for key in state.transition.keys:
            if isinstance(key, FieldRef):
                _validate_field_ref(headers, key, state.name)
            elif isinstance(key, Lookahead):
                if key.width <= 0 or key.offset < 0:
                    raise SemanticError(
                        f"bad lookahead in state {state.name}", key.location
                    )
        for case in state.transition.cases:
            dest = case.next_state
            if dest not in (ACCEPT, REJECT) and dest not in state_names:
                raise SemanticError(
                    f"state {state.name} transitions to unknown state {dest}",
                    case.location,
                )


def _validate_field_ref(headers, ref: FieldRef, state_name: str) -> None:
    if ref.header not in headers:
        raise SemanticError(
            f"state {state_name} references unknown header {ref.header}",
            ref.location,
        )
    header = headers[ref.header]
    try:
        fdecl = header.field(ref.field)
    except KeyError:
        raise SemanticError(
            f"state {state_name} references unknown field {ref}", ref.location
        ) from None
    if ref.sliced:
        if not (0 <= ref.lo <= ref.hi < fdecl.width):
            raise SemanticError(
                f"slice {ref} out of range for width {fdecl.width}", ref.location
            )
