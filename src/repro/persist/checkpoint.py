"""Durable CEGIS / budget-search checkpoints.

A :class:`CheckpointManager` owns one checkpoint file
(``<dir>/checkpoint.json``) holding everything a killed compile needs to
restart cheaply:

* per-arm **counterexample sequences**, keyed by ``(arm, budget)`` — a
  budget's CEGIS run is deterministic (per-budget RNG, deterministic
  CDCL), so the recorded list is exactly the prefix of the iteration
  sequence an uninterrupted run would produce, and the resumed run
  *replays* it (solve → add, skipping candidate decode and the expensive
  equivalence verification) to land in the identical solver state before
  continuing live;
* per-arm **budget-search position**: budgets proved UNSAT (``retired``,
  skipped forever on resume) and the escalation schedule's current time
  slice;
* the per-arm **test pool** (see :mod:`repro.core.testpool`), in
  insertion order, plus each budget's ``pool_base`` — the pool size when
  that budget's run started.  A budget's solver state is a function of
  the pool prefix it seeded, so faithful replay needs the exact prefix
  reconstructed, including entries that arrived from sibling arms;
* the **portfolio manifest**: finished arms and their statuses, so a
  resumed portfolio skips arms that already exhausted their search.

Durability contract: every write goes through
:mod:`repro.persist.atomic` (write-temp + fsync + rename, checksummed
envelope); a write failure is counted (``persist.write_failures``) and
after a few consecutive failures checkpointing turns itself off rather
than slow the compile down — persistence is best-effort, the compile
result is not allowed to depend on it.
"""

from __future__ import annotations

import time
import weakref
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..ir.bits import Bits
from ..obs import get_tracer
from ..resilience.retry import RetryPolicy
from .atomic import load_envelope, write_atomic

CHECKPOINT_KIND = "checkpoint"
# v2 added the per-arm test pool and per-budget pool_base.  A v1 file
# cannot be replayed faithfully by the incremental-synthesis engine (its
# recorded counterexamples assume pool prefixes it never stored), so the
# version gate treats it as absent (cold start) rather than migrating.
CHECKPOINT_VERSION = 2
CHECKPOINT_FILENAME = "checkpoint.json"

# Consecutive write failures after which a manager stops trying.  Only
# the give-up decision is reused from the retry machinery — flushes are
# never delayed (checkpointing must not slow the compile down), so the
# policy carries no backoff.
WRITE_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)

BudgetKey = Tuple[Optional[int], int]        # (stage budget or None, entries)

# Managers with possibly-unflushed state, so a KeyboardInterrupt handler
# (see cli.main) can flush whatever compile was in flight.
_ACTIVE: "weakref.WeakSet[CheckpointManager]" = weakref.WeakSet()


def flush_active() -> int:
    """Force-flush every live manager; returns how many flushed."""
    flushed = 0
    for manager in list(_ACTIVE):
        if manager.flush(force=True):
            flushed += 1
    return flushed


def _budget_id(budget: BudgetKey) -> str:
    stage, entries = budget
    return f"{'-' if stage is None else stage}:{entries}"


def _budget_from_id(budget_id: str) -> BudgetKey:
    stage_s, entries_s = budget_id.split(":")
    return (None if stage_s == "-" else int(stage_s), int(entries_s))


class CheckpointManager:
    """One compile's durable state, bound to a ``compile_key``.

    ``resume=False`` ignores any existing file (it is overwritten by the
    first flush); ``resume=True`` adopts it *only* if its ``compile_key``
    matches — a checkpoint for a different (spec, device, options) is
    never mixed in (counted as ``persist.key_mismatch``).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        compile_key: str,
        interval_seconds: float = 0.0,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.path = self.directory / CHECKPOINT_FILENAME
        self.compile_key = compile_key
        self.interval_seconds = interval_seconds
        self.resumed = False
        self._dirty = False
        self._disabled = False
        self._write_state = WRITE_RETRY_POLICY.start(
            key=compile_key, sleep=None
        )
        self._last_flush = 0.0
        self.state: Dict[str, Any] = {
            "compile_key": compile_key,
            "completed": False,
            "arms": {},
            "portfolio": {},
        }
        if resume:
            self._load()
        # Materialize the file up front: a crash before the first
        # counterexample still leaves a resumable (if empty) checkpoint,
        # and failure results can name an existing path.
        self.flush(force=True)
        _ACTIVE.add(self)

    # -- loading -----------------------------------------------------------
    def _load(self) -> None:
        payload = load_envelope(
            self.path, CHECKPOINT_KIND, CHECKPOINT_VERSION
        )
        if payload is None:
            return
        if payload.get("compile_key") != self.compile_key:
            get_tracer().count("persist.key_mismatch")
            return
        self.state = payload
        self.state.setdefault("arms", {})
        self.state.setdefault("portfolio", {})
        self.resumed = True
        get_tracer().count("checkpoint.resumed")

    # -- arm / budget state ------------------------------------------------
    def _arm(self, arm_key: str) -> Dict[str, Any]:
        return self.state["arms"].setdefault(
            arm_key,
            {
                "slice_seconds": None,
                "retired": [],
                "budgets": {},
                "pool": [],
            },
        )

    def record_counterexample(
        self, arm_key: str, budget: BudgetKey, bits: Bits
    ) -> None:
        budget_doc = self._arm(arm_key)["budgets"].setdefault(
            _budget_id(budget), {"cex": []}
        )
        budget_doc["cex"].append([bits.uint(), len(bits)])
        self._dirty = True
        get_tracer().count("checkpoint.counterexamples")
        self.flush()

    def replay_for(self, arm_key: str, budget: BudgetKey) -> List[Bits]:
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return []
        doc = arm["budgets"].get(_budget_id(budget))
        if not doc:
            return []
        return [Bits(value, length) for value, length in doc["cex"]]

    # -- test pool (repro.core.testpool) -----------------------------------
    def record_pool_entry(
        self, arm_key: str, value: int, length: int, origin: str
    ) -> None:
        """Append one pool entry (insertion order is part of the replay
        contract — budget runs seed from pool *prefixes*)."""
        self._arm(arm_key).setdefault("pool", []).append(
            [value, length, origin]
        )
        self._dirty = True
        get_tracer().count("checkpoint.pool_entries")
        self.flush()

    def pool_entries(self, arm_key: str) -> List[Tuple[int, int, str]]:
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return []
        return [
            (value, length, origin)
            for value, length, origin in arm.get("pool", [])
        ]

    def record_pool_base(
        self, arm_key: str, budget: BudgetKey, base: int
    ) -> None:
        budget_doc = self._arm(arm_key)["budgets"].setdefault(
            _budget_id(budget), {"cex": []}
        )
        if budget_doc.get("pool_base") != base:
            budget_doc["pool_base"] = base
            self._dirty = True

    def begin_attempt(
        self, arm_key: str, budget: BudgetKey, base: int
    ) -> None:
        """Reset a budget's record for a fresh attempt.

        The checkpoint describes the budget's *latest* attempt: its
        ``pool_base`` (the full pool as of attempt start — earlier
        attempts' discoveries are in the pool, so a retry reuses them)
        and only the counterexamples that attempt discovers live.  A
        resumed run then replays exactly that attempt: seed the pool
        prefix, re-apply its recorded counterexamples."""
        self._arm(arm_key)["budgets"][_budget_id(budget)] = {
            "cex": [],
            "pool_base": base,
        }
        self._dirty = True

    def pool_base(self, arm_key: str, budget: BudgetKey) -> Optional[int]:
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return None
        doc = arm["budgets"].get(_budget_id(budget))
        if not doc:
            return None
        return doc.get("pool_base")

    def record_retired(
        self,
        arm_key: str,
        budget: BudgetKey,
        proof_ref: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Mark a budget UNSAT.  ``proof_ref`` (certifying compiles) is
        the DRAT bundle manifest from
        :func:`repro.persist.certify.store_proof_bundle`, recorded under
        ``proof_refs`` so the retirement verdict is offline-checkable."""
        arm = self._arm(arm_key)
        entry = [budget[0], budget[1]]
        if entry not in arm["retired"]:
            arm["retired"].append(entry)
            self._dirty = True
        if proof_ref is not None:
            refs = arm.setdefault("proof_refs", {})
            refs[_budget_id(budget)] = proof_ref
            self._dirty = True
            self.flush()

    def proof_refs(self, arm_key: str) -> Dict[str, Dict[str, Any]]:
        """Recorded UNSAT proof-bundle references, keyed by budget id."""
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return {}
        return dict(arm.get("proof_refs", {}))

    def retired_budgets(self, arm_key: str) -> Set[BudgetKey]:
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return set()
        return {(stage, entries) for stage, entries in arm["retired"]}

    def record_slice(self, arm_key: str, slice_seconds: float) -> None:
        arm = self._arm(arm_key)
        if arm["slice_seconds"] != slice_seconds:
            arm["slice_seconds"] = slice_seconds
            self._dirty = True

    def resume_slice(self, arm_key: str) -> Optional[float]:
        arm = self.state["arms"].get(arm_key)
        if not arm:
            return None
        return arm["slice_seconds"]

    # -- migratable work units (steal scheduler) ---------------------------
    def record_unit(self, label: str, worker: int, slice_index: int) -> None:
        """Append one dispatched (arm, budget slice) work unit.

        The unit log makes a killed steal-scheduled portfolio auditable:
        it records which worker held which arm at which slice, so a
        resume (or a post-mortem) can tell warm continuations from
        checkpoint-replay migrations.  Entries are ``[label, worker,
        slice_index]`` in dispatch order."""
        units = self.state.setdefault("units", [])
        units.append([label, worker, slice_index])
        self._dirty = True
        self.flush()

    def unit_history(self) -> List[Tuple[str, int, int]]:
        return [
            (label, worker, slice_index)
            for label, worker, slice_index in self.state.get("units", [])
        ]

    # -- portfolio manifest ------------------------------------------------
    def record_arm_result(
        self, label: str, status: str, message: str = ""
    ) -> None:
        self.state["portfolio"][label] = {
            "status": status, "message": message,
        }
        self._dirty = True
        self.flush()

    def finished_arms(self) -> Dict[str, Dict[str, str]]:
        return dict(self.state["portfolio"])

    # -- completion --------------------------------------------------------
    def mark_completed(self, program_fingerprint: str = "") -> None:
        self.state["completed"] = True
        if program_fingerprint:
            self.state["program_fingerprint"] = program_fingerprint
        self._dirty = True
        self.flush(force=True)

    # -- flushing ----------------------------------------------------------
    def flush(self, force: bool = False) -> bool:
        """Write the state out if dirty (or forced); True when written.

        Failures degrade: counted, and checkpointing disables itself
        once ``WRITE_RETRY_POLICY`` is exhausted (consecutive errors; a
        good write in between resets the streak)."""
        if self._disabled:
            return False
        if not force:
            if not self._dirty:
                return False
            if (
                self.interval_seconds > 0
                and time.monotonic() - self._last_flush
                < self.interval_seconds
            ):
                return False
        try:
            write_atomic(
                self.path, CHECKPOINT_KIND, CHECKPOINT_VERSION, self.state
            )
        except Exception:
            tracer = get_tracer()
            tracer.count("persist.write_failures")
            if not self._write_state.record_failure():
                self._disabled = True
                tracer.count("checkpoint.disabled")
            return False
        self._write_state.record_success()
        self._dirty = False
        self._last_flush = time.monotonic()
        get_tracer().count("checkpoint.flushes")
        return True


def arm_checkpoint_dir(root: Union[str, Path], label: str) -> Path:
    """A stable per-portfolio-arm checkpoint directory under ``root``."""
    slug = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in label
    )
    return Path(root) / "arms" / slug
