"""Round-trip serialization of compile artifacts.

``hw.codegen.emit_json`` is a one-way dump for humans and downstream
tools; the persistence layer needs exact reconstruction, so this module
owns the bidirectional mapping: :class:`TcamProgram` (with its key
parts, ternary patterns and field records), :class:`CompileStats`, and
whole :class:`CompileResult` records for the compile cache.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, Optional

from ..core.result import CompileResult, CompileStats
from ..hw.device import DeviceProfile
from ..hw.impl import ImplEntry, ImplState, TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.spec import Field, FieldKey, LookaheadKey


def _key_part_to_doc(part) -> Dict[str, Any]:
    if isinstance(part, LookaheadKey):
        return {"kind": "lookahead", "offset": part.offset,
                "width": part.width}
    assert isinstance(part, FieldKey)
    return {"kind": "field", "field": part.field, "hi": part.hi,
            "lo": part.lo}


def _key_part_from_doc(doc: Dict[str, Any]):
    if doc["kind"] == "lookahead":
        return LookaheadKey(doc["offset"], doc["width"])
    return FieldKey(doc["field"], doc["hi"], doc["lo"])


def program_to_doc(program: TcamProgram) -> Dict[str, Any]:
    return {
        "source_name": program.source_name,
        "start_sid": program.start_sid,
        "fields": {
            name: {
                "width": f.width,
                "is_varbit": f.is_varbit,
                "length_field": f.length_field,
                "length_multiplier": f.length_multiplier,
                "stack_depth": f.stack_depth,
            }
            for name, f in program.fields.items()
        },
        "states": [
            {
                "sid": s.sid,
                "name": s.name,
                "stage": s.stage,
                "extracts": list(s.extracts),
                "key": [_key_part_to_doc(k) for k in s.key],
            }
            for s in program.states
        ],
        "entries": [
            {
                "sid": e.sid,
                "value": e.pattern.value,
                "mask": e.pattern.mask,
                "width": e.pattern.width,
                "next_sid": e.next_sid,
            }
            for e in program.entries
        ],
    }


def program_from_doc(doc: Dict[str, Any]) -> TcamProgram:
    fields = {
        name: Field(
            name,
            f["width"],
            is_varbit=f["is_varbit"],
            length_field=f["length_field"],
            length_multiplier=f["length_multiplier"],
            stack_depth=f["stack_depth"],
        )
        for name, f in doc["fields"].items()
    }
    states = [
        ImplState(
            sid=s["sid"],
            name=s["name"],
            extracts=tuple(s["extracts"]),
            key=tuple(_key_part_from_doc(k) for k in s["key"]),
            stage=s["stage"],
        )
        for s in doc["states"]
    ]
    entries = [
        ImplEntry(
            sid=e["sid"],
            pattern=TernaryPattern(e["value"], e["mask"], e["width"]),
            next_sid=e["next_sid"],
        )
        for e in doc["entries"]
    ]
    return TcamProgram(
        fields, states, entries, doc["start_sid"], doc["source_name"]
    )


def stats_to_doc(stats: CompileStats) -> Dict[str, Any]:
    return asdict(stats)


def stats_from_doc(doc: Dict[str, Any]) -> CompileStats:
    known = {
        k: v for k, v in doc.items() if k in CompileStats.__dataclass_fields__
    }
    return CompileStats(**known)


def result_to_doc(result: CompileResult) -> Dict[str, Any]:
    return {
        "status": result.status,
        "message": result.message,
        "options_summary": result.options_summary,
        "stats": stats_to_doc(result.stats),
        "program": (
            program_to_doc(result.program)
            if result.program is not None
            else None
        ),
    }


def result_from_doc(
    doc: Dict[str, Any], device: DeviceProfile
) -> Optional[CompileResult]:
    """Rebuild a cached result; None if the document is malformed.

    The device is supplied by the caller — the cache key already pins
    it, so it is not stored redundantly."""
    try:
        program = (
            program_from_doc(doc["program"])
            if doc.get("program") is not None
            else None
        )
        return CompileResult(
            doc["status"],
            device,
            program=program,
            stats=stats_from_doc(doc.get("stats", {})),
            message=doc.get("message", ""),
            options_summary=doc.get("options_summary", ""),
        )
    except Exception:
        return None
