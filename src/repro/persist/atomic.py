"""Atomic, checksummed, versioned JSON files — the durability substrate.

Every persisted artifact (CEGIS checkpoints, compile-cache entries) goes
through this module, which enforces three invariants:

* **Atomicity** — writes go to a temporary sibling, are fsync'd, then
  ``os.replace``'d over the target (and the containing directory is
  fsync'd best-effort), so a crash mid-write leaves either the old file
  or the new file, never a half-written one.
* **Integrity** — the payload travels inside an envelope carrying a
  magic string, a ``kind`` tag, a format version and a SHA-256 checksum
  of the canonical payload JSON.  A torn, truncated, tampered or
  wrong-kind file is *detected*, never trusted.
* **Quarantine, don't crash** — a corrupt file is renamed aside (to
  ``<name>.corrupt-N``) and reported as absent; persistence failures
  must degrade to a cold start, never take the compile down.  A file
  with an *unknown future version* is left in place and reported as
  absent (a newer build may still want it).

Fault-injection sites ``persist.write`` and ``persist.read`` (see
:mod:`repro.resilience.injection`) fire on every write/read so the
degradation paths are testable without real disk failures.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

try:
    import fcntl
except ImportError:                    # non-POSIX: degrade to lock-free
    fcntl = None  # type: ignore[assignment]

from ..obs import get_tracer
from ..resilience.injection import fault_point

MAGIC = "parserhawk-persist"


@contextmanager
def file_mutex(
    path: Union[str, Path],
    timeout: float = 2.0,
    poll: float = 0.01,
) -> Iterator[bool]:
    """A short-lived cross-process mutex around a read-check-write window.

    Yields True while holding an exclusive ``flock`` on ``path`` (created
    if absent), False if the lock could not be acquired within
    ``timeout`` — callers must treat False as *contended* and back off,
    never proceed unguarded.  The lock is advisory, per-file, and
    released automatically when the holding process dies (the kernel
    drops it with the descriptor), so a SIGKILL'd holder can never leave
    a stale lock behind.  Acquisition is non-blocking-with-retries so a
    SIGSTOP'd holder delays contenders by at most ``timeout``, not
    forever.  On platforms without ``fcntl`` the mutex degrades to a
    no-op True (single-process best-effort).
    """
    path = Path(path)
    if fcntl is None:
        yield True
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(str(path), os.O_RDWR | os.O_CREAT, 0o644)
    acquired = False
    try:
        deadline = time.monotonic() + timeout
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                acquired = True
                break
            except OSError:
                if time.monotonic() >= deadline:
                    break
                time.sleep(poll)
        yield acquired
    finally:
        if acquired:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
        os.close(fd)


def canonical_json(doc: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def checksum_of(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def envelope(kind: str, version: int, payload: Any) -> Dict[str, Any]:
    return {
        "magic": MAGIC,
        "kind": kind,
        "version": version,
        "sha256": checksum_of(canonical_json(payload)),
        "payload": payload,
    }


def write_atomic(
    path: Union[str, Path], kind: str, version: int, payload: Any
) -> None:
    """Durably replace ``path`` with an enveloped ``payload``.

    Raises on failure (OSError, injected fault); callers are expected to
    catch and degrade — persistence is best-effort by contract.
    """
    path = Path(path)
    fault_point("persist.write", label=str(path))
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(envelope(kind, version, payload), sort_keys=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    fd = os.open(str(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, text.encode("utf-8"))
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(str(tmp), str(path))
    _fsync_dir(path.parent)


def _fsync_dir(directory: Path) -> None:
    """Make the rename itself durable (best-effort; not all platforms
    allow opening a directory)."""
    try:
        dfd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dfd)
    except OSError:
        pass
    finally:
        os.close(dfd)


def quarantine(path: Path) -> Optional[Path]:
    """Move a corrupt file aside so it is never re-read (or re-trusted).

    Returns the quarantine path, or None if even the rename failed (in
    which case the file is unlinked best-effort)."""
    for n in range(1, 1000):
        target = path.with_name(f"{path.name}.corrupt-{n}")
        if target.exists():
            continue
        try:
            os.replace(str(path), str(target))
            return target
        except OSError:
            break
    try:
        path.unlink()
    except OSError:
        pass
    return None


def load_envelope(
    path: Union[str, Path], kind: str, version: int
) -> Optional[Any]:
    """Load and validate an enveloped payload; None if absent or unusable.

    Never raises: a missing file is None; a torn/corrupt/tampered or
    wrong-kind file is quarantined and None; a read error (including an
    injected ``persist.read`` fault) is counted and None; a valid file
    of a *newer* version is left in place and None.
    """
    path = Path(path)
    tracer = get_tracer()
    try:
        fault_point("persist.read", label=str(path))
        text = path.read_text()
    except FileNotFoundError:
        return None
    except Exception:
        tracer.count("persist.read_failures")
        return None
    try:
        doc = json.loads(text)
        if not isinstance(doc, dict) or doc.get("magic") != MAGIC:
            raise ValueError("bad magic")
        if doc.get("kind") != kind:
            raise ValueError(f"kind mismatch: {doc.get('kind')!r}")
        found_version = doc["version"]
        payload = doc["payload"]
        if doc["sha256"] != checksum_of(canonical_json(payload)):
            raise ValueError("checksum mismatch")
    except Exception:
        tracer.count("persist.quarantined")
        quarantine(path)
        return None
    if found_version != version:
        # A future (or past) format we don't speak: treat as absent but
        # preserve the bytes — quarantining would destroy data a newer
        # build could still use.
        tracer.count("persist.version_skew")
        return None
    return payload
