"""Content-addressed compile cache.

Finished :class:`CompileResult`\\ s are memoized across processes under
a canonical hash of ``(spec, device, solver-relevant options)`` (see
:mod:`repro.persist.fingerprint`), so harness table regeneration and
repeated ``bench``/``compile`` runs hit disk instead of re-running
hours of synthesis.

Only ``STATUS_OK`` results are stored: failures depend on wall-clock
budgets and machine speed, so re-deriving them is both cheap to decide
and the only correct choice.

Every entry is an atomic, checksummed envelope
(:mod:`repro.persist.atomic`): a torn or tampered entry is quarantined
and counted as an invalidation, never served.  On every hit the stored
program is additionally re-checked against the device profile — a
defense-in-depth guard (the key already pins the device) that also
catches entries written by a buggy build.

Certifying compiles park an equivalence certificate *next to* each
entry (``<key>.cert.json``, see :mod:`repro.persist.certify`); the
entry walk skips them so they are never mistaken for results, and
``verify(deep=True)`` re-validates them with the solver out of the
loop.

Observability counters: ``cache.hit``, ``cache.miss``, ``cache.store``,
``cache.invalidated``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.result import STATUS_OK, CompileResult
from ..hw.device import DeviceProfile
from ..ir.spec import ParserSpec
from ..obs import get_tracer
from ..resilience.injection import fault_point
from .atomic import load_envelope, quarantine, write_atomic
from .fingerprint import compile_key
from .serialize import result_from_doc, result_to_doc

CACHE_KIND = "compile-result"
CACHE_VERSION = 1

# Certificate sibling files (repro.persist.certify).  They end in
# ``.json`` too, so every entry walk must test this suffix explicitly.
CERT_SUFFIX = ".cert.json"


class CompileCache:
    """A directory of enveloped compile results, sharded by key prefix."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def cert_path(self, key: str) -> Path:
        """Where ``key``'s equivalence certificate lives (next to the
        entry, same shard)."""
        return self.directory / key[:2] / f"{key}{CERT_SUFFIX}"

    # ------------------------------------------------------------------
    def lookup(
        self, key: str, device: DeviceProfile
    ) -> Optional[CompileResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        tracer = get_tracer()
        path = self.entry_path(key)
        payload = load_envelope(path, CACHE_KIND, CACHE_VERSION)
        if payload is None:
            if path.exists() or any(
                p.name.startswith(f"{key}.json.corrupt")
                for p in (
                    path.parent.iterdir() if path.parent.is_dir() else []
                )
            ):
                tracer.count("cache.invalidated")
            tracer.count("cache.miss")
            return None
        result = result_from_doc(payload.get("result", {}), device)
        if (
            result is None
            or not result.ok
            or result.constraint_violations(device)
        ):
            quarantine(path)
            tracer.count("cache.invalidated")
            tracer.count("cache.miss")
            return None
        result.cached = True
        tracer.count("cache.hit")
        return result

    def store(
        self,
        key: str,
        result: CompileResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Persist a successful result; best-effort (False on failure)."""
        if result.status != STATUS_OK or result.program is None:
            return False
        payload = {"key": key, "result": result_to_doc(result)}
        if meta:
            payload["meta"] = meta
        try:
            fault_point("cache.store", label=key)
            write_atomic(self.entry_path(key), CACHE_KIND, CACHE_VERSION,
                         payload)
        except Exception:
            get_tracer().count("persist.write_failures")
            return False
        get_tracer().count("cache.store")
        return True

    # ------------------------------------------------------------------
    def _shards(self):
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if shard.is_dir():
                yield shard

    def _entries(self):
        """Every result entry (never certificates, never quarantined
        files)."""
        for shard in self._shards():
            for path in sorted(shard.iterdir()):
                if (
                    path.suffix == ".json"
                    and ".corrupt" not in path.name
                    and not path.name.endswith(CERT_SUFFIX)
                ):
                    yield path

    def _certificates(self):
        for shard in self._shards():
            for path in sorted(shard.iterdir()):
                if (
                    path.name.endswith(CERT_SUFFIX)
                    and ".corrupt" not in path.name
                ):
                    yield path

    def _quarantined(self):
        for shard in self._shards():
            for path in sorted(shard.iterdir()):
                if ".corrupt" in path.name:
                    yield path

    def _prune_empty_shards(self) -> None:
        for shard in list(self._shards()):
            try:
                next(shard.iterdir())
            except StopIteration:
                try:
                    shard.rmdir()
                except OSError:
                    pass
            except OSError:
                pass

    def stats(self) -> Dict[str, Any]:
        entries = 0
        certificates = 0
        total_bytes = 0
        corrupt = 0
        for shard in self._shards():
            for path in shard.iterdir():
                if ".corrupt" in path.name:
                    corrupt += 1
                    continue
                if path.name.endswith(CERT_SUFFIX):
                    certificates += 1
                    continue
                if path.suffix == ".json":
                    entries += 1
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "certificates": certificates,
            "bytes": total_bytes,
            "quarantined": corrupt,
        }

    def clear(self) -> int:
        """Delete every (non-quarantined) entry and its certificate;
        returns how many *entries* were removed.  Quarantined files are
        deliberately kept (they are evidence — ``purge_quarantined``
        disposes of them explicitly); shard directories left empty are
        pruned."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        for path in list(self._certificates()):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._prune_empty_shards()
        return removed

    def purge_quarantined(self) -> int:
        """Delete quarantined (``.corrupt-N``) files; returns how many."""
        removed = 0
        for path in list(self._quarantined()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        self._prune_empty_shards()
        return removed

    def verify(self, deep: bool = False) -> Dict[str, int]:
        """Re-validate every entry's envelope; corrupt ones are
        quarantined by the load path, and — unlike ``stats()`` before
        the walk — the report says so: ``quarantined`` counts the
        entries this call moved aside, so the numbers line up with a
        ``stats()`` taken afterwards.

        ``deep=True`` additionally re-validates every equivalence
        certificate offline (:func:`repro.persist.certify.verify_certificate`):
        re-parse the spec, rebuild the program, re-check fingerprints and
        device constraints, and re-run every witness through both
        simulators — the solver is never consulted.  Adds ``cert_ok``,
        ``cert_invalid`` and ``witnesses_checked`` to the report.
        """
        ok = invalid = quarantined = 0
        for path in list(self._entries()):
            payload = load_envelope(path, CACHE_KIND, CACHE_VERSION)
            if payload is None:
                invalid += 1
                if not path.exists():
                    quarantined += 1
            else:
                ok += 1
        report: Dict[str, int] = {
            "ok": ok, "invalid": invalid, "quarantined": quarantined,
        }
        if deep:
            from .certify import load_certificate, verify_certificate

            cert_ok = cert_invalid = witnesses = 0
            for path in list(self._certificates()):
                # "<key>.cert.json" -> the entry key it certifies.
                key = path.name[: -len(CERT_SUFFIX)]
                doc = load_certificate(path)
                if doc is None:
                    cert_invalid += 1
                    if not path.exists():
                        report["quarantined"] += 1
                    continue
                check = verify_certificate(doc, expected_key=key)
                witnesses += check.witnesses_checked
                if check.ok:
                    cert_ok += 1
                else:
                    cert_invalid += 1
                    get_tracer().count("certify.failed")
            report.update(
                cert_ok=cert_ok,
                cert_invalid=cert_invalid,
                witnesses_checked=witnesses,
            )
        return report


def cache_for_options(options) -> Optional[CompileCache]:
    """The cache configured on ``options``, if any."""
    if getattr(options, "cache_dir", None):
        return CompileCache(options.cache_dir)
    return None


def result_cache_key(
    spec: ParserSpec, device: DeviceProfile, options
) -> str:
    return compile_key(spec, device, options)
