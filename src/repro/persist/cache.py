"""Content-addressed compile cache.

Finished :class:`CompileResult`\\ s are memoized across processes under
a canonical hash of ``(spec, device, solver-relevant options)`` (see
:mod:`repro.persist.fingerprint`), so harness table regeneration and
repeated ``bench``/``compile`` runs hit disk instead of re-running
hours of synthesis.

Only ``STATUS_OK`` results are stored: failures depend on wall-clock
budgets and machine speed, so re-deriving them is both cheap to decide
and the only correct choice.

Every entry is an atomic, checksummed envelope
(:mod:`repro.persist.atomic`): a torn or tampered entry is quarantined
and counted as an invalidation, never served.  On every hit the stored
program is additionally re-checked against the device profile — a
defense-in-depth guard (the key already pins the device) that also
catches entries written by a buggy build.

Observability counters: ``cache.hit``, ``cache.miss``, ``cache.store``,
``cache.invalidated``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..core.result import STATUS_OK, CompileResult
from ..hw.device import DeviceProfile
from ..ir.spec import ParserSpec
from ..obs import get_tracer
from .atomic import load_envelope, quarantine, write_atomic
from .fingerprint import compile_key
from .serialize import result_from_doc, result_to_doc

CACHE_KIND = "compile-result"
CACHE_VERSION = 1


class CompileCache:
    """A directory of enveloped compile results, sharded by key prefix."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def lookup(
        self, key: str, device: DeviceProfile
    ) -> Optional[CompileResult]:
        """The cached result for ``key``, or None (counted as a miss)."""
        tracer = get_tracer()
        path = self.entry_path(key)
        payload = load_envelope(path, CACHE_KIND, CACHE_VERSION)
        if payload is None:
            if path.exists() or any(
                p.name.startswith(f"{key}.json.corrupt")
                for p in (
                    path.parent.iterdir() if path.parent.is_dir() else []
                )
            ):
                tracer.count("cache.invalidated")
            tracer.count("cache.miss")
            return None
        result = result_from_doc(payload.get("result", {}), device)
        if (
            result is None
            or not result.ok
            or result.constraint_violations(device)
        ):
            quarantine(path)
            tracer.count("cache.invalidated")
            tracer.count("cache.miss")
            return None
        result.cached = True
        tracer.count("cache.hit")
        return result

    def store(
        self,
        key: str,
        result: CompileResult,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Persist a successful result; best-effort (False on failure)."""
        if result.status != STATUS_OK or result.program is None:
            return False
        payload = {"key": key, "result": result_to_doc(result)}
        if meta:
            payload["meta"] = meta
        try:
            write_atomic(self.entry_path(key), CACHE_KIND, CACHE_VERSION,
                         payload)
        except Exception:
            get_tracer().count("persist.write_failures")
            return False
        get_tracer().count("cache.store")
        return True

    # ------------------------------------------------------------------
    def _entries(self):
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.suffix == ".json" and ".corrupt" not in path.name:
                    yield path

    def stats(self) -> Dict[str, Any]:
        entries = 0
        total_bytes = 0
        corrupt = 0
        if self.directory.is_dir():
            for shard in sorted(self.directory.iterdir()):
                if not shard.is_dir():
                    continue
                for path in shard.iterdir():
                    if ".corrupt" in path.name:
                        corrupt += 1
                        continue
                    if path.suffix == ".json":
                        entries += 1
                        try:
                            total_bytes += path.stat().st_size
                        except OSError:
                            pass
        return {
            "directory": str(self.directory),
            "entries": entries,
            "bytes": total_bytes,
            "quarantined": corrupt,
        }

    def clear(self) -> int:
        """Delete every (non-quarantined) entry; returns how many."""
        removed = 0
        for path in list(self._entries()):
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def verify(self) -> Dict[str, int]:
        """Re-validate every entry's envelope; corrupt ones are
        quarantined by the load path.  Returns {'ok': n, 'invalid': m}."""
        ok = invalid = 0
        for path in list(self._entries()):
            payload = load_envelope(path, CACHE_KIND, CACHE_VERSION)
            if payload is None:
                invalid += 1
            else:
                ok += 1
        return {"ok": ok, "invalid": invalid}


def cache_for_options(options) -> Optional[CompileCache]:
    """The cache configured on ``options``, if any."""
    if getattr(options, "cache_dir", None):
        return CompileCache(options.cache_dir)
    return None


def result_cache_key(
    spec: ParserSpec, device: DeviceProfile, options
) -> str:
    return compile_key(spec, device, options)
