"""Durable compile-state persistence (checkpoints, resume, compile cache).

Three pieces, layered on one durability substrate:

* :mod:`repro.persist.atomic` — atomic, checksummed, versioned JSON
  files with quarantine-on-corruption (never crash on a torn file);
* :mod:`repro.persist.checkpoint` — CEGIS/budget-search checkpoints so
  an interrupted, killed or timed-out compile resumes seeded with every
  previously discovered counterexample and skips exhausted budgets/arms;
* :mod:`repro.persist.cache` — a content-addressed store of finished
  results keyed by canonical ``(spec, device, options)`` fingerprints
  (:mod:`repro.persist.fingerprint`), memoizing compiles across
  processes.

Sits above :mod:`repro.ir`/:mod:`repro.hw`/:mod:`repro.core.result` and
below the compiler driver; imports nothing from ``core.compiler`` or
``core.parallel`` (they import us).
"""

from .atomic import canonical_json, load_envelope, quarantine, write_atomic
from .cache import CompileCache, cache_for_options, result_cache_key
from .certify import (
    CertificateCheck,
    certificate_doc,
    check_proof_bundle,
    load_certificate,
    store_proof_bundle,
    verify_certificate,
    write_certificate,
)
from .checkpoint import (
    CheckpointManager,
    arm_checkpoint_dir,
    flush_active,
)
from .fingerprint import (
    compile_key,
    device_fingerprint,
    options_fingerprint,
    program_fingerprint,
    spec_fingerprint,
)
from .serialize import (
    program_from_doc,
    program_to_doc,
    result_from_doc,
    result_to_doc,
)

__all__ = [
    "CertificateCheck",
    "CheckpointManager",
    "CompileCache",
    "arm_checkpoint_dir",
    "cache_for_options",
    "canonical_json",
    "certificate_doc",
    "check_proof_bundle",
    "compile_key",
    "device_fingerprint",
    "flush_active",
    "load_certificate",
    "load_envelope",
    "options_fingerprint",
    "program_fingerprint",
    "program_from_doc",
    "program_to_doc",
    "quarantine",
    "result_cache_key",
    "result_from_doc",
    "result_to_doc",
    "spec_fingerprint",
    "store_proof_bundle",
    "verify_certificate",
    "write_atomic",
    "write_certificate",
]
