"""Canonical content fingerprints for specs, devices, options, programs.

The persistence layer is content-addressed: a checkpoint belongs to one
compile identity and a cache entry to one ``(spec, device, options)``
triple, both named by a SHA-256 over a *canonical* JSON serialization.
Canonical means:

* mappings are emitted with sorted keys, so dict insertion order — which
  varies with construction path and would otherwise leak
  ``PYTHONHASHSEED`` into the hash — never reaches the digest;
* semantically ordered sequences (rule lists, extraction order, key
  parts, TCAM entry priority order) keep their order;
* presentation-only state is excluded: ``ParserSpec.state_order`` only
  affects source rendering, and the non-solver-relevant
  :class:`~repro.core.options.CompileOptions` fields (wall-clock budget,
  worker count, and the persistence configuration itself) are excluded
  so that e.g. re-running with a different ``--timeout`` still hits the
  cache.

``tests/persist/test_fingerprint.py`` pins the stability guarantees
(insertion-order independence, cross-process / cross-``PYTHONHASHSEED``
reproducibility).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Any, Dict

from ..hw.device import DeviceProfile
from ..hw.impl import TcamProgram
from ..ir.spec import FieldKey, LookaheadKey, ParserSpec

CANONICAL_VERSION = 1

# CompileOptions fields that cannot change which program a *successful*
# compile produces: execution-shape knobs and the persistence config.
# ``certify`` only *observes* (DRAT logging + certificate emission), so
# flipping it must not invalidate existing cache entries.
# ``eqsat`` is deliberately NOT here: equality-saturation normalization
# changes the spec the skeleton enumerates, so cache and checkpoint
# entries from the two regimes must never mix.
NON_SEMANTIC_OPTIONS = frozenset(
    {
        "parallel_workers",
        "schedule",
        "total_max_seconds",
        "checkpoint_dir",
        "resume",
        "checkpoint_interval_seconds",
        "cache_dir",
        "certify",
    }
)


def canonical_json(doc: Any) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest_of(doc: Any) -> str:
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Spec
# ---------------------------------------------------------------------------

def _key_part_doc(part) -> Dict[str, Any]:
    if isinstance(part, LookaheadKey):
        return {"kind": "lookahead", "offset": part.offset,
                "width": part.width}
    assert isinstance(part, FieldKey)
    return {"kind": "field", "field": part.field, "hi": part.hi,
            "lo": part.lo}


def spec_doc(spec: ParserSpec) -> Dict[str, Any]:
    """Canonical document for a :class:`ParserSpec`.

    ``state_order`` is deliberately absent: it changes ``to_source``
    rendering but not parsing semantics, so two specs differing only in
    it must share a fingerprint."""
    return {
        "v": CANONICAL_VERSION,
        "name": spec.name,
        "start": spec.start,
        "fields": {
            name: {
                "width": f.width,
                "varbit": f.is_varbit,
                "length_field": f.length_field,
                "length_multiplier": f.length_multiplier,
                "stack_depth": f.stack_depth,
            }
            for name, f in spec.fields.items()
        },
        "states": {
            name: {
                "extracts": list(s.extracts),
                "key": [_key_part_doc(k) for k in s.key],
                "rules": [
                    {
                        "next": r.next_state,
                        "patterns": [
                            {
                                "value": p.value,
                                "mask": p.mask,
                                "wildcard": p.wildcard,
                            }
                            for p in r.patterns
                        ],
                    }
                    for r in s.rules
                ],
            }
            for name, s in spec.states.items()
        },
    }


def spec_fingerprint(spec: ParserSpec) -> str:
    return digest_of(spec_doc(spec))


# ---------------------------------------------------------------------------
# Device / options
# ---------------------------------------------------------------------------

def device_doc(device: DeviceProfile) -> Dict[str, Any]:
    return {"v": CANONICAL_VERSION, **asdict(device)}


def device_fingerprint(device: DeviceProfile) -> str:
    return digest_of(device_doc(device))


def options_doc(options) -> Dict[str, Any]:
    """Solver-relevant option fields only (see ``NON_SEMANTIC_OPTIONS``)."""
    return {
        "v": CANONICAL_VERSION,
        **{
            k: v
            for k, v in asdict(options).items()
            if k not in NON_SEMANTIC_OPTIONS
        },
    }


def options_fingerprint(options) -> str:
    return digest_of(options_doc(options))


# ---------------------------------------------------------------------------
# Compile identity and program hash
# ---------------------------------------------------------------------------

def compile_key(spec: ParserSpec, device: DeviceProfile, options) -> str:
    """The content address of one compilation problem."""
    return digest_of(
        {
            "v": CANONICAL_VERSION,
            "spec": spec_doc(spec),
            "device": device_doc(device),
            "options": options_doc(options),
        }
    )


def program_fingerprint(program: TcamProgram) -> str:
    """Content hash of a synthesized TCAM program (entry order kept —
    TCAM priority is semantic)."""
    from .serialize import program_to_doc

    return digest_of(program_to_doc(program))
