"""Offline-checkable equivalence certificates and UNSAT proof bundles.

A *certificate* is the winner-path artifact of a certifying compile
(``CompileOptions.certify``): everything needed to re-validate a
synthesized program **without re-running the solver** —

* the spec **source** (``ParserSpec.to_source()``) and its fingerprint,
  so the checker re-parses the problem statement rather than trusting a
  pickled object;
* the **device** document and fingerprint;
* the winning **program** document and fingerprint;
* the **constraint digest** — SHA-256 over the exact CNF clause stream
  the winning solve accumulated (:meth:`ProofLog.input_digest`), pinning
  which constraint set the model satisfied;
* the **witness tests** — the counterexamples and seed tests the CEGIS
  run encoded (the TestPool contents as seen by the winning session),
  stored as ``[uint, bit-length]`` pairs.

:func:`verify_certificate` replays all of that offline: re-parse the
spec, rebuild the device and program, re-check fingerprints, re-check
the device constraints, and run every witness through both the spec
simulator and the TCAM program simulator, requiring behavioral
equivalence on each.  None of it touches the SMT layer.

An *UNSAT proof bundle* is the failure-path counterpart: when a budget
is retired (CEGIS proved the budget infeasible) under certification,
the solver's DRAT log and the CNF it refutes are written as plain-text
DIMACS/DRAT files under ``<checkpoint-dir>/proofs/`` and referenced
from the checkpoint manifest.  :func:`check_proof_bundle` re-verifies
one with the independent RUP checker (:mod:`repro.smt.sat.dratcheck`).

Certificates ride the atomic-envelope substrate
(:mod:`repro.persist.atomic`); proof bundles are deliberately *plain*
DIMACS + DRAT so any external DRAT checker can consume them, with their
SHA-256s recorded in the bundle manifest returned to the caller.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..hw.device import DeviceProfile
from ..ir.bits import Bits
from ..ir.simulator import SimulationError, equivalent_behavior, simulate_spec
from ..ir.spec import ParserSpec, parse_spec
from ..obs import get_tracer
from .atomic import load_envelope, write_atomic
from .fingerprint import device_fingerprint, program_fingerprint, spec_fingerprint
from .serialize import program_from_doc, program_to_doc

CERT_KIND = "equivalence-certificate"
CERT_VERSION = 1
CERT_SUFFIX = ".cert.json"

PROOF_DIRNAME = "proofs"


# ---------------------------------------------------------------------------
# Certificates
# ---------------------------------------------------------------------------

def certificate_doc(
    spec: ParserSpec,
    device: DeviceProfile,
    program,
    *,
    compile_key: str,
    constraint_digest: str,
    witnesses: Sequence[Bits],
    max_steps: int,
) -> Dict[str, Any]:
    """Build the certificate payload for one winning compile."""
    from dataclasses import asdict

    return {
        "compile_key": compile_key,
        "spec_source": spec.to_source(),
        "spec_start": spec.start,
        "spec_fingerprint": spec_fingerprint(spec),
        "device": asdict(device),
        "device_fingerprint": device_fingerprint(device),
        "program": program_to_doc(program),
        "program_fingerprint": program_fingerprint(program),
        "constraint_digest": constraint_digest,
        "witnesses": [[b.uint(), len(b)] for b in witnesses],
        "max_steps": max_steps,
    }


def write_certificate(path: Union[str, Path], doc: Dict[str, Any]) -> bool:
    """Persist a certificate; best-effort like every cache write."""
    try:
        write_atomic(Path(path), CERT_KIND, CERT_VERSION, doc)
    except Exception:
        get_tracer().count("persist.write_failures")
        return False
    get_tracer().count("certify.written")
    return True


def load_certificate(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load a certificate envelope; None when absent/corrupt (quarantined
    by the envelope layer, like any persisted artifact)."""
    return load_envelope(Path(path), CERT_KIND, CERT_VERSION)


@dataclass
class CertificateCheck:
    """Outcome of one offline certificate verification."""

    ok: bool
    reason: str = ""
    witnesses_checked: int = 0

    def __bool__(self) -> bool:
        return self.ok


def verify_certificate(
    doc: Dict[str, Any], expected_key: str = ""
) -> CertificateCheck:
    """Re-validate a certificate with the solver fully out of the loop.

    Checks, in order: the compile key (when the caller knows which entry
    the certificate sits next to), all three content fingerprints
    (tamper detection — the fingerprints are recomputed from the
    re-parsed/rebuilt artifacts, not read back), the device constraint
    check, and every witness test through both simulators.
    """
    tracer = get_tracer()
    if expected_key and doc.get("compile_key") != expected_key:
        return CertificateCheck(False, "compile_key mismatch")
    try:
        spec = parse_spec(
            doc["spec_source"], start=doc.get("spec_start", "start")
        )
    except Exception as exc:
        return CertificateCheck(False, f"spec source does not parse: {exc}")
    if spec_fingerprint(spec) != doc.get("spec_fingerprint"):
        return CertificateCheck(False, "spec fingerprint mismatch")
    try:
        device = DeviceProfile(**doc["device"])
    except Exception as exc:
        return CertificateCheck(False, f"device does not rebuild: {exc}")
    if device_fingerprint(device) != doc.get("device_fingerprint"):
        return CertificateCheck(False, "device fingerprint mismatch")
    try:
        program = program_from_doc(doc["program"])
    except Exception as exc:
        return CertificateCheck(False, f"program does not rebuild: {exc}")
    if program_fingerprint(program) != doc.get("program_fingerprint"):
        return CertificateCheck(False, "program fingerprint mismatch")
    violations = program.check_constraints(device)
    if violations:
        return CertificateCheck(
            False, "device constraint violations: " + "; ".join(violations)
        )
    max_steps = int(doc.get("max_steps", 64))
    checked = 0
    for value, length in doc.get("witnesses", []):
        bits = Bits(value, length)
        try:
            want = simulate_spec(spec, bits, max_steps=max_steps)
            got = program.simulate(bits, max_steps=max_steps)
        except SimulationError as exc:
            return CertificateCheck(
                False, f"witness {checked} failed to simulate: {exc}", checked
            )
        if not equivalent_behavior(want, got):
            return CertificateCheck(
                False,
                f"witness {checked} distinguishes spec and program "
                f"({want.outcome} vs {got.outcome})",
                checked,
            )
        checked += 1
        tracer.count("certify.witness_checked")
    return CertificateCheck(True, "", checked)


# ---------------------------------------------------------------------------
# UNSAT proof bundles
# ---------------------------------------------------------------------------

def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def store_proof_bundle(
    directory: Union[str, Path],
    compile_key: str,
    arm_key: str,
    budget_id: str,
    proof,
) -> Optional[Dict[str, Any]]:
    """Write one retired budget's CNF + DRAT pair; returns the manifest
    reference (paths relative to ``directory`` plus content hashes), or
    None on write failure (best-effort, like checkpoint flushes)."""
    root = Path(directory) / PROOF_DIRNAME
    slug = "".join(
        ch if ch.isalnum() or ch in "-_" else "_"
        for ch in f"{arm_key}.{budget_id}"
    )
    stem = f"{compile_key[:16]}.{slug}"
    cnf_text = proof.input_dimacs()
    drat_text = proof.to_drat()
    try:
        root.mkdir(parents=True, exist_ok=True)
        cnf_path = root / f"{stem}.cnf"
        drat_path = root / f"{stem}.drat"
        cnf_path.write_text(cnf_text)
        drat_path.write_text(drat_text)
    except OSError:
        get_tracer().count("persist.write_failures")
        return None
    get_tracer().count("certify.proofs_stored")
    return {
        "cnf": f"{PROOF_DIRNAME}/{stem}.cnf",
        "drat": f"{PROOF_DIRNAME}/{stem}.drat",
        "cnf_sha256": _sha256_text(cnf_text),
        "drat_sha256": _sha256_text(drat_text),
        "refutation": bool(proof.has_refutation),
    }


def check_proof_bundle(
    directory: Union[str, Path], ref: Dict[str, Any]
) -> Tuple[bool, str]:
    """Re-verify a stored proof bundle with the independent RUP checker.

    Returns ``(ok, reason)``.  Hash mismatches (tampered bundle) and
    checker rejections are both failures.
    """
    from ..smt.sat.dimacs import parse_dimacs
    from ..smt.sat.dratcheck import check_proof, parse_drat

    root = Path(directory)
    try:
        cnf_text = (root / ref["cnf"]).read_text()
        drat_text = (root / ref["drat"]).read_text()
    except OSError as exc:
        return False, f"bundle unreadable: {exc}"
    if _sha256_text(cnf_text) != ref.get("cnf_sha256"):
        return False, "CNF hash mismatch"
    if _sha256_text(drat_text) != ref.get("drat_sha256"):
        return False, "DRAT hash mismatch"
    try:
        num_vars, clauses = parse_dimacs(cnf_text)
        steps = parse_drat(drat_text)
    except ValueError as exc:
        return False, f"bundle malformed: {exc}"
    result = check_proof(num_vars, clauses, steps)
    if not result.ok:
        return False, result.reason or "proof rejected"
    return True, ""


__all__ = [
    "CERT_KIND",
    "CERT_SUFFIX",
    "CERT_VERSION",
    "CertificateCheck",
    "certificate_doc",
    "check_proof_bundle",
    "load_certificate",
    "store_proof_bundle",
    "verify_certificate",
    "write_certificate",
]
