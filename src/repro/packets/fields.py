"""Header field descriptors and checksum helpers for packet crafting.

A tiny declarative layer in the spirit of Scapy: each header class lists
``FieldDef`` descriptors (name, bit width, default), and instances render
to :class:`~repro.ir.bits.Bits` in declaration order.  This is the §7.1
test-packet substrate (the paper uses Scapy + bmv2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..ir.bits import Bits


@dataclass(frozen=True)
class FieldDef:
    """One field of a header layout."""

    name: str
    width: int                      # bits
    default: int = 0

    def render(self, value: Optional[int]) -> Bits:
        v = self.default if value is None else value
        if v < 0 or v >= (1 << self.width):
            raise ValueError(
                f"{self.name}={v:#x} does not fit in {self.width} bits"
            )
        return Bits(v, self.width)


def ones_complement_sum(data: bytes) -> int:
    """RFC 1071 ones'-complement sum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
        total = (total & 0xFFFF) + (total >> 16)
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data: bytes) -> int:
    """The Internet checksum (used by IPv4/ICMP; TCP/UDP add a pseudo
    header before calling this)."""
    return (~ones_complement_sum(data)) & 0xFFFF


def pseudo_header_v4(
    src: int, dst: int, protocol: int, length: int
) -> bytes:
    return (
        src.to_bytes(4, "big")
        + dst.to_bytes(4, "big")
        + bytes([0, protocol])
        + length.to_bytes(2, "big")
    )
