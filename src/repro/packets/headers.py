"""Concrete protocol headers: Ethernet, 802.1Q, MPLS, IPv4, IPv6, TCP,
UDP, ICMP, VXLAN, Geneve.

Each header is a Python class with a declarative ``LAYOUT``; construct
with keyword overrides (``IPv4(ttl=1, dst=0x0A000001)``), stack with
``/`` (Scapy style), and render with ``bits()`` / ``bytes()``.
Auto-fields (lengths, checksums, next-protocol numbers) are computed at
render time unless explicitly pinned.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.bits import Bits
from .fields import FieldDef, internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_IPV6 = 0x86DD
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_MPLS = 0x8847
PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17
UDP_PORT_VXLAN = 4789
UDP_PORT_GENEVE = 6081


class Header:
    """Base class: declarative layout + layering via ``/``."""

    LAYOUT: List[FieldDef] = []
    NAME = "header"

    def __init__(self, **overrides: int) -> None:
        known = {f.name for f in self.LAYOUT}
        for key in overrides:
            if key not in known:
                raise TypeError(f"{self.NAME} has no field {key!r}")
        self.values: Dict[str, Optional[int]] = {
            f.name: overrides.get(f.name) for f in self.LAYOUT
        }
        self.payload: Optional[Header] = None

    # -- layering ---------------------------------------------------------
    def __truediv__(self, other: "Header") -> "Header":
        node = self
        while node.payload is not None:
            node = node.payload
        node.payload = other
        return self

    def layers(self) -> List["Header"]:
        out: List[Header] = []
        node: Optional[Header] = self
        while node is not None:
            out.append(node)
            node = node.payload
        return out

    def layer(self, cls: type) -> Optional["Header"]:
        for node in self.layers():
            if isinstance(node, cls):
                return node
        return None

    # -- rendering ----------------------------------------------------------
    def _auto(self, name: str) -> Optional[int]:
        """Subclasses compute auto fields (lengths, protocols, checksums)."""
        return None

    def header_bits(self) -> Bits:
        parts = []
        for fdef in self.LAYOUT:
            value = self.values[fdef.name]
            if value is None:
                value = self._auto(fdef.name)
            parts.append(fdef.render(value))
        return Bits.concat(parts)

    def bits(self) -> Bits:
        out = self.header_bits()
        if self.payload is not None:
            out = out + self.payload.bits()
        return out

    def to_bytes(self) -> bytes:
        return self.bits().to_bytes()

    def payload_length_bytes(self) -> int:
        if self.payload is None:
            return 0
        return len(self.payload.bits()) // 8

    def __repr__(self) -> str:
        inner = f" / {self.payload!r}" if self.payload else ""
        shown = ", ".join(
            f"{k}={v:#x}" for k, v in self.values.items() if v is not None
        )
        return f"{self.NAME}({shown}){inner}"


class Raw(Header):
    """Opaque payload bytes."""

    NAME = "raw"
    LAYOUT: List[FieldDef] = []

    def __init__(self, data: bytes = b"") -> None:
        super().__init__()
        self.data = data

    def header_bits(self) -> Bits:
        return Bits.from_bytes(self.data)


class Ether(Header):
    NAME = "ethernet"
    LAYOUT = [
        FieldDef("dst", 48, 0xFFFFFFFFFFFF),
        FieldDef("src", 48, 0x02_00_00_00_00_01),
        FieldDef("etherType", 16, ETHERTYPE_IPV4),
    ]

    def _auto(self, name: str) -> Optional[int]:
        if name == "etherType" and self.payload is not None:
            mapping = {
                IPv4: ETHERTYPE_IPV4,
                IPv6: ETHERTYPE_IPV6,
                Dot1Q: ETHERTYPE_VLAN,
                MPLS: ETHERTYPE_MPLS,
            }
            for cls, value in mapping.items():
                if isinstance(self.payload, cls):
                    return value
        return None


class Dot1Q(Header):
    NAME = "dot1q"
    LAYOUT = [
        FieldDef("pcp", 3),
        FieldDef("dei", 1),
        FieldDef("vid", 12, 1),
        FieldDef("etherType", 16, ETHERTYPE_IPV4),
    ]

    def _auto(self, name: str) -> Optional[int]:
        if name == "etherType" and self.payload is not None:
            if isinstance(self.payload, IPv4):
                return ETHERTYPE_IPV4
            if isinstance(self.payload, IPv6):
                return ETHERTYPE_IPV6
            if isinstance(self.payload, MPLS):
                return ETHERTYPE_MPLS
        return None


class MPLS(Header):
    NAME = "mpls"
    LAYOUT = [
        FieldDef("label", 20),
        FieldDef("tc", 3),
        FieldDef("bos", 1),
        FieldDef("ttl", 8, 64),
    ]

    def _auto(self, name: str) -> Optional[int]:
        if name == "bos":
            return 0 if isinstance(self.payload, MPLS) else 1
        return None


class IPv4(Header):
    NAME = "ipv4"
    LAYOUT = [
        FieldDef("version", 4, 4),
        FieldDef("ihl", 4, 5),
        FieldDef("dscp", 6),
        FieldDef("ecn", 2),
        FieldDef("totalLen", 16),
        FieldDef("identification", 16),
        FieldDef("flags", 3),
        FieldDef("fragOffset", 13),
        FieldDef("ttl", 8, 64),
        FieldDef("protocol", 8),
        FieldDef("checksum", 16),
        FieldDef("src", 32, 0x0A000001),
        FieldDef("dst", 32, 0x0A000002),
    ]

    def __init__(self, options: bytes = b"", **overrides: int) -> None:
        if len(options) % 4:
            raise ValueError("IPv4 options must be 32-bit aligned")
        self.options = options
        super().__init__(**overrides)

    def _auto(self, name: str) -> Optional[int]:
        if name == "ihl":
            return 5 + len(self.options) // 4
        if name == "totalLen":
            return 20 + len(self.options) + self.payload_length_bytes()
        if name == "protocol":
            if isinstance(self.payload, TCP):
                return PROTO_TCP
            if isinstance(self.payload, UDP):
                return PROTO_UDP
            if isinstance(self.payload, ICMP):
                return PROTO_ICMP
            return 0
        if name == "checksum":
            return 0  # placeholder; patched in header_bits
        return None

    def header_bits(self) -> Bits:
        base = super().header_bits() + Bits.from_bytes(self.options)
        raw = bytearray(base.to_bytes())
        raw[10:12] = b"\x00\x00"
        if self.values["checksum"] is None:
            checksum = internet_checksum(bytes(raw))
            raw[10:12] = checksum.to_bytes(2, "big")
        else:
            raw[10:12] = self.values["checksum"].to_bytes(2, "big")
        return Bits.from_bytes(bytes(raw))


class IPv6(Header):
    NAME = "ipv6"
    LAYOUT = [
        FieldDef("version", 4, 6),
        FieldDef("trafficClass", 8),
        FieldDef("flowLabel", 20),
        FieldDef("payloadLen", 16),
        FieldDef("nextHeader", 8),
        FieldDef("hopLimit", 8, 64),
        FieldDef("src", 128, 0xFE80 << 112 | 1),
        FieldDef("dst", 128, 0xFE80 << 112 | 2),
    ]

    def _auto(self, name: str) -> Optional[int]:
        if name == "payloadLen":
            return self.payload_length_bytes()
        if name == "nextHeader":
            if isinstance(self.payload, TCP):
                return PROTO_TCP
            if isinstance(self.payload, UDP):
                return PROTO_UDP
            return 59  # no next header
        return None


class TCP(Header):
    NAME = "tcp"
    LAYOUT = [
        FieldDef("sport", 16, 1234),
        FieldDef("dport", 16, 80),
        FieldDef("seq", 32),
        FieldDef("ack", 32),
        FieldDef("dataOffset", 4, 5),
        FieldDef("reserved", 4),
        FieldDef("flags", 8, 0x02),
        FieldDef("window", 16, 0xFFFF),
        FieldDef("checksum", 16),
        FieldDef("urgent", 16),
    ]


class UDP(Header):
    NAME = "udp"
    LAYOUT = [
        FieldDef("sport", 16, 1234),
        FieldDef("dport", 16, 53),
        FieldDef("length", 16),
        FieldDef("checksum", 16),
    ]

    def _auto(self, name: str) -> Optional[int]:
        if name == "length":
            return 8 + self.payload_length_bytes()
        if name == "dport":
            if isinstance(self.payload, VXLAN):
                return UDP_PORT_VXLAN
            if isinstance(self.payload, Geneve):
                return UDP_PORT_GENEVE
            return None
        return None


class ICMP(Header):
    NAME = "icmp"
    LAYOUT = [
        FieldDef("type", 8, 8),
        FieldDef("code", 8),
        FieldDef("checksum", 16),
        FieldDef("identifier", 16),
        FieldDef("sequence", 16),
    ]

    def header_bits(self) -> Bits:
        base = super().header_bits()
        raw = bytearray(base.to_bytes())
        if self.values["checksum"] is None:
            raw[2:4] = b"\x00\x00"
            raw[2:4] = internet_checksum(bytes(raw)).to_bytes(2, "big")
        return Bits.from_bytes(bytes(raw))


class VXLAN(Header):
    NAME = "vxlan"
    LAYOUT = [
        FieldDef("flags", 8, 0x08),
        FieldDef("reserved1", 24),
        FieldDef("vni", 24, 1),
        FieldDef("reserved2", 8),
    ]


class Geneve(Header):
    NAME = "geneve"
    LAYOUT = [
        FieldDef("version", 2),
        FieldDef("optLen", 6),          # in 4-byte units
        FieldDef("oam", 1),
        FieldDef("critical", 1),
        FieldDef("reserved", 6),
        FieldDef("protocolType", 16, 0x6558),
        FieldDef("vni", 24, 1),
        FieldDef("reserved2", 8),
    ]

    def __init__(self, options: bytes = b"", **overrides: int) -> None:
        if len(options) % 4:
            raise ValueError("Geneve options must be 32-bit aligned")
        self.options = options
        super().__init__(**overrides)

    def _auto(self, name: str) -> Optional[int]:
        if name == "optLen":
            return len(self.options) // 4
        return None

    def header_bits(self) -> Bits:
        return super().header_bits() + Bits.from_bytes(self.options)
