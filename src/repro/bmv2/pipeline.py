"""A miniature behavioural switch model: parser + match-action tables.

The parse stage runs a compiled :class:`TcamProgram` (or, for differential
testing, the specification simulator); the match-action stage applies
exact/ternary tables over parsed fields to pick an egress port or drop.
Rejected packets drop at the parser, exactly like bmv2's parser
exceptions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..hw.impl import TcamProgram
from ..hw.tcam import TernaryPattern
from ..ir.bits import Bits
from ..ir.simulator import OUTCOME_ACCEPT, ParseResult, simulate_spec
from ..ir.spec import ParserSpec
from ..packets.headers import Header

DROP = -1


@dataclass
class PipelineResult:
    """What happened to one packet."""

    port: int                       # egress port, or DROP
    parse: ParseResult
    matched_rules: List[str] = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return self.port != DROP


class MatchActionTable:
    """Exact/ternary match over one parsed field, action = set egress."""

    def __init__(self, name: str, key_field: str, key_width: int) -> None:
        self.name = name
        self.key_field = key_field
        self.key_width = key_width
        self.rules: List[Tuple[TernaryPattern, int, str]] = []
        self.default_port = DROP

    def add_exact(self, value: int, port: int, label: str = "") -> None:
        full = (1 << self.key_width) - 1
        self.rules.append(
            (TernaryPattern(value, full, self.key_width), port, label or hex(value))
        )

    def add_ternary(
        self, value: int, mask: int, port: int, label: str = ""
    ) -> None:
        self.rules.append(
            (TernaryPattern(value, mask, self.key_width), port,
             label or f"{value:#x}/{mask:#x}")
        )

    def set_default(self, port: int) -> None:
        self.default_port = port

    def lookup(self, od: Dict[str, int]) -> Tuple[int, Optional[str]]:
        if self.key_field not in od:
            return self.default_port, None
        key = od[self.key_field]
        for pattern, port, label in self.rules:
            if pattern.matches(key):
                return port, f"{self.name}:{label}"
        return self.default_port, None


class BehavioralModel:
    """Parser + a chain of match-action tables."""

    def __init__(
        self,
        parser: Union[TcamProgram, ParserSpec],
        max_steps: int = 64,
    ) -> None:
        self.parser = parser
        self.max_steps = max_steps
        self.tables: List[MatchActionTable] = []

    def add_table(self, table: MatchActionTable) -> MatchActionTable:
        self.tables.append(table)
        return table

    def parse(self, packet: Union[Header, Bits, bytes]) -> ParseResult:
        bits = _to_bits(packet)
        if isinstance(self.parser, TcamProgram):
            return self.parser.simulate(bits, self.max_steps)
        return simulate_spec(self.parser, bits, self.max_steps)

    def process(self, packet: Union[Header, Bits, bytes]) -> PipelineResult:
        parse = self.parse(packet)
        if parse.outcome != OUTCOME_ACCEPT:
            return PipelineResult(DROP, parse)
        port = DROP
        matched: List[str] = []
        for table in self.tables:
            port, label = table.lookup(parse.od)
            if label is not None:
                matched.append(label)
            if port == DROP:
                return PipelineResult(DROP, parse, matched)
        return PipelineResult(port, parse, matched)


def _to_bits(packet: Union[Header, Bits, bytes]) -> Bits:
    if isinstance(packet, Bits):
        return packet
    if isinstance(packet, (bytes, bytearray)):
        return Bits.from_bytes(bytes(packet))
    return packet.bits()
