"""Behavioural-model substitute (bmv2 stand-in) for end-to-end checks.

§7.1 tests compiled parsers on the open-source bmv2 simulator by sending
crafted packets through a parser + match-action pipeline and checking
delivery.  This module provides the same flow: a compiled
:class:`~repro.hw.impl.TcamProgram` front-end feeding simple match-action
tables that forward or drop based on parsed fields."""

from .pipeline import (
    BehavioralModel,
    DROP,
    MatchActionTable,
    PipelineResult,
)

__all__ = ["BehavioralModel", "DROP", "MatchActionTable", "PipelineResult"]
