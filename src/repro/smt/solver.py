"""z3py-style ``Solver`` facade over the term layer, bit-blaster and CDCL.

Supports incremental use: ``add`` asserts terms, ``push``/``pop`` manage
scopes via activation literals (popped scopes are permanently disabled,
which is how assumption-based incremental SAT implements retraction), and
``check``/``model`` mirror the z3 calling convention closely enough that
ParserHawk's CEGIS loop reads like the paper's pseudo-code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..obs import get_tracer
from ..resilience import SolverResourceExhausted
from ..resilience.injection import fault_point
from .bitblast import BitBlaster
from .sat.clause import neg
from .sat.solver import Budget, SatSolver
from .terms import BOOL, Term, collect_vars

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


class Model:
    """A satisfying assignment; evaluate variables or whole terms."""

    def __init__(self, blaster: BitBlaster, assertions_vars: Iterable[Term]):
        self._blaster = blaster
        self._values: Dict[Term, int] = {}
        for var in assertions_vars:
            if var.sort == BOOL:
                self._values[var] = self._blaster.model_bool(var)
            else:
                self._values[var] = self._blaster.model_bv(var)

    def __getitem__(self, var: Term):
        if var in self._values:
            return self._values[var]
        # Variable never asserted: default value.
        return False if var.sort == BOOL else 0

    def __contains__(self, var: Term) -> bool:
        return var in self._values

    def eval(self, term: Term):
        """Evaluate an arbitrary term under this model."""
        from .terms import evaluate

        env = dict(self._values)
        for var in collect_vars(term):
            if var not in env:
                env[var] = False if var.sort == BOOL else 0
        return evaluate(term, env)

    def variables(self) -> List[Term]:
        return list(self._values)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{v.extra[0]}={val}" for v, val in sorted(
                self._values.items(), key=lambda kv: kv[0].extra[0]
            )
        )
        return f"Model({parts})"


class Solver:
    """Incremental SMT solver for the Bool+BitVec fragment.

    ``proof=True`` turns on DRAT logging in the underlying CDCL core
    (see :mod:`repro.smt.sat.proof`); the log is reachable via
    :attr:`proof` and covers every clause the bit-blaster emits.  An
    UNSAT verdict from an assumption-free :meth:`check` then carries a
    checkable refutation of the blasted CNF; UNSAT under assumptions or
    popped scopes does not end in the empty clause (the assumptions are
    not part of the formula) and is out of scope for certification.
    """

    def __init__(self, proof: bool = False) -> None:
        self._sat = SatSolver()
        if proof:
            self._sat.enable_proof()
        self._blaster = BitBlaster(self._sat)
        self._scope_lits: List[int] = []
        self._vars: set[Term] = set()
        # Terms whose sub-DAG was already scanned for variables.  Interned
        # terms make this sound, and it turns per-assert variable
        # collection incremental: CEGIS asserts thousands of constraints
        # over one shared candidate circuit, and only the first walk pays
        # for the shared structure.
        self._scanned: set[Term] = set()
        self._model: Optional[Model] = None
        self._last_result = UNKNOWN
        self._gate_hits_seen = 0  # for per-check gate-cache deltas
        self._last_gate_hits_delta = 0
        self._simplify_seen = 0.0  # for per-check simplify-time deltas
        self._proof_logged_seen = 0  # for per-check proof-step deltas

    # ------------------------------------------------------------------
    def add(self, *terms: Term) -> None:
        """Assert one or more Bool terms in the current scope."""
        for term in terms:
            if not isinstance(term, Term) or term.sort != BOOL:
                raise TypeError(f"Solver.add expects Bool terms, got {term!r}")
            collect_vars(term, self._vars, self._scanned)
            guard = [self._scope_lits[-1]] if self._scope_lits else None
            self._blaster.assert_term(term, guard_lits=guard)

    def push(self) -> None:
        """Open a retractable assertion scope."""
        act = self._blaster.fresh_lit()
        self._scope_lits.append(act)

    def pop(self) -> None:
        """Discard the most recent scope's assertions."""
        if not self._scope_lits:
            raise RuntimeError("pop without matching push")
        act = self._scope_lits.pop()
        self._sat.add_clause([neg(act)])

    def check(
        self,
        *assumptions: Term,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> str:
        """Solve; returns "sat", "unsat", or "unknown" (budget exhausted)."""
        assume_lits = list(self._scope_lits)
        for term in assumptions:
            if not isinstance(term, Term) or term.sort != BOOL:
                raise TypeError(f"assumption must be Bool, got {term!r}")
            collect_vars(term, self._vars, self._scanned)
            assume_lits.append(self._blaster.bool_lit(term))
        budget = None
        if max_conflicts is not None or max_seconds is not None:
            budget = Budget(max_conflicts=max_conflicts, max_seconds=max_seconds)
        fault_point("sat.solve")
        try:
            result = self._sat.solve(assume_lits, budget=budget)
        except (MemoryError, RecursionError) as exc:
            # Hard resource exhaustion (as opposed to a *planned* budget,
            # which reports "unknown"): surface as a typed CompileFault so
            # supervision layers can turn it into a per-arm failure.
            raise SolverResourceExhausted(
                f"SAT solver exhausted interpreter resources: "
                f"{type(exc).__name__}", site="sat.solve",
            ) from exc
        # Gate-cache hits accrue during add()/bit-blasting between checks;
        # attribute each stretch to the check that consumes it so the
        # per-call deltas in last_check_stats stay additive.
        hits = self._blaster.gate_cache_hits
        self._last_gate_hits_delta = hits - self._gate_hits_seen
        self._gate_hits_seen = hits
        tracer = get_tracer()
        if tracer.enabled:
            delta = self._sat.last_solve_stats
            tracer.count("sat.solves")
            tracer.count("sat.conflicts", delta.get("conflicts", 0))
            tracer.count("sat.decisions", delta.get("decisions", 0))
            tracer.count("sat.propagations", delta.get("propagations", 0))
            tracer.count("sat.restarts", delta.get("restarts", 0))
            tracer.count("sat.learnt_clauses", delta.get("learned", 0))
            # Per-phase solver time and CNF-cache effectiveness: the
            # solver's own profile, readable from any span breakdown
            # without external tooling.
            tracer.count(
                "sat.propagate_seconds", delta.get("propagate_seconds", 0.0)
            )
            tracer.count(
                "sat.analyze_seconds", delta.get("analyze_seconds", 0.0)
            )
            simp = self._sat.simplify_seconds
            tracer.count("sat.simplify_seconds", simp - self._simplify_seen)
            self._simplify_seen = simp
            tracer.count("sat.gate_cache_hits", self._last_gate_hits_delta)
            if self._sat.proof is not None:
                logged = self._sat.proof.clauses_logged
                tracer.count(
                    "proof.clauses_logged", logged - self._proof_logged_seen
                )
                self._proof_logged_seen = logged
        if result is None:
            self._last_result = UNKNOWN
        elif result:
            self._model = Model(self._blaster, self._vars)
            self._last_result = SAT
        else:
            self._model = None
            self._last_result = UNSAT
        return self._last_result

    def model(self) -> Model:
        if self._model is None:
            raise RuntimeError("model() requires a prior sat check()")
        return self._model

    def stats(self) -> Dict[str, int]:
        return self._sat.stats()

    def last_check_stats(self) -> Dict[str, int]:
        """Per-call solver deltas for the most recent :meth:`check`."""
        stats = dict(self._sat.last_solve_stats)
        stats["gate_cache_hits"] = self._last_gate_hits_delta
        return stats

    @property
    def proof(self):
        """The underlying DRAT :class:`ProofLog`, or None when disabled."""
        return self._sat.proof

    @property
    def sat_solver(self) -> SatSolver:
        return self._sat

    @property
    def blaster(self) -> BitBlaster:
        return self._blaster


def solve_terms(*terms: Term, **kwargs) -> Optional[Model]:
    """One-shot convenience: returns a Model or None (unsat/unknown)."""
    solver = Solver()
    solver.add(*terms)
    if solver.check(**kwargs) == SAT:
        return solver.model()
    return None
