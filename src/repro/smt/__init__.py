"""SMT substrate: Bool/BitVec terms, bit-blasting, CDCL SAT, z3-style Solver.

The paper builds ParserHawk on z3py; this package is the from-scratch
replacement used throughout the reproduction (see DESIGN.md).
"""

from .bitblast import BitBlaster
from .sat import Budget, SatSolver
from .solver import SAT, UNKNOWN, UNSAT, Model, Solver, solve_terms
from .terms import (
    BOOL,
    FALSE,
    TRUE,
    And,
    AtMostOne,
    BitVec,
    BitVecVal,
    Bool,
    BoolToBv,
    BoolVal,
    BvAdd,
    BvAnd,
    BvNot,
    BvOr,
    BvSub,
    BvXor,
    Concat,
    Eq,
    ExactlyOne,
    Extract,
    If,
    Iff,
    Implies,
    Lshr,
    Not,
    Or,
    PopCountAtMost,
    Shl,
    Term,
    UGE,
    UGT,
    ULE,
    ULT,
    Xor,
    ZeroExt,
    collect_vars,
    evaluate,
)

__all__ = [
    "AtMostOne",
    "And", "BOOL", "BitBlaster", "BitVec", "BitVecVal", "Bool", "BoolToBv",
    "BoolVal", "Budget", "BvAdd", "BvAnd", "BvNot", "BvOr", "BvSub", "BvXor",
    "Concat", "Eq", "ExactlyOne", "Extract", "FALSE", "If", "Iff", "Implies",
    "Lshr", "Model", "Not", "Or", "PopCountAtMost", "SAT", "SatSolver",
    "Shl", "Solver", "TRUE", "Term", "UGE", "UGT", "ULE", "ULT", "UNKNOWN",
    "UNSAT", "Xor", "ZeroExt", "collect_vars", "evaluate", "solve_terms",
]
