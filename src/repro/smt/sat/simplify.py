"""SatELite-style preprocessing for the CDCL core.

Three reductions, iterated to (bounded) fixpoint over the input clauses:

* **Subsumption** — a clause ``C ⊆ D`` deletes ``D``.
* **Self-subsuming resolution** — when ``C`` would subsume ``D`` except
  for exactly one literal appearing with opposite polarity, ``D`` is
  *strengthened*: that literal is removed from ``D`` (the resolvent of
  ``C`` and ``D`` subsumes ``D``).
* **Bounded variable elimination (BVE)** — a variable ``v`` whose
  non-tautological resolvent count does not exceed the number of clauses
  it appears in is resolved away: all clauses mentioning ``v`` are
  replaced by the resolvents.  Pure literals fall out as the zero-
  resolvent special case.

Soundness of elimination rests on the *model reconstruction stack*: for
each eliminated literal ``l`` we save the clauses that contained ``l``
(the smaller side).  After solving, :meth:`SatSolver.model` walks the
stack newest-first, defaults ``l`` to false (which satisfies every
dropped ``¬l`` clause) and flips it to true exactly when one of the
saved clauses is not otherwise satisfied — the classic SatELite argument
shows the resolvents the solver *did* see guarantee no ``¬l`` clause
breaks when that happens.

Elimination is **unsound for incremental use**: a later ``add_clause``
or assumption over an eliminated variable would bypass the resolvents.
Callers therefore pass ``frozen`` variables that must survive (the
CEGIS counterexample selectors and every variable of the SMT facade,
which opts out of preprocessing entirely); the solver refuses
post-elimination references with ``ValueError`` as a backstop.

The simplifier works directly on the clause arena at decision level 0,
maintains its own occurrence lists, and leaves the solver with rebuilt
watcher lists (and a compacted arena when enough was deleted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from .arena import CREF_NONE

TRUE = 1
FALSE = 0

# Skip BVE for variables occurring more often than this on both sides:
# the resolvent check would be quadratic in the occurrence counts.
ELIM_OCC_LIMIT = 10

# Never produce resolvents longer than this; such eliminations are
# skipped (long clauses hurt propagation more than one variable helps).
MAX_RESOLVENT_SIZE = 30


@dataclass
class SimplifyStats:
    """Counters for one ``presimplify`` run (also the CLI ``--stats`` rows)."""

    rounds: int = 0
    subsumed: int = 0
    strengthened: int = 0
    eliminated_vars: int = 0
    resolvents_added: int = 0
    units_found: int = 0
    satisfied_removed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "rounds": self.rounds,
            "subsumed": self.subsumed,
            "strengthened": self.strengthened,
            "eliminated_vars": self.eliminated_vars,
            "resolvents_added": self.resolvents_added,
            "units_found": self.units_found,
            "satisfied_removed": self.satisfied_removed,
        }


class Simplifier:
    """One preprocessing run over a solver's input clauses.

    Use through :meth:`SatSolver.presimplify`, which drops learnt
    clauses first and accounts the wall time.
    """

    def __init__(
        self,
        solver,
        frozen: Optional[Iterable[int]] = None,
        max_rounds: int = 3,
    ) -> None:
        self.solver = solver
        self.arena = solver.arena
        self.frozen: Set[int] = set(frozen or ())
        self.max_rounds = max_rounds
        self.stats = SimplifyStats()
        # DRAT logging (None when the solver has it off).  Invariant for
        # every transformation below: the derived clause is logged as an
        # addition *before* the clauses that justify it are logged as
        # deletions, whatever order the arena is mutated in — a checker
        # replays the steps in log order.
        self.proof = solver.proof
        # occ[lit] -> crefs of live clauses containing lit (may hold dead
        # crefs transiently; filtered lazily against the deleted bit).
        self.occ: List[List[int]] = []
        self.sig: Dict[int, int] = {}  # cref -> variable signature

    # ------------------------------------------------------------------
    # Setup / bookkeeping
    # ------------------------------------------------------------------
    def _signature(self, lits: Iterable[int]) -> int:
        s = 0
        for l in lits:
            s |= 1 << ((l >> 1) & 63)
        return s

    def _build_occurrences(self) -> bool:
        """Strip level-0 falsified literals, drop satisfied clauses, and
        index the survivors.  Returns False on derived UNSAT."""
        solver = self.solver
        arena = self.arena
        proof = self.proof
        self.occ = [[] for _ in range(2 * solver.num_vars)]
        self.sig.clear()
        live: List[int] = []
        for cref in solver.clauses:
            if arena.is_deleted(cref):
                continue
            lits = arena.literals(cref)
            vals = [solver.value_lit(l) for l in lits]
            if TRUE in vals:
                if proof is not None:
                    proof.delete(lits)
                arena.delete(cref)
                self.stats.satisfied_removed += 1
                continue
            if FALSE in vals:
                kept = [l for l, v in zip(lits, vals) if v != FALSE]
                if not kept:
                    return False
                if proof is not None:
                    proof.add(kept)
                    proof.delete(lits)
                if len(kept) == 1:
                    arena.delete(cref)
                    if not self._assign_unit(kept[0]):
                        return False
                    continue
                self._rewrite(cref, kept)
                lits = kept
            for l in lits:
                self.occ[l].append(cref)
            self.sig[cref] = self._signature(lits)
            live.append(cref)
        solver.clauses = live
        return True

    def _rewrite(self, cref: int, lits: List[int]) -> None:
        """Shrink a clause in place to exactly ``lits`` (>= 2 literals)."""
        data = self.arena.data
        base = cref + 2
        for i, l in enumerate(lits):
            data[base + i] = l
        self.arena.shrink(cref, len(lits))
        self.sig[cref] = self._signature(lits)

    def _live(self, crefs: List[int]) -> List[int]:
        """Filter an occurrence list in place against the deleted bit."""
        arena = self.arena
        out = [c for c in crefs if not arena.is_deleted(c)]
        crefs[:] = out
        return out

    def _assign_unit(self, literal: int) -> bool:
        """Apply a derived unit at level 0 through the occurrence lists.

        Proof logging of the unit clause itself is the *caller's* job
        (logged before the deletions that motivated it); this method
        logs only the cascade it performs.
        """
        solver = self.solver
        val = solver.value_lit(literal)
        if val == TRUE:
            return True
        if val == FALSE:
            return False
        solver._enqueue(literal, CREF_NONE)
        solver.qhead = len(solver.trail)
        self.stats.units_found += 1
        if not self.occ:
            return True
        arena = self.arena
        proof = self.proof
        for cref in self._live(self.occ[literal]):
            if proof is not None:
                proof.delete(arena.literals(cref))
            arena.delete(cref)
            self.stats.satisfied_removed += 1
        self.occ[literal] = []
        for cref in self._live(self.occ[literal ^ 1]):
            if arena.is_deleted(cref):
                continue  # a recursive unit cascade got here first
            old = arena.literals(cref)
            lits = [l for l in old if l != (literal ^ 1)]
            if not lits:
                return False
            if proof is not None:
                proof.add(lits)
                proof.delete(old)
            if len(lits) == 1:
                arena.delete(cref)
                if not self._assign_unit(lits[0]):
                    return False
                continue
            self._rewrite(cref, lits)
        self.occ[literal ^ 1] = []
        return True

    # ------------------------------------------------------------------
    # Subsumption and strengthening
    # ------------------------------------------------------------------
    def _subsumes(self, c_lits: List[int], d_lits: List[int]):
        """Does C subsume D (return ``True``), subsume it but for one
        flipped literal ``l`` of C (return ``l``), or neither (``None``)?"""
        d_set = set(d_lits)
        flipped = 0
        for l in c_lits:
            if l in d_set:
                continue
            if (l ^ 1) in d_set and not flipped:
                flipped = l | 0x40000000  # tag: may be literal 0
                continue
            return None
        if not flipped:
            return True
        return flipped & ~0x40000000

    def _backward_subsume(self) -> bool:
        """One pass of subsumption + self-subsuming resolution.
        Returns False on derived UNSAT."""
        solver = self.solver
        arena = self.arena
        # Ascending size: small clauses subsume, never get subsumed first.
        order = sorted(
            (c for c in solver.clauses if not arena.is_deleted(c)),
            key=arena.size,
        )
        for cref in order:
            if arena.is_deleted(cref):
                continue
            c_lits = arena.literals(cref)
            c_sig = self.sig[cref]
            # Scan the occurrence list of C's rarest literal.  Any D that
            # C subsumes contains every C literal, so it is in occ[best];
            # the one self-subsuming exception is when the *flipped*
            # literal is best itself, in which case D is in occ[¬best].
            best = min(c_lits, key=lambda l: len(self.occ[l]))
            candidates = self._live(self.occ[best]) + self._live(
                self.occ[best ^ 1]
            )
            seen_c: Set[int] = set()
            for d in candidates:
                if d == cref or d in seen_c or arena.is_deleted(d):
                    continue
                seen_c.add(d)
                if c_sig & ~self.sig[d]:
                    continue  # signature rules subsumption out
                d_lits = arena.literals(d)
                if len(d_lits) < len(c_lits):
                    continue
                verdict = self._subsumes(c_lits, d_lits)
                if verdict is True:
                    if self.proof is not None:
                        self.proof.delete(d_lits)
                    arena.delete(d)
                    self.stats.subsumed += 1
                elif verdict is not None:
                    # Strengthen D: drop the flipped literal.  The
                    # occurrence entry for the dropped literal must go
                    # too — occ lists are the source of truth for "which
                    # clauses contain l" in unit application and BVE.
                    drop = verdict ^ 1
                    kept = [l for l in d_lits if l != drop]
                    self.stats.strengthened += 1
                    if self.proof is not None:
                        # The resolvent of C and D; RUP while both live.
                        self.proof.add(kept)
                        self.proof.delete(d_lits)
                    if len(kept) == 1:
                        arena.delete(d)
                        if not self._assign_unit(kept[0]):
                            return False
                    else:
                        self._rewrite(d, kept)
                        try:
                            self.occ[drop].remove(d)
                        except ValueError:
                            pass
                if arena.is_deleted(cref):
                    break  # a unit cascade consumed C itself
        return True

    # ------------------------------------------------------------------
    # Bounded variable elimination
    # ------------------------------------------------------------------
    def _resolve(
        self, c_lits: List[int], d_lits: List[int], pivot: int
    ) -> Optional[List[int]]:
        """Resolvent of C (contains pivot) and D (contains ¬pivot), or
        None when tautological."""
        out: List[int] = []
        seen: Set[int] = set()
        for l in c_lits:
            if l == pivot:
                continue
            seen.add(l)
            out.append(l)
        for l in d_lits:
            if l == (pivot ^ 1) or l in seen:
                continue
            if (l ^ 1) in seen:
                return None
            out.append(l)
        return out

    def _try_eliminate(self, v: int) -> Optional[bool]:
        """Attempt BVE on v. Returns True if eliminated, False if skipped,
        None on derived UNSAT."""
        solver = self.solver
        arena = self.arena
        pos_l, neg_l = 2 * v, 2 * v + 1
        pos = self._live(self.occ[pos_l])
        neg = self._live(self.occ[neg_l])
        if not pos and not neg:
            return False
        if len(pos) > ELIM_OCC_LIMIT and len(neg) > ELIM_OCC_LIMIT:
            return False
        budget = len(pos) + len(neg)
        resolvents: List[List[int]] = []
        for c in pos:
            c_lits = arena.literals(c)
            for d in neg:
                r = self._resolve(c_lits, arena.literals(d), pos_l)
                if r is None:
                    continue
                if len(r) > MAX_RESOLVENT_SIZE:
                    return False
                resolvents.append(r)
                if len(resolvents) > budget:
                    return False
        # Commit: save the smaller side for model reconstruction, drop
        # every clause mentioning v, add the resolvents.
        if len(pos) <= len(neg):
            saved_lit, saved_refs = pos_l, pos
        else:
            saved_lit, saved_refs = neg_l, neg
        solver.reconstruction.append(
            (saved_lit, [arena.literals(c) for c in saved_refs])
        )
        if self.proof is not None:
            # All resolvents first — each is RUP only while both of its
            # parents are still in the formula — then the originals.
            for r in resolvents:
                self.proof.add(r)
            for cref in pos + neg:
                self.proof.delete(arena.literals(cref))
        for cref in pos + neg:
            arena.delete(cref)
        self.occ[pos_l] = []
        self.occ[neg_l] = []
        solver.eliminated[v] = 1
        self.stats.eliminated_vars += 1
        for r in resolvents:
            if len(r) == 1:
                if not self._assign_unit(r[0]):
                    return None
                continue
            cref = arena.alloc(r)
            solver.clauses.append(cref)
            self.sig[cref] = self._signature(r)
            for l in r:
                self.occ[l].append(cref)
            self.stats.resolvents_added += 1
        return True

    def _eliminate_round(self) -> Optional[int]:
        """One BVE sweep; returns eliminated count or None on UNSAT."""
        solver = self.solver
        count = 0
        # Fewest occurrences first: cheap eliminations enable later ones.
        order = sorted(
            (
                v
                for v in range(solver.num_vars)
                if not solver.eliminated[v]
                and solver.assign[v] == -1
                and v not in self.frozen
            ),
            key=lambda v: len(self.occ[2 * v]) + len(self.occ[2 * v + 1]),
        )
        for v in order:
            if solver.assign[v] != -1:
                continue  # a unit cascade assigned it mid-round
            outcome = self._try_eliminate(v)
            if outcome is None:
                return None
            if outcome:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> SimplifyStats:
        solver = self.solver
        ok = True
        for _ in range(self.max_rounds):
            self.stats.rounds += 1
            before = (
                self.stats.subsumed,
                self.stats.strengthened,
                self.stats.eliminated_vars,
                self.stats.units_found,
            )
            if not self._build_occurrences():
                ok = False
                break
            if not self._backward_subsume():
                ok = False
                break
            eliminated = self._eliminate_round()
            if eliminated is None:
                ok = False
                break
            after = (
                self.stats.subsumed,
                self.stats.strengthened,
                self.stats.eliminated_vars,
                self.stats.units_found,
            )
            if after == before:
                break  # fixpoint
        arena = self.arena
        solver.clauses = [
            c for c in solver.clauses if not arena.is_deleted(c)
        ]
        if not ok:
            if self.proof is not None:
                # Every UNSAT exit above leaves a root-level conflict a
                # checker re-derives by unit propagation alone.
                self.proof.add_empty()
            solver.ok = False
        if arena.should_collect():
            solver._garbage_collect()
        else:
            solver._rebuild_watches()
        return self.stats
