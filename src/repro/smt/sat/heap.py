"""Max-heap keyed by VSIDS activity, with in-place position tracking.

The CDCL branching heuristic needs three operations that the standard
library's ``heapq`` cannot provide together: pop-max, increase-key for an
arbitrary element, and membership re-insertion.  This binary heap keeps a
``positions`` index so all three run in O(log n).
"""

from __future__ import annotations

from typing import Iterable, List


class ActivityHeap:
    """Binary max-heap over variable indices ordered by an activity array."""

    def __init__(self, activity: List[float]) -> None:
        self._activity = activity
        self._heap: List[int] = []
        self._pos: List[int] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, var: int) -> bool:
        return var < len(self._pos) and self._pos[var] >= 0

    def grow_to(self, nvars: int) -> None:
        """Extend the position table so variables < nvars can be inserted."""
        while len(self._pos) < nvars:
            self._pos.append(-1)

    def insert(self, var: int) -> None:
        """Insert a variable; no-op if already present."""
        self.grow_to(var + 1)
        if self._pos[var] >= 0:
            return
        self._heap.append(var)
        self._pos[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def build(self, vars: Iterable[int]) -> None:
        """Bulk-load from scratch with Floyd heapify: O(n) where n
        single inserts cost O(n log n).  The solver uses this when it
        first materializes the branching order — with tens of thousands
        of variables per synthesis query, first-decision latency is
        visible in profiles."""
        self._heap = list(vars)
        if self._heap:
            self.grow_to(max(self._heap) + 1)
        for i in range(len(self._pos)):
            self._pos[i] = -1
        for i, var in enumerate(self._heap):
            self._pos[var] = i
        for i in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(i)

    def pop_max(self) -> int:
        """Remove and return the variable with the highest activity."""
        top = self._heap[0]
        last = self._heap.pop()
        self._pos[top] = -1
        if self._heap:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top

    def bumped(self, var: int) -> None:
        """Restore heap order after var's activity increased."""
        if var < len(self._pos) and self._pos[var] >= 0:
            self._sift_up(self._pos[var])

    def rescaled(self) -> None:
        """Rebuild after a global activity rescale (order is preserved,
        so nothing to do; present for interface clarity)."""

    def _sift_up(self, i: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        item = heap[i]
        item_act = act[item]
        while i > 0:
            parent = (i - 1) >> 1
            pvar = heap[parent]
            if act[pvar] >= item_act:
                break
            heap[i] = pvar
            pos[pvar] = i
            i = parent
        heap[i] = item
        pos[item] = i

    def _sift_down(self, i: int) -> None:
        heap, pos, act = self._heap, self._pos, self._activity
        n = len(heap)
        item = heap[i]
        item_act = act[item]
        while True:
            left = 2 * i + 1
            if left >= n:
                break
            best = left
            right = left + 1
            if right < n and act[heap[right]] > act[heap[left]]:
                best = right
            if act[heap[best]] <= item_act:
                break
            heap[i] = heap[best]
            pos[heap[i]] = i
            i = best
        heap[i] = item
        pos[item] = i
