"""Independent DRAT/DRUP proof checker.

Verifies a refutation produced by :class:`~repro.smt.sat.proof.ProofLog`
against the *original* CNF using reverse unit propagation (RUP) only:
for each added clause ``C``, assume ``¬C`` on top of the root-level
assignment and unit-propagate; the addition is accepted exactly when
propagation derives a conflict.  A verified addition of the empty
clause certifies unsatisfiability of the original formula.

The checker deliberately shares no code with the solver — no arena, no
watchers, no activity heaps.  Clauses are plain tuples, propagation is
naive occurrence-list walking, and literals use the same packed-int
convention as the rest of the SAT layer (``var = l >> 1``, negation bit
``l & 1``) so callers can hand over clause lists directly.

Deletions follow drat-trim's operational semantics: a deletion removes
one matching clause (by literal multiset) from the active formula,
except when that clause is currently the reason for a root-level unit —
those deletions are ignored, which keeps the persistent root trail
sound.  Since deleting clauses only ever *weakens* propagation, a proof
that still reaches the empty clause remains a valid refutation of the
original CNF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

Step = Tuple[bool, Sequence[int]]


@dataclass
class ProofCheckResult:
    """Outcome of checking one proof against one formula."""

    ok: bool
    reason: str = ""
    additions: int = 0
    deletions: int = 0
    deletions_ignored: int = 0

    @property
    def verified(self) -> bool:
        return self.ok


def parse_drat(text: str) -> List[Tuple[bool, List[int]]]:
    """Parse DRAT text into (is_deletion, packed-literal clause) steps."""
    steps: List[Tuple[bool, List[int]]] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        is_delete = False
        if line.startswith("d ") or line == "d":
            is_delete = True
            line = line[1:].strip()
        lits: List[int] = []
        terminated = False
        for tok in line.split():
            try:
                val = int(tok)
            except ValueError:
                raise ValueError(f"malformed DRAT token {tok!r}")
            if val == 0:
                terminated = True
                break
            lits.append(2 * (val - 1) if val > 0 else 2 * (-val - 1) + 1)
        if not terminated:
            raise ValueError(f"unterminated DRAT line {raw!r}")
        steps.append((is_delete, lits))
    return steps


class _Formula:
    """Active clause set with a persistent root-level unit trail."""

    def __init__(self) -> None:
        self.clauses: List[Tuple[int, ...]] = []
        self.alive: List[bool] = []
        self.by_key: Dict[Tuple[int, ...], List[int]] = {}
        self.occ: Dict[int, List[int]] = {}
        self.val: Dict[int, bool] = {}      # var -> root/temp value
        self.reason_ids: set = set()        # clause ids justifying roots
        self.root_conflict = False

    @staticmethod
    def _key(lits: Iterable[int]) -> Tuple[int, ...]:
        return tuple(sorted(set(lits)))

    def _lit_value(self, l: int) -> Optional[bool]:
        v = self.val.get(l >> 1)
        if v is None:
            return None
        return v == ((l & 1) == 0)

    def _propagate(
        self,
        queue: List[Tuple[int, int]],
        temp_trail: Optional[List[int]],
    ) -> bool:
        """Assign queued literals and propagate units. True on conflict.

        ``temp_trail is None`` means root-level: assignments persist and
        reason clauses are pinned against deletion.  Otherwise every new
        assignment is recorded for the caller to undo.
        """
        while queue:
            l, reason = queue.pop()
            cur = self._lit_value(l)
            if cur is not None:
                if cur is False:
                    return True
                continue
            var = l >> 1
            self.val[var] = (l & 1) == 0
            if temp_trail is None:
                if reason >= 0:
                    self.reason_ids.add(reason)
            else:
                temp_trail.append(var)
            for cid in self.occ.get(l ^ 1, ()):
                if not self.alive[cid]:
                    continue
                unassigned = None
                free = 0
                satisfied = False
                for q in self.clauses[cid]:
                    qv = self._lit_value(q)
                    if qv is None:
                        free += 1
                        if free > 1:
                            break
                        unassigned = q
                    elif qv:
                        satisfied = True
                        break
                if satisfied or free > 1:
                    continue
                if free == 0:
                    return True
                queue.append((unassigned, cid))
        return False

    def add_clause(self, lits: Iterable[int]) -> None:
        """Install a clause and propagate at root level if it is unit."""
        dedup = tuple(dict.fromkeys(lits))
        for l in dedup:
            if (l ^ 1) in dedup:
                return  # tautology: inert, never propagates
        cid = len(self.clauses)
        self.clauses.append(dedup)
        self.alive.append(True)
        self.by_key.setdefault(self._key(dedup), []).append(cid)
        for l in dedup:
            self.occ.setdefault(l, []).append(cid)
        if self.root_conflict:
            return
        unassigned = None
        free = 0
        for q in dedup:
            qv = self._lit_value(q)
            if qv is None:
                free += 1
                unassigned = q
            elif qv:
                return  # satisfied at root already
        if free == 0:
            self.root_conflict = True
        elif free == 1:
            if self._propagate([(unassigned, cid)], None):
                self.root_conflict = True

    def delete_clause(self, lits: Iterable[int]) -> str:
        """Remove one matching clause. Returns 'deleted'/'pinned'/'missing'."""
        ids = self.by_key.get(self._key(lits))
        if ids:
            for i, cid in enumerate(ids):
                if not self.alive[cid]:
                    continue
                if cid in self.reason_ids:
                    return "pinned"
                self.alive[cid] = False
                del ids[i]
                return "deleted"
        return "missing"

    def rup(self, lits: Sequence[int]) -> bool:
        """Is the clause RUP w.r.t. the active formula + root trail?"""
        if self.root_conflict:
            return True
        queue: List[Tuple[int, int]] = []
        for l in set(lits):
            cur = self._lit_value(l)
            if cur is True:
                return True  # assuming ¬l contradicts the root trail
            if cur is None:
                queue.append((l ^ 1, -1))
        temp: List[int] = []
        conflict = self._propagate(queue, temp)
        for var in temp:
            del self.val[var]
        return conflict


def check_proof(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    steps: Sequence[Step],
) -> ProofCheckResult:
    """Check a DRAT refutation of ``clauses`` (packed literals).

    ``num_vars`` is advisory (literals may name higher variables).  The
    proof verifies iff every addition is RUP in order and some verified
    addition is the empty clause.
    """
    del num_vars  # the packed literals carry the variable space
    formula = _Formula()
    for clause in clauses:
        formula.add_clause(clause)
    result = ProofCheckResult(ok=False)
    for index, (is_delete, lits) in enumerate(steps):
        if is_delete:
            result.deletions += 1
            if formula.delete_clause(lits) != "deleted":
                result.deletions_ignored += 1
            continue
        result.additions += 1
        if not formula.rup(lits):
            result.reason = (
                f"step {index}: clause "
                f"{sorted(set(lits))} is not RUP"
            )
            return result
        if not lits:
            result.ok = True
            result.reason = "refutation verified"
            return result
        formula.add_clause(lits)
    result.reason = "proof contains no verified empty clause"
    return result


def check_drat_text(cnf_clauses, proof_text: str) -> ProofCheckResult:
    """Convenience wrapper: check DRAT text against packed clauses."""
    return check_proof(0, cnf_clauses, parse_drat(proof_text))
