"""Flat clause storage for the CDCL core.

All clause literals live in one flat list of ints; a clause is referred
to by an integer *clause reference* (``cref``), the index of its header
inside the list.  (A ``array('i')`` would be more compact, but CPython
boxes a fresh int object on every ``array`` subscript while list reads
return existing references — measured ~1.5x slower reads and ~2x slower
writes in the propagation loop, so the arena trades memory for the hot
path.)  Layout, per clause::

    data[cref]      header word: (size << 2) | (deleted << 1) | learnt
    data[cref + 1]  activity index (slot in ``activities``; -1 for input
                    clauses, which are never activity-sorted)
    data[cref + 2]  literal 0   (first watched literal)
    data[cref + 3]  literal 1   (second watched literal)
    ...
    data[cref + 1 + size]  literal size-1

Compared to one Python object per clause this removes an attribute
dereference and an object allocation from every propagation step, keeps
the literals of a clause adjacent in memory, and makes deletion O(1): the
``deleted`` bit is set and the words are counted as ``wasted``; watcher
lists drop dead crefs lazily the next time they are traversed.  When the
wasted fraction grows past :data:`GC_FRACTION` the solver compacts the
arena with :meth:`ClauseArena.compact`.

Learnt-clause activities live in a side list of floats (``activities``)
rather than in the arena (the arena is integer-typed); the *index* into
that list is what the second header word stores, so activities survive
compaction without any fix-up.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

# Number of words preceding a clause's literals.
HEADER_WORDS = 2

# cref sentinel for "no clause" (used by the solver's reason column).
CREF_NONE = -1

# Compact once deleted clauses waste more than this fraction of the arena.
GC_FRACTION = 0.5

_DELETED_BIT = 2
_LEARNT_BIT = 1


class ClauseArena:
    """A bump allocator for clauses with lazy deletion and compaction."""

    __slots__ = ("data", "wasted", "activities", "_free_slots")

    def __init__(self) -> None:
        self.data: List[int] = []
        self.wasted = 0
        self.activities: List[float] = []
        self._free_slots: List[int] = []

    # ------------------------------------------------------------------
    # Allocation and deletion
    # ------------------------------------------------------------------
    def alloc(self, lits: Iterable[int], learnt: bool = False) -> int:
        """Append a clause; returns its cref.  ``lits`` must have >= 2
        literals (units and empties are handled by the solver's trail)."""
        lits = list(lits)
        size = len(lits)
        if size < 2:
            raise ValueError(f"arena clauses need >= 2 literals, got {size}")
        cref = len(self.data)
        if learnt:
            if self._free_slots:
                slot = self._free_slots.pop()
                self.activities[slot] = 0.0
            else:
                slot = len(self.activities)
                self.activities.append(0.0)
        else:
            slot = -1
        self.data.append((size << 2) | (_LEARNT_BIT if learnt else 0))
        self.data.append(slot)
        self.data += lits
        return cref

    def delete(self, cref: int) -> None:
        """Mark a clause deleted (lazy: watchers drop it on next visit)."""
        header = self.data[cref]
        if header & _DELETED_BIT:
            return
        self.data[cref] = header | _DELETED_BIT
        self.wasted += (header >> 2) + HEADER_WORDS
        slot = self.data[cref + 1]
        if slot >= 0:
            self._free_slots.append(slot)
            self.data[cref + 1] = -1

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def size(self, cref: int) -> int:
        return self.data[cref] >> 2

    def is_learnt(self, cref: int) -> bool:
        return bool(self.data[cref] & _LEARNT_BIT)

    def is_deleted(self, cref: int) -> bool:
        return bool(self.data[cref] & _DELETED_BIT)

    def literals(self, cref: int) -> List[int]:
        base = cref + HEADER_WORDS
        return self.data[base : base + (self.data[cref] >> 2)]

    def activity(self, cref: int) -> float:
        slot = self.data[cref + 1]
        return self.activities[slot] if slot >= 0 else 0.0

    def bump_activity(self, cref: int, inc: float) -> float:
        slot = self.data[cref + 1]
        value = self.activities[slot] + inc
        self.activities[slot] = value
        return value

    def rescale_activities(self, factor: float) -> None:
        acts = self.activities
        for i in range(len(acts)):
            acts[i] *= factor

    def shrink(self, cref: int, new_size: int) -> None:
        """Reduce a clause's size in place (literals [0, new_size) kept).
        Used by the simplifier's strengthening; freed words become waste."""
        header = self.data[cref]
        old_size = header >> 2
        if not 2 <= new_size <= old_size:
            raise ValueError(f"shrink {old_size} -> {new_size}")
        if new_size == old_size:
            return
        self.data[cref] = (new_size << 2) | (header & 3)
        self.wasted += old_size - new_size

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def should_collect(self) -> bool:
        return self.wasted > 0 and self.wasted > len(self.data) * GC_FRACTION

    def compact(self, live_crefs: Iterable[int]) -> Dict[int, int]:
        """Relocate the given live clauses into a fresh arena.

        The caller passes every cref it still holds (shrink-waste makes
        the layout non-walkable, so liveness is the caller's knowledge);
        anything not listed is dropped.  Returns the old-cref -> new-cref
        mapping; the caller remaps its clause lists and reason column and
        rebuilds watcher lists.  Activity slots are stable across
        compaction, so learnt activities need no fix-up.
        """
        old = self.data
        new: List[int] = []
        mapping: Dict[int, int] = {}
        for cref in live_crefs:
            header = old[cref]
            if header & _DELETED_BIT:
                continue
            stride = (header >> 2) + HEADER_WORDS
            mapping[cref] = len(new)
            new.extend(old[cref : cref + stride])
        self.data = new
        self.wasted = 0
        return mapping

    def __len__(self) -> int:
        return len(self.data)
