"""A CDCL SAT solver: two-watched literals, VSIDS, 1-UIP learning,
Luby restarts, phase saving, learnt-clause reduction, and incremental
solving under assumptions.

The solver is deliberately self-contained (standard library only) because it
is the combinatorial search substrate for the whole ParserHawk reproduction:
the paper offloads its search to Z3; we offload ours to this module.

Clause storage is a flat :class:`~repro.smt.sat.arena.ClauseArena`: all
literals live in one flat list of ints and clauses are integer references
(crefs) into it, so the propagation loop reads small ints out of a
contiguous buffer instead of chasing per-clause Python objects.  Watcher
lists hold crefs in the exact order the previous object-based solver
held its clauses: propagation order — and therefore every model the
solver returns — is bit-identical to the pre-arena implementation.
(A dedicated inline watch list for binary clauses is measurably faster
per propagation, but it reorders implications, which changes returned
models, which changes every CEGIS counterexample downstream; keeping
the search deterministic across representations is worth more than the
constant factor.)  Deletion is lazy — ``_reduce_db`` only flips a header bit and
watcher lists drop dead crefs the next time propagation walks them —
which removes the full watcher rebuild (quadratic in the limit) the
previous object-based representation needed.  A compacting GC runs when
deleted clauses waste more than half the arena.

SatELite-style preprocessing (:mod:`repro.smt.sat.simplify`) is available
through :meth:`SatSolver.presimplify`; eliminated variables are restored
in :meth:`SatSolver.model` via the reconstruction stack the simplifier
leaves behind.
"""

from __future__ import annotations

import time
from time import perf_counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .arena import CREF_NONE, ClauseArena

TRUE = 1
FALSE = 0
UNDEF = -1


class Unsatisfiable(Exception):
    """Raised internally when the formula is unsatisfiable at level 0."""


class Budget:
    """Resource budget for a single ``solve`` call.

    Conflict-count limits are checked exactly on every conflict; the
    wall-clock limit polls the clock only every
    :data:`CLOCK_CHECK_INTERVAL` conflicts — the clock read was a
    measurable fraction of conflict handling when checked every time,
    and a sub-interval overshoot is harmless for the budgets the
    compile pipeline uses.

    Conflicts alone are not enough: a propagation-heavy solve with few
    conflicts never reaches the conflict-path check and can blow far
    past a portfolio arm's deadline.  The search loop therefore also
    polls the clock at every restart boundary and — via
    :meth:`note_propagations` — after every
    :data:`PROPS_PER_CLOCK_CHECK` propagated literals.

    ``clock`` defaults to ``time.monotonic``; tests inject a fake to
    make deadline behaviour deterministic.
    """

    CLOCK_CHECK_INTERVAL = 64
    PROPS_PER_CLOCK_CHECK = 1 << 16

    def __init__(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
        clock=None,
    ) -> None:
        self.max_conflicts = max_conflicts
        self.max_seconds = max_seconds
        self._clock = time.monotonic if clock is None else clock
        self._start = self._clock()
        self._conflicts = 0
        self._props_since_check = 0
        self._out = False

    def note_conflict(self) -> None:
        self._conflicts += 1

    def poll(self) -> bool:
        """Direct wall-clock check, regardless of conflict counters."""
        if self._out:
            return True
        if (
            self.max_seconds is not None
            and self._clock() - self._start >= self.max_seconds
        ):
            self._out = True
            return True
        return False

    def note_propagations(self, props: int) -> bool:
        """Accumulate propagation work; poll the clock periodically."""
        if self._out:
            return True
        if self.max_seconds is None:
            return False
        self._props_since_check += props
        if self._props_since_check < self.PROPS_PER_CLOCK_CHECK:
            return False
        self._props_since_check = 0
        return self.poll()

    def exhausted(self) -> bool:
        if self._out:
            return True
        if (
            self.max_conflicts is not None
            and self._conflicts >= self.max_conflicts
        ):
            self._out = True
            return True
        if self.max_seconds is not None and (
            self._conflicts % self.CLOCK_CHECK_INTERVAL <= 1
        ):
            if self._clock() - self._start >= self.max_seconds:
                self._out = True
                return True
        return False


_LUBY_CACHE: Dict[int, int] = {}


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    (1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...).

    Memoized per index: the restart schedule queries successive indices
    for the solver's whole lifetime and the naive recurrence walk is
    re-done from scratch on every call otherwise."""
    hit = _LUBY_CACHE.get(i)
    if hit is not None:
        return hit
    j = i
    while True:
        if (j + 1) & j == 0:  # j+1 is a power of two
            result = (j + 1) >> 1
            break
        k = 1
        while (1 << (k + 1)) - 1 < j:
            k += 1
        j -= (1 << k) - 1
    _LUBY_CACHE[i] = result
    return result


class SatSolver:
    """CDCL solver over packed literals (see :mod:`repro.smt.sat.clause`)
    with arena clause storage (see :mod:`repro.smt.sat.arena`)."""

    def __init__(self) -> None:
        self.arena = ClauseArena()
        self.clauses: List[int] = []         # input clause crefs
        self.learnts: List[int] = []         # learnt clause crefs
        self.watches: List[List[int]] = []   # per-literal watching crefs
        self.assign: List[int] = []          # per-var: TRUE/FALSE/UNDEF
        # Dual-rail mirror of `assign`, indexed by packed literal:
        # vals[l] is 1/0/-1 for true/false/unassigned.  Propagation reads
        # literal values millions of times; one subscript replaces the
        # shift-mask-xor dance against `assign`.  Every assign write
        # mirrors into vals (enqueue, the propagate fast path, cancel).
        self.vals: List[int] = []            # per-lit: 1/0/-1
        self.level: List[int] = []           # per-var: decision level
        self.reason: List[int] = []          # per-var: cref or CREF_NONE
        self.trail: List[int] = []           # assigned literals, in order
        self.trail_lim: List[int] = []       # trail index per decision level
        self.qhead = 0
        self.activity: List[float] = []
        self.polarity: List[bool] = []       # phase saving
        self.order = None                    # lazy ActivityHeap
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.ok = True
        # Variables removed by bounded variable elimination; never decided
        # or re-used, and re-valued in model() via the reconstruction
        # stack (lit, clauses-that-contained-lit) the simplifier pushes.
        self.eliminated = bytearray()
        self.reconstruction: List[Tuple[int, List[List[int]]]] = []
        self._seen = bytearray()             # scratch for _analyze
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        self.num_learned = 0
        self.num_gcs = 0
        # Input clauses handed to add_clause (before level-0 simplification
        # drops satisfied/tautological ones).  The bit-blaster's constant
        # folding shows up here: fewer emitted clauses for the same query.
        self.num_clauses_added = 0
        # DRAT proof logging; None (the default) keeps every hook to a
        # single attribute test so the hot path is untouched.
        self.proof = None
        # Per-phase wall time (seconds): the solver's own breakdown, so
        # profiling the hot path needs no external tooling.
        self.propagate_seconds = 0.0
        self.analyze_seconds = 0.0
        self.simplify_seconds = 0.0
        # Deltas accumulated by the most recent ``solve`` call (the
        # lifetime totals above keep growing across incremental calls).
        self.last_solve_stats: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its 0-based index."""
        v = len(self.assign)
        self.assign.append(UNDEF)
        self.vals.append(UNDEF)
        self.vals.append(UNDEF)
        self.level.append(-1)
        self.reason.append(CREF_NONE)
        self.activity.append(0.0)
        self.polarity.append(False)
        self.eliminated.append(0)
        self._seen.append(0)
        self.watches.append([])
        self.watches.append([])
        if self.order is not None:
            self.order.insert(v)
        return v

    @property
    def num_vars(self) -> int:
        return len(self.assign)

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def value_lit(self, literal: int) -> int:
        a = self.assign[literal >> 1]
        if a == UNDEF:
            return UNDEF
        return a ^ (literal & 1)

    def enable_proof(self):
        """Turn on DRAT proof logging (idempotent).

        Must be called before any clause is added: the log's ``inputs``
        double as the original-formula record a checker verifies
        against.  Returns the :class:`~repro.smt.sat.proof.ProofLog`.
        """
        if self.proof is None:
            from .proof import ProofLog

            if self.num_clauses_added or not self.ok:
                raise ValueError(
                    "enable_proof() must precede the first add_clause()"
                )
            self.proof = ProofLog()
        return self.proof

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add an input clause. Returns False if the formula became UNSAT.

        Raises ``ValueError`` when a literal names a variable removed by
        :meth:`presimplify` — adding to an eliminated variable would
        invalidate the elimination's model reconstruction, so callers
        that keep asserting incrementally must freeze those variables.
        """
        if not self.ok:
            return False
        self.num_clauses_added += 1
        proof = self.proof
        if proof is not None:
            lits = list(lits)
            proof.log_input(lits)
        if self.trail_lim:
            # Incremental use: retract the previous solve's decisions.
            self._cancel_until(0)
        assign = self.assign
        eliminated = self.eliminated
        if type(lits) is list and len(lits) == 2:
            # Fast path for binary clauses — the overwhelming majority of
            # what gate encodings emit.  Skips the dedup set; semantics
            # match the general loop below exactly.
            l0, l1 = lits
            v0 = l0 >> 1
            v1 = l1 >> 1
            if v0 < len(assign) and v1 < len(assign):
                if eliminated[v0] or eliminated[v1]:
                    raise ValueError(
                        "variable was eliminated by presimplify(); "
                        "freeze it to keep using it incrementally"
                    )
                a0 = assign[v0]
                a1 = assign[v1]
                if a0 < 0 and a1 < 0:
                    if l0 == l1:
                        lits = [l0]  # duplicate literal: unit
                    elif l0 == l1 ^ 1:
                        return True  # tautology
                    else:
                        cref = self.arena.alloc(lits)
                        self.clauses.append(cref)
                        self.watches[l0 ^ 1].append(cref)
                        self.watches[l1 ^ 1].append(cref)
                        return True
        seen: set = set()
        out: List[int] = []
        stripped = False
        for l in lits:
            v = l >> 1
            if v >= len(assign):
                self.ensure_vars(v + 1)
                assign = self.assign
                eliminated = self.eliminated
            elif eliminated[v]:
                raise ValueError(
                    f"variable {v} was eliminated by presimplify(); "
                    "freeze it to keep using it incrementally"
                )
            a = assign[v]
            if a >= 0:
                if a ^ (l & 1):
                    return True  # clause already satisfied at level 0
                stripped = True  # literal is dead: the kept clause is a
                continue         # derived strengthening of the input
            if l in seen:
                continue
            if (l ^ 1) in seen:
                return True  # tautology
            seen.add(l)
            out.append(l)
        if not out:
            if proof is not None:
                proof.add_empty()
            self.ok = False
            return False
        if proof is not None and stripped:
            # RUP via the level-0 units that falsified the dropped lits.
            proof.add(out)
        if len(out) == 1:
            if not self._enqueue(out[0], CREF_NONE):
                if proof is not None:
                    proof.add_empty()
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict != CREF_NONE:
                if proof is not None:
                    proof.add_empty()
                self.ok = False
                return False
            return True
        cref = self.arena.alloc(out)
        self.clauses.append(cref)
        self._watch(cref, len(out), out[0], out[1])
        return True

    def _watch(self, cref: int, size: int, l0: int, l1: int) -> None:
        self.watches[l0 ^ 1].append(cref)
        self.watches[l1 ^ 1].append(cref)

    def _rebuild_watches(self) -> None:
        """Re-derive every watcher list from the clause lists (used after
        arena compaction and after preprocessing rewrites the clause set;
        also drops any lazily-dead crefs still sitting in the lists)."""
        for lst in self.watches:
            del lst[:]
        data = self.arena.data
        for group in (self.clauses, self.learnts):
            for cref in group:
                size = data[cref] >> 2
                l0 = data[cref + 2]
                l1 = data[cref + 3]
                self._watch(cref, size, l0, l1)

    def _garbage_collect(self) -> None:
        """Compact the arena and remap every held cref."""
        mapping = self.arena.compact(self.clauses + self.learnts)
        self.clauses = [mapping[c] for c in self.clauses]
        self.learnts = [mapping[c] for c in self.learnts]
        reason = self.reason
        for v in range(len(reason)):
            r = reason[v]
            if r >= 0:
                # Locked (reason) clauses are never deleted, so the get()
                # default only covers level-0 reasons whose clause the
                # simplifier removed; analysis never dereferences those.
                reason[v] = mapping.get(r, CREF_NONE)
        self._rebuild_watches()
        self.num_gcs += 1

    # ------------------------------------------------------------------
    # Trail operations
    # ------------------------------------------------------------------
    def _enqueue(self, literal: int, from_cref: int) -> bool:
        val = self.value_lit(literal)
        if val != UNDEF:
            return val == TRUE
        v = literal >> 1
        self.assign[v] = TRUE if (literal & 1) == 0 else FALSE
        self.vals[literal] = TRUE
        self.vals[literal ^ 1] = FALSE
        self.level[v] = len(self.trail_lim)
        self.reason[v] = from_cref
        self.trail.append(literal)
        return True

    def _propagate(self) -> int:
        """Unit propagation. Returns a conflicting cref or CREF_NONE.

        This is the solver's hot loop; it inlines literal valuation
        (``assign[v] ^ (lit & 1)`` with -1 for unassigned) and enqueueing,
        and reads clause literals straight out of the flat arena.  The
        visit order matches the old object-based solver exactly (see the
        module docstring: determinism across representations).  MiniSat's
        blocker-literal trick was tried here and reverted: skipping a
        visit whose blocker is satisfied also skips the position-0/1
        normalization swap and the watch *move* the old solver performs
        when position 0 is unassigned but position 1 is true, and both
        leak into conflict-clause scan order — i.e. it changes models."""
        t0 = perf_counter()
        trail = self.trail
        watches = self.watches
        assign = self.assign
        vals = self.vals
        level = self.level
        reason = self.reason
        data = self.arena.data
        # Propagation never opens a decision level, so the level every
        # implied variable lands on is fixed for the whole call; qhead
        # lives in a local and is written back only at the exits.
        cur_level = len(self.trail_lim)
        qhead = self.qhead
        props = 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            # Compact the watcher list in place (write cursor j) instead
            # of allocating a replacement list for every propagated
            # literal.  Clauses that move to a new watch — or that were
            # lazily deleted — are simply not copied forward.
            watchers = watches[p]
            falsed = p ^ 1
            j = 0
            for i in range(len(watchers)):
                cref = watchers[i]
                header = data[cref]
                if header & 2:
                    continue  # deleted: lazy watcher removal
                base = cref + 2
                first = data[base]
                # Ensure the falsified literal is at position 1.
                if first == falsed:
                    first = data[base + 1]
                    data[base] = first
                    data[base + 1] = falsed
                vf = vals[first]
                if vf > 0:
                    watchers[j] = cref
                    j += 1
                    continue
                # Search for a new literal to watch (any non-false one).
                found = False
                for k in range(base + 2, base + (header >> 2)):
                    lk = data[k]
                    if vals[lk] != 0:
                        data[base + 1] = lk
                        data[k] = falsed
                        watches[lk ^ 1].append(cref)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting on `first`.
                watchers[j] = cref
                j += 1
                if vf == 0:
                    # first is FALSE: conflict. Restore remaining watchers.
                    watchers[j:] = watchers[i + 1:]
                    self.qhead = len(trail)
                    self.num_propagations += props
                    self.propagate_seconds += perf_counter() - t0
                    return cref
                v = first >> 1
                assign[v] = 1 - (first & 1)
                vals[first] = 1
                vals[first ^ 1] = 0
                level[v] = cur_level
                reason[v] = cref
                trail.append(first)
            del watchers[j:]
        self.qhead = qhead
        self.num_propagations += props
        self.propagate_seconds += perf_counter() - t0
        return CREF_NONE

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def _cancel_until(self, target_level: int) -> None:
        if len(self.trail_lim) <= target_level:
            return
        trail = self.trail
        assign = self.assign
        vals = self.vals
        reason = self.reason
        polarity = self.polarity
        order = self.order
        # Direct position-table access (order._pos) skips a __contains__
        # call per unwound variable; this loop undoes every assignment a
        # restart or backjump retracts, so it runs millions of times.
        pos = order._pos if order is not None else None
        bound = self.trail_lim[target_level]
        for idx in range(len(trail) - 1, bound - 1, -1):
            literal = trail[idx]
            v = literal >> 1
            polarity[v] = (literal & 1) == 0
            assign[v] = UNDEF
            vals[literal] = UNDEF
            vals[literal ^ 1] = UNDEF
            reason[v] = CREF_NONE
            if pos is not None and pos[v] < 0:
                order.insert(v)
        del trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(trail)

    # ------------------------------------------------------------------
    # Conflict analysis (1-UIP)
    # ------------------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        activity = self.activity
        value = activity[v] + self.var_inc
        activity[v] = value
        if value > 1e100:
            for i in range(len(activity)):
                activity[i] *= 1e-100
            self.var_inc *= 1e-100
        order = self.order
        if order is not None:
            # Inlined order.bumped(v): one bound-method call per bump is
            # measurable at analyze rates.
            i = order._pos[v]
            if i >= 0:
                order._sift_up(i)

    def _bump_clause(self, cref: int) -> None:
        if self.arena.bump_activity(cref, self.cla_inc) > 1e20:
            self.arena.rescale_activities(1e-20)
            self.cla_inc *= 1e-20

    def _analyze(self, conflict: int) -> Tuple[List[int], int]:
        """Derive a 1-UIP learnt clause and its backjump level."""
        t0 = perf_counter()
        data = self.arena.data
        level = self.level
        trail = self.trail
        reason = self.reason
        seen = self._seen          # persistent scratch; cleared on exit
        toclear: List[int] = []
        learnt: List[int] = [0]    # placeholder for the asserting literal
        counter = 0
        p = -1                     # no asserting literal yet
        cref = conflict
        index = len(trail) - 1
        cur_level = len(self.trail_lim)
        while True:
            header = data[cref]
            if header & 1:  # learnt
                self._bump_clause(cref)
            base = cref + 2
            # For a reason clause, propagation left the implied literal
            # (= p) at position 0; skip it.  The initial conflict clause
            # (p == -1) is scanned in full.
            start = base if p == -1 else base + 1
            for k in range(start, base + (header >> 2)):
                q = data[k]
                v = q >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = 1
                    toclear.append(v)
                    self._bump_var(v)
                    if level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Select next literal on the trail to resolve on.
            while not seen[trail[index] >> 1]:
                index -= 1
            p = trail[index]
            index -= 1
            v = p >> 1
            seen[v] = 0
            counter -= 1
            if counter == 0:
                break
            cref = reason[v]
        learnt[0] = p ^ 1
        # Clause minimization: drop literals implied by the rest.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = reason[q >> 1]
            if r < 0:
                kept.append(q)
                continue
            nq = q ^ 1
            rbase = r + 2
            redundant = True
            for k in range(rbase, rbase + (data[r] >> 2)):
                other = data[k]
                if other == nq:
                    continue
                ov = other >> 1
                if not seen[ov] and level[ov] != 0:
                    redundant = False
                    break
            if not redundant:
                kept.append(q)
        learnt = kept
        for v in toclear:
            seen[v] = 0
        if len(learnt) == 1:
            bt_level = 0
        else:
            # Move the literal with the highest level to position 1.
            max_i = 1
            for k in range(2, len(learnt)):
                if level[learnt[k] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]
        self.analyze_seconds += perf_counter() - t0
        return learnt, bt_level

    # ------------------------------------------------------------------
    # Learnt-clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        """Drop the lazier half of the learnt DB.

        Deletion only flips the header bit (watchers clean themselves up
        lazily during propagation); when enough of the arena is dead a
        compacting GC runs.  There is no full watcher rebuild here — that
        rebuild made the old representation's reduction quadratic on
        clause-heavy instances."""
        arena = self.arena
        data = arena.data
        acts = arena.activities
        proof = self.proof
        self.learnts.sort(key=lambda c: acts[data[c + 1]])
        keep_from = len(self.learnts) // 2
        removed = 0
        for cref in self.learnts[:keep_from]:
            if (data[cref] >> 2) > 2 and not self._is_reason(cref):
                if proof is not None:
                    proof.delete(arena.literals(cref))
                arena.delete(cref)
                removed += 1
        if removed:
            deleted_bit = 2
            self.learnts = [
                c for c in self.learnts if not data[c] & deleted_bit
            ]
        if arena.should_collect():
            self._garbage_collect()

    def _is_reason(self, cref: int) -> bool:
        first = self.arena.data[cref + 2]
        v = first >> 1
        return self.reason[v] == cref and self.value_lit(first) == TRUE

    # ------------------------------------------------------------------
    # Preprocessing
    # ------------------------------------------------------------------
    def presimplify(
        self,
        frozen: Optional[Iterable[int]] = None,
        max_rounds: int = 3,
    ):
        """Run SatELite-style preprocessing (subsumption, self-subsuming
        resolution, bounded variable elimination) on the input clauses.

        ``frozen`` lists variable indices that must survive elimination —
        anything the caller will still mention in assumptions or future
        ``add_clause`` calls (the incremental SMT facade freezes
        everything and therefore opts out entirely; the standalone DIMACS
        path freezes nothing).  Learnt clauses are discarded first: after
        elimination they could re-introduce removed variables.

        Returns the :class:`~repro.smt.sat.simplify.SimplifyStats` for
        the run, or ``None`` when the solver is already UNSAT.  Sets
        ``ok=False`` when preprocessing derives unsatisfiability.
        """
        from .simplify import Simplifier

        if not self.ok:
            return None
        self._cancel_until(0)
        t0 = perf_counter()
        try:
            proof = self.proof
            for cref in self.learnts:
                if not self.arena.is_deleted(cref):
                    if proof is not None:
                        proof.delete(self.arena.literals(cref))
                    self.arena.delete(cref)
            self.learnts = []
            simp = Simplifier(self, frozen=frozen, max_rounds=max_rounds)
            stats = simp.run()
        finally:
            self.simplify_seconds += perf_counter() - t0
        return stats

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        if self.order is None:
            from .heap import ActivityHeap

            self.order = ActivityHeap(self.activity)
            self.order.build(range(self.num_vars))
        eliminated = self.eliminated
        assign = self.assign
        order = self.order
        while len(order):
            v = order.pop_max()
            if assign[v] == UNDEF and not eliminated[v]:
                return v
        return -1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> Optional[bool]:
        """Solve the formula under assumptions.

        Returns True (SAT), False (UNSAT), or None if the budget ran out.
        ``last_solve_stats`` afterwards holds this call's deltas
        (conflicts/decisions/propagations/restarts/learned plus the
        per-phase second counters) — the per-call view the tracing layer
        records, as opposed to the lifetime totals of :meth:`stats`.
        """
        before = (
            self.num_conflicts,
            self.num_decisions,
            self.num_propagations,
            self.num_restarts,
            self.num_learned,
            self.propagate_seconds,
            self.analyze_seconds,
        )
        try:
            return self._solve(assumptions, budget)
        finally:
            self.last_solve_stats = {
                "conflicts": self.num_conflicts - before[0],
                "decisions": self.num_decisions - before[1],
                "propagations": self.num_propagations - before[2],
                "restarts": self.num_restarts - before[3],
                "learned": self.num_learned - before[4],
                "propagate_seconds": self.propagate_seconds - before[5],
                "analyze_seconds": self.analyze_seconds - before[6],
            }

    def _solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> Optional[bool]:
        if not self.ok:
            return False
        for a in assumptions:
            if self.eliminated[a >> 1]:
                raise ValueError(
                    f"assumption on eliminated variable {a >> 1}; "
                    "freeze assumption variables before presimplify()"
                )
        self._cancel_until(0)
        proof = self.proof
        conflict = self._propagate()
        if conflict != CREF_NONE:
            if proof is not None:
                proof.add_empty()
            self.ok = False
            return False
        self.conflict_assumptions: List[int] = []
        restart_idx = 1
        restart_limit = 32 * luby(restart_idx)
        conflicts_this_restart = 0
        max_learnts = max(1000, len(self.clauses) // 2)
        last_props = self.num_propagations
        while True:
            conflict = self._propagate()
            if conflict != CREF_NONE:
                self.num_conflicts += 1
                conflicts_this_restart += 1
                if budget is not None:
                    budget.note_conflict()
                    if budget.exhausted():
                        self._cancel_until(0)
                        return None
                if not self.trail_lim:
                    if proof is not None:
                        proof.add_empty()
                    self.ok = False
                    return False
                learnt, bt_level = self._analyze(conflict)
                self.num_learned += 1
                if proof is not None:
                    proof.add(learnt)
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], CREF_NONE)
                else:
                    cref = self.arena.alloc(learnt, learnt=True)
                    self.learnts.append(cref)
                    self._watch(cref, len(learnt), learnt[0], learnt[1])
                    self._bump_clause(cref)
                    self._enqueue(learnt[0], cref)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if len(self.learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            if budget is not None:
                # Wall-clock safety net for propagation-heavy solves
                # that rarely conflict (the conflict-path check above
                # would never fire).
                props = self.num_propagations
                if budget.note_propagations(props - last_props):
                    self._cancel_until(0)
                    return None
                last_props = props
            if conflicts_this_restart >= restart_limit:
                if budget is not None and budget.poll():
                    self._cancel_until(0)
                    return None
                self.num_restarts += 1
                restart_idx += 1
                restart_limit = 32 * luby(restart_idx)
                conflicts_this_restart = 0
                self._cancel_until(0)
                continue
            # Respect assumptions before free decisions.
            next_lit = None
            for a in assumptions:
                val = self.value_lit(a)
                if val == FALSE:
                    self._record_assumption_conflict(a, assumptions)
                    self._cancel_until(0)
                    return False
                if val == UNDEF:
                    next_lit = a
                    break
            if next_lit is not None:
                self.num_decisions += 1
                self._new_decision_level()
                self._enqueue(next_lit, CREF_NONE)
                continue
            v = self._pick_branch_var()
            if v < 0:
                return True  # all non-eliminated variables assigned: SAT
            self.num_decisions += 1
            self._new_decision_level()
            literal = 2 * v + (0 if self.polarity[v] else 1)
            self._enqueue(literal, CREF_NONE)

    def _record_assumption_conflict(
        self, failed: int, assumptions: Sequence[int]
    ) -> None:
        """Record a (coarse) subset of assumptions responsible for failure."""
        self.conflict_assumptions = [failed]

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model(self) -> List[bool]:
        """The satisfying assignment after a True result (per variable).

        Eliminated variables are re-valued from the reconstruction stack:
        processed newest-first, each eliminated literal defaults to false
        and flips to true exactly when one of its saved clauses is not
        already satisfied — the standard SatELite argument guarantees the
        opposite-polarity clauses (whose resolvents the solver did see)
        then hold as well."""
        m = [a == TRUE for a in self.assign]
        for l, saved in reversed(self.reconstruction):
            v = l >> 1
            m[v] = (l & 1) == 1  # default: literal l false
            for clause in saved:
                satisfied = False
                for q in clause:
                    if q != l and m[q >> 1] != bool(q & 1):
                        satisfied = True
                        break
                if not satisfied:
                    m[v] = (l & 1) == 0  # literal l true
                    break
        return m

    def model_value(self, literal: int) -> bool:
        if self.reconstruction and self.eliminated[literal >> 1]:
            return self.model()[literal >> 1] ^ bool(literal & 1)
        return self.value_lit(literal) == TRUE

    def stats(self) -> Dict[str, float]:
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "learnts": len(self.learnts),
            "conflicts": self.num_conflicts,
            "decisions": self.num_decisions,
            "propagations": self.num_propagations,
            "restarts": self.num_restarts,
            "learned": self.num_learned,
            "clauses_added": self.num_clauses_added,
            "eliminated": sum(self.eliminated),
            "arena_words": len(self.arena),
            "arena_gcs": self.num_gcs,
            "propagate_seconds": round(self.propagate_seconds, 6),
            "analyze_seconds": round(self.analyze_seconds, 6),
            "simplify_seconds": round(self.simplify_seconds, 6),
        }
