"""A CDCL SAT solver: two-watched literals, VSIDS, 1-UIP learning,
Luby restarts, phase saving, learnt-clause reduction, and incremental
solving under assumptions.

The solver is deliberately self-contained (standard library only) because it
is the combinatorial search substrate for the whole ParserHawk reproduction:
the paper offloads its search to Z3; we offload ours to this module.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from .clause import Clause, neg

TRUE = 1
FALSE = 0
UNDEF = -1


class Unsatisfiable(Exception):
    """Raised internally when the formula is unsatisfiable at level 0."""


class Budget:
    """Resource budget for a single ``solve`` call."""

    def __init__(
        self,
        max_conflicts: Optional[int] = None,
        max_seconds: Optional[float] = None,
    ) -> None:
        self.max_conflicts = max_conflicts
        self.max_seconds = max_seconds
        self._start = time.monotonic()
        self._conflicts = 0

    def note_conflict(self) -> None:
        self._conflicts += 1

    def exhausted(self) -> bool:
        if self.max_conflicts is not None and self._conflicts >= self.max_conflicts:
            return True
        if self.max_seconds is not None:
            return time.monotonic() - self._start >= self.max_seconds
        return False


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby restart sequence
    (1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...)."""
    while True:
        if (i + 1) & i == 0:  # i+1 is a power of two
            return (i + 1) >> 1
        k = 1
        while (1 << (k + 1)) - 1 < i:
            k += 1
        i -= (1 << k) - 1


class SatSolver:
    """CDCL solver over packed literals (see :mod:`repro.smt.sat.clause`)."""

    def __init__(self) -> None:
        self.clauses: List[Clause] = []
        self.learnts: List[Clause] = []
        self.watches: List[List[Clause]] = []
        self.assign: List[int] = []          # per-var: TRUE/FALSE/UNDEF
        self.level: List[int] = []           # per-var: decision level
        self.reason: List[Optional[Clause]] = []
        self.trail: List[int] = []           # assigned literals, in order
        self.trail_lim: List[int] = []       # trail index per decision level
        self.qhead = 0
        self.activity: List[float] = []
        self.polarity: List[bool] = []       # phase saving
        self.order = None                    # lazy ActivityHeap
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.cla_inc = 1.0
        self.cla_decay = 0.999
        self.ok = True
        self.num_conflicts = 0
        self.num_decisions = 0
        self.num_propagations = 0
        self.num_restarts = 0
        self.num_learned = 0
        # Input clauses handed to add_clause (before level-0 simplification
        # drops satisfied/tautological ones).  The bit-blaster's constant
        # folding shows up here: fewer emitted clauses for the same query.
        self.num_clauses_added = 0
        # Deltas accumulated by the most recent ``solve`` call (the
        # lifetime totals above keep growing across incremental calls).
        self.last_solve_stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Variable and clause management
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable, returning its 0-based index."""
        v = len(self.assign)
        self.assign.append(UNDEF)
        self.level.append(-1)
        self.reason.append(None)
        self.activity.append(0.0)
        self.polarity.append(False)
        self.watches.append([])
        self.watches.append([])
        if self.order is not None:
            self.order.insert(v)
        return v

    @property
    def num_vars(self) -> int:
        return len(self.assign)

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def value_lit(self, literal: int) -> int:
        a = self.assign[literal >> 1]
        if a == UNDEF:
            return UNDEF
        return a ^ (literal & 1)

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add an input clause. Returns False if the formula became UNSAT."""
        if not self.ok:
            return False
        self.num_clauses_added += 1
        if self.trail_lim:
            # Incremental use: retract the previous solve's decisions.
            self._cancel_until(0)
        seen: Dict[int, bool] = {}
        out: List[int] = []
        for l in lits:
            self.ensure_vars((l >> 1) + 1)
            val = self.value_lit(l)
            if val == TRUE:
                return True  # clause already satisfied at level 0
            if val == FALSE:
                continue     # literal is dead
            if l in seen:
                continue
            if (l ^ 1) in seen:
                return True  # tautology
            seen[l] = True
            out.append(l)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self.ok = False
                return False
            return True
        clause = Clause(out)
        self.clauses.append(clause)
        self._watch(clause)
        return True

    def _watch(self, clause: Clause) -> None:
        self.watches[neg(clause[0])].append(clause)
        self.watches[neg(clause[1])].append(clause)

    # ------------------------------------------------------------------
    # Trail operations
    # ------------------------------------------------------------------
    def _enqueue(self, literal: int, from_clause: Optional[Clause]) -> bool:
        val = self.value_lit(literal)
        if val != UNDEF:
            return val == TRUE
        v = literal >> 1
        self.assign[v] = TRUE if (literal & 1) == 0 else FALSE
        self.level[v] = len(self.trail_lim)
        self.reason[v] = from_clause
        self.trail.append(literal)
        return True

    def _propagate(self) -> Optional[Clause]:
        """Unit propagation. Returns a conflicting clause or None.

        This is the solver's hot loop; it inlines literal valuation
        (``assign[v] ^ (lit & 1)`` with -1 for unassigned) and enqueueing
        to keep Python-level overhead down."""
        trail = self.trail
        watches = self.watches
        assign = self.assign
        level = self.level
        reason = self.reason
        # Propagation never opens a decision level, so the level every
        # implied variable lands on is fixed for the whole call; qhead
        # lives in a local and is written back only at the exits.
        cur_level = len(self.trail_lim)
        qhead = self.qhead
        props = 0
        while qhead < len(trail):
            p = trail[qhead]
            qhead += 1
            props += 1
            # Compact the watcher list in place (write cursor j) instead
            # of allocating a replacement list for every propagated
            # literal.  Clauses that move to a new watch are simply not
            # copied forward.
            watchers = watches[p]
            falsed = p ^ 1
            i = 0
            j = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                lits = clause.lits
                # Ensure the falsified literal is at position 1.
                if lits[0] == falsed:
                    lits[0] = lits[1]
                    lits[1] = falsed
                first = lits[0]
                a0 = assign[first >> 1]
                if a0 >= 0 and (a0 ^ (first & 1)) == 1:
                    watchers[j] = clause
                    j += 1
                    continue
                # Search for a new literal to watch.
                found = False
                for k in range(2, len(lits)):
                    lk = lits[k]
                    ak = assign[lk >> 1]
                    if ak < 0 or (ak ^ (lk & 1)) == 1:
                        lits[1] = lk
                        lits[k] = falsed
                        watches[lk ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting on `first`.
                watchers[j] = clause
                j += 1
                if a0 >= 0:
                    # first is FALSE: conflict. Restore remaining watchers.
                    watchers[j:] = watchers[i:]
                    self.qhead = len(trail)
                    self.num_propagations += props
                    return clause
                v = first >> 1
                assign[v] = 1 - (first & 1)
                level[v] = cur_level
                reason[v] = clause
                trail.append(first)
            del watchers[j:]
        self.qhead = qhead
        self.num_propagations += props
        return None

    def _decision_level(self) -> int:
        return len(self.trail_lim)

    def _new_decision_level(self) -> None:
        self.trail_lim.append(len(self.trail))

    def _cancel_until(self, target_level: int) -> None:
        if self._decision_level() <= target_level:
            return
        bound = self.trail_lim[target_level]
        for idx in range(len(self.trail) - 1, bound - 1, -1):
            literal = self.trail[idx]
            v = literal >> 1
            self.polarity[v] = (literal & 1) == 0
            self.assign[v] = UNDEF
            self.reason[v] = None
            if self.order is not None and v not in self.order:
                self.order.insert(v)
        del self.trail[bound:]
        del self.trail_lim[target_level:]
        self.qhead = len(self.trail)

    # ------------------------------------------------------------------
    # Conflict analysis (1-UIP)
    # ------------------------------------------------------------------
    def _bump_var(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for i in range(len(self.activity)):
                self.activity[i] *= 1e-100
            self.var_inc *= 1e-100
        if self.order is not None:
            self.order.bumped(v)

    def _bump_clause(self, clause: Clause) -> None:
        clause.activity += self.cla_inc
        if clause.activity > 1e20:
            for c in self.learnts:
                c.activity *= 1e-20
            self.cla_inc *= 1e-20

    def _analyze(self, conflict: Clause) -> tuple[List[int], int]:
        """Derive a 1-UIP learnt clause and its backjump level."""
        learnt: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * self.num_vars
        counter = 0
        p: Optional[int] = None
        clause: Optional[Clause] = conflict
        index = len(self.trail) - 1
        cur_level = self._decision_level()
        while True:
            assert clause is not None
            if clause.learnt:
                self._bump_clause(clause)
            start = 0 if p is None else 1
            for k in range(start, len(clause.lits)):
                q = clause.lits[k]
                v = q >> 1
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump_var(v)
                    if self.level[v] >= cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # Select next literal on the trail to resolve on.
            while not seen[self.trail[index] >> 1]:
                index -= 1
            p = self.trail[index]
            index -= 1
            v = p >> 1
            seen[v] = False
            counter -= 1
            if counter == 0:
                break
            clause = self.reason[v]
        learnt[0] = p ^ 1
        # Clause minimization: drop literals implied by the rest.
        kept = [learnt[0]]
        for q in learnt[1:]:
            r = self.reason[q >> 1]
            if r is None:
                kept.append(q)
                continue
            redundant = all(
                seen[other >> 1] or self.level[other >> 1] == 0
                for other in r.lits
                if other != (q ^ 1)
            )
            if not redundant:
                kept.append(q)
        for q in kept:
            seen[q >> 1] = True
        learnt = kept
        if len(learnt) == 1:
            bt_level = 0
        else:
            # Move the literal with the highest level to position 1.
            max_i = 1
            for k in range(2, len(learnt)):
                if self.level[learnt[k] >> 1] > self.level[learnt[max_i] >> 1]:
                    max_i = k
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = self.level[learnt[1] >> 1]
        return learnt, bt_level

    # ------------------------------------------------------------------
    # Learnt-clause DB reduction
    # ------------------------------------------------------------------
    def _reduce_db(self) -> None:
        self.learnts.sort(key=lambda c: c.activity)
        keep_from = len(self.learnts) // 2
        removed = set()
        for clause in self.learnts[:keep_from]:
            if len(clause) > 2 and not self._is_reason(clause):
                removed.add(id(clause))
        if not removed:
            return
        self.learnts = [c for c in self.learnts if id(c) not in removed]
        for wl in range(len(self.watches)):
            self.watches[wl] = [
                c for c in self.watches[wl] if id(c) not in removed
            ]

    def _is_reason(self, clause: Clause) -> bool:
        v = clause[0] >> 1
        return self.reason[v] is clause and self.value_lit(clause[0]) == TRUE

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def _pick_branch_var(self) -> int:
        if self.order is None:
            from .heap import ActivityHeap

            self.order = ActivityHeap(self.activity)
            for v in range(self.num_vars):
                self.order.insert(v)
        while len(self.order):
            v = self.order.pop_max()
            if self.assign[v] == UNDEF:
                return v
        return -1

    def solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> Optional[bool]:
        """Solve the formula under assumptions.

        Returns True (SAT), False (UNSAT), or None if the budget ran out.
        ``last_solve_stats`` afterwards holds this call's deltas
        (conflicts/decisions/propagations/restarts/learned) — the per-call
        view the tracing layer records, as opposed to the lifetime totals
        of :meth:`stats`.
        """
        before = (
            self.num_conflicts,
            self.num_decisions,
            self.num_propagations,
            self.num_restarts,
            self.num_learned,
        )
        try:
            return self._solve(assumptions, budget)
        finally:
            self.last_solve_stats = {
                "conflicts": self.num_conflicts - before[0],
                "decisions": self.num_decisions - before[1],
                "propagations": self.num_propagations - before[2],
                "restarts": self.num_restarts - before[3],
                "learned": self.num_learned - before[4],
            }

    def _solve(
        self,
        assumptions: Sequence[int] = (),
        budget: Optional[Budget] = None,
    ) -> Optional[bool]:
        if not self.ok:
            return False
        self._cancel_until(0)
        conflict = self._propagate()
        if conflict is not None:
            self.ok = False
            return False
        self.conflict_assumptions: List[int] = []
        restart_idx = 1
        restart_limit = 32 * luby(restart_idx)
        conflicts_this_restart = 0
        max_learnts = max(1000, len(self.clauses) // 2)
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.num_conflicts += 1
                conflicts_this_restart += 1
                if budget is not None:
                    budget.note_conflict()
                    if budget.exhausted():
                        self._cancel_until(0)
                        return None
                if self._decision_level() == 0:
                    self.ok = False
                    return False
                learnt, bt_level = self._analyze(conflict)
                self.num_learned += 1
                self._cancel_until(bt_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    clause = Clause(learnt, learnt=True)
                    self.learnts.append(clause)
                    self._watch(clause)
                    self._bump_clause(clause)
                    self._enqueue(learnt[0], clause)
                self.var_inc /= self.var_decay
                self.cla_inc /= self.cla_decay
                if len(self.learnts) > max_learnts:
                    self._reduce_db()
                    max_learnts = int(max_learnts * 1.3)
                continue
            if conflicts_this_restart >= restart_limit:
                self.num_restarts += 1
                restart_idx += 1
                restart_limit = 32 * luby(restart_idx)
                conflicts_this_restart = 0
                self._cancel_until(0)
                continue
            # Respect assumptions before free decisions.
            next_lit = None
            for a in assumptions:
                val = self.value_lit(a)
                if val == FALSE:
                    self._record_assumption_conflict(a, assumptions)
                    self._cancel_until(0)
                    return False
                if val == UNDEF:
                    next_lit = a
                    break
            if next_lit is not None:
                self.num_decisions += 1
                self._new_decision_level()
                self._enqueue(next_lit, None)
                continue
            v = self._pick_branch_var()
            if v < 0:
                return True  # all variables assigned: SAT
            self.num_decisions += 1
            self._new_decision_level()
            literal = 2 * v + (0 if self.polarity[v] else 1)
            self._enqueue(literal, None)

    def _record_assumption_conflict(
        self, failed: int, assumptions: Sequence[int]
    ) -> None:
        """Record a (coarse) subset of assumptions responsible for failure."""
        self.conflict_assumptions = [failed]

    # ------------------------------------------------------------------
    # Model access
    # ------------------------------------------------------------------
    def model(self) -> List[bool]:
        """The satisfying assignment after a True result (per variable)."""
        return [a == TRUE for a in self.assign]

    def model_value(self, literal: int) -> bool:
        return self.value_lit(literal) == TRUE

    def stats(self) -> Dict[str, int]:
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "learnts": len(self.learnts),
            "conflicts": self.num_conflicts,
            "decisions": self.num_decisions,
            "propagations": self.num_propagations,
            "restarts": self.num_restarts,
            "learned": self.num_learned,
            "clauses_added": self.num_clauses_added,
        }
