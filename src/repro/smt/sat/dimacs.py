"""DIMACS CNF reading/writing for the SAT substrate.

Primarily used by the test suite to cross-check the solver on standard
formula formats, and for dumping hard synthesis queries for offline
inspection.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from .clause import lit_from_dimacs, to_dimacs
from .solver import SatSolver


def parse_dimacs(text: str) -> Tuple[int, List[List[int]]]:
    """Parse DIMACS CNF text into (num_vars, clauses-of-packed-literals).

    Tolerant where the ecosystem is (clauses spanning lines, ``%``
    trailers, a header that under-declares the variable count — the
    count grows to cover the literals actually used), strict where
    silence would corrupt the formula: a malformed or duplicated
    problem line and non-integer literal tokens raise ``ValueError``
    with the offending text named.
    """
    num_vars = 0
    clauses: List[List[int]] = []
    current: List[int] = []
    declared = False
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            if declared:
                raise ValueError(f"duplicate problem line: {line!r}")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            try:
                num_vars = int(parts[2])
                num_clauses = int(parts[3])
            except ValueError:
                raise ValueError(
                    f"non-numeric counts in problem line: {line!r}"
                ) from None
            if num_vars < 0 or num_clauses < 0:
                raise ValueError(
                    f"negative counts in problem line: {line!r}"
                )
            declared = True
            continue
        if line.startswith("%"):
            break
        for tok in line.split():
            try:
                val = int(tok)
            except ValueError:
                raise ValueError(f"bad literal token: {tok!r}") from None
            if val == 0:
                clauses.append(current)
                current = []
            else:
                current.append(lit_from_dimacs(val))
                num_vars = max(num_vars, abs(val))
    if current:
        clauses.append(current)
    if not declared and not clauses:
        raise ValueError("no problem line and no clauses found")
    return num_vars, clauses


def load_dimacs(path: Union[str, Path]) -> SatSolver:
    """Build a solver from a DIMACS file."""
    text = Path(path).read_text()
    return solver_from_dimacs(text)


def solver_from_dimacs(text: str) -> SatSolver:
    num_vars, clauses = parse_dimacs(text)
    solver = SatSolver()
    solver.ensure_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def write_dimacs(num_vars: int, clauses: List[List[int]]) -> str:
    """Render packed-literal clauses as DIMACS CNF text."""
    lines = [f"p cnf {num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(to_dimacs(l)) for l in clause) + " 0")
    return "\n".join(lines) + "\n"


def dump_solver(solver: SatSolver) -> str:
    """Render a solver's *current* input formula as DIMACS: level-0 units
    from the trail plus the live input clauses out of the arena.  Running
    this after :meth:`SatSolver.presimplify` shows exactly what the
    preprocessor left for search — the triage view the ``repro sat``
    subcommand exists for.  Learnt clauses are deliberately excluded
    (they are implied)."""
    arena = solver.arena
    clauses: List[List[int]] = []
    root = solver.trail if not solver.trail_lim \
        else solver.trail[: solver.trail_lim[0]]
    for literal in root:
        clauses.append([literal])
    for cref in solver.clauses:
        if not arena.is_deleted(cref):
            clauses.append(arena.literals(cref))
    return write_dimacs(solver.num_vars, clauses)
