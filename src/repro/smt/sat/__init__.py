"""From-scratch CDCL SAT solver used as ParserHawk's search substrate."""

from .arena import CREF_NONE, ClauseArena
from .clause import Clause, lit, lit_from_dimacs, neg, sign_of, to_dimacs, var_of
from .dimacs import (
    dump_solver,
    load_dimacs,
    parse_dimacs,
    solver_from_dimacs,
    write_dimacs,
)
from .dratcheck import ProofCheckResult, check_proof, parse_drat
from .proof import ProofLog
from .simplify import Simplifier, SimplifyStats
from .solver import Budget, SatSolver, luby

__all__ = [
    "Budget",
    "CREF_NONE",
    "Clause",
    "ClauseArena",
    "ProofCheckResult",
    "ProofLog",
    "SatSolver",
    "Simplifier",
    "SimplifyStats",
    "check_proof",
    "parse_drat",
    "dump_solver",
    "lit",
    "lit_from_dimacs",
    "load_dimacs",
    "luby",
    "neg",
    "parse_dimacs",
    "sign_of",
    "solver_from_dimacs",
    "to_dimacs",
    "var_of",
    "write_dimacs",
]
