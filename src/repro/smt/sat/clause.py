"""Clause and literal primitives for the CDCL SAT solver.

Literals use the common "packed" integer encoding: variable ``v`` (0-based)
yields positive literal ``2*v`` and negative literal ``2*v + 1``.  This keeps
watch lists and assignment tables as flat Python lists, which is the fastest
data layout available to a pure-Python solver.
"""

from __future__ import annotations

from typing import Iterable, List


def lit(var: int, positive: bool = True) -> int:
    """Pack a 0-based variable index into a literal."""
    return 2 * var + (0 if positive else 1)


def lit_from_dimacs(dlit: int) -> int:
    """Convert a DIMACS literal (+/- 1-based) into packed form."""
    if dlit == 0:
        raise ValueError("DIMACS literal cannot be 0")
    var = abs(dlit) - 1
    return 2 * var + (0 if dlit > 0 else 1)


def to_dimacs(packed: int) -> int:
    """Convert a packed literal back to DIMACS (+/- 1-based)."""
    var = (packed >> 1) + 1
    return var if (packed & 1) == 0 else -var


def neg(packed: int) -> int:
    """Negate a packed literal."""
    return packed ^ 1


def var_of(packed: int) -> int:
    """Variable index of a packed literal."""
    return packed >> 1


def sign_of(packed: int) -> bool:
    """True when the packed literal is positive."""
    return (packed & 1) == 0


class Clause:
    """A materialized view of a clause: packed literals + metadata.

    The solver's hot path no longer stores these — clauses live packed in
    a flat :class:`~repro.smt.sat.arena.ClauseArena` and are referred to
    by integer cref.  ``Clause`` remains the convenient boxed form for
    export, debugging, and tests; :meth:`from_arena` materializes one
    from a cref.
    """

    __slots__ = ("lits", "learnt", "activity")

    def __init__(self, lits: Iterable[int], learnt: bool = False) -> None:
        self.lits: List[int] = list(lits)
        self.learnt = learnt
        self.activity = 0.0

    @classmethod
    def from_arena(cls, arena, cref: int) -> "Clause":
        """Box the clause stored at ``cref`` (activity included)."""
        clause = cls(arena.literals(cref), learnt=arena.is_learnt(cref))
        clause.activity = arena.activity(cref)
        return clause

    def __len__(self) -> int:
        return len(self.lits)

    def __getitem__(self, i: int) -> int:
        return self.lits[i]

    def __setitem__(self, i: int, value: int) -> None:
        self.lits[i] = value

    def __iter__(self):
        return iter(self.lits)

    def __repr__(self) -> str:
        body = " ".join(str(to_dimacs(l)) for l in self.lits)
        kind = "learnt" if self.learnt else "input"
        return f"Clause<{kind}>({body})"
