"""DRAT-style proof logging for the CDCL core.

A :class:`ProofLog` records the clausal derivation a solve performs on
top of its input formula: every derived clause the solver commits to
(learnt clauses, preprocessor resolvents, strengthened clauses, derived
units) is an *addition*, every clause the solver discards (learnt-DB
reduction, subsumption, BVE originals, satisfied clauses) is a
*deletion*, and an unsatisfiability verdict ends with the empty clause.
The log doubles as a record of the original formula: ``inputs`` holds
every clause handed to ``add_clause`` verbatim, so a checker — or a
certificate — can reconstruct the CNF the proof refutes without
trusting solver state.

Every addition the solver emits is RUP (reverse unit propagation) with
respect to the formula built from the inputs plus the prior additions
minus the prior deletions:

* a 1-UIP learnt clause (minimized or not) is RUP by construction;
* a single resolvent of two in-formula clauses is RUP, which covers
  self-subsuming resolution and every BVE resolvent;
* a clause with level-0-falsified literals stripped is RUP given the
  unit clauses that falsified them.

The one ordering obligation is that an addition must appear *before*
the deletion of its antecedents — the simplifier logs BVE resolvents
before the clauses containing the pivot, and strengthened clauses
before their originals — which :mod:`repro.smt.sat.simplify` honours
regardless of the order it mutates the arena in.

Logging is off by default (``SatSolver.proof is None``) and every hook
in the hot path is a single ``is not None`` test, so the solve path is
untouched unless :meth:`SatSolver.enable_proof` was called.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Tuple

from .clause import to_dimacs

# A proof step is (is_deletion, packed-literal clause).
Step = Tuple[bool, List[int]]


class ProofLog:
    """In-memory DRAT log plus the input clause stream it refutes."""

    __slots__ = ("inputs", "steps", "additions", "deletions")

    def __init__(self) -> None:
        self.inputs: List[List[int]] = []
        self.steps: List[Step] = []
        self.additions = 0
        self.deletions = 0

    # -- recording ------------------------------------------------------
    def log_input(self, lits: Iterable[int]) -> None:
        self.inputs.append(list(lits))

    def add(self, lits: Iterable[int]) -> None:
        self.steps.append((False, list(lits)))
        self.additions += 1

    def add_empty(self) -> None:
        self.add(())

    def delete(self, lits: Iterable[int]) -> None:
        self.steps.append((True, list(lits)))
        self.deletions += 1

    @property
    def clauses_logged(self) -> int:
        return self.additions + self.deletions

    @property
    def has_refutation(self) -> bool:
        """True when the log ends in (contains) the empty clause."""
        for is_delete, lits in reversed(self.steps):
            if not is_delete and not lits:
                return True
        return False

    # -- rendering ------------------------------------------------------
    def to_drat(self) -> str:
        """Standard DRAT text: one clause per line, ``d`` for deletions."""
        lines = []
        for is_delete, lits in self.steps:
            body = " ".join(str(to_dimacs(l)) for l in lits)
            prefix = "d " if is_delete else ""
            lines.append(f"{prefix}{body} 0" if body else f"{prefix}0")
        return "\n".join(lines) + ("\n" if lines else "")

    def input_dimacs(self, num_vars: int = 0) -> str:
        """The recorded input formula as DIMACS CNF."""
        from .dimacs import write_dimacs

        for clause in self.inputs:
            for l in clause:
                if (l >> 1) + 1 > num_vars:
                    num_vars = (l >> 1) + 1
        return write_dimacs(num_vars, self.inputs)

    def input_digest(self) -> str:
        """SHA-256 over the canonical input clause stream.

        Order-sensitive on purpose: the digest identifies the exact
        constraint sequence a solve saw, which is what an equivalence
        certificate needs to pin down.
        """
        h = hashlib.sha256()
        for clause in self.inputs:
            h.update(",".join(str(l) for l in clause).encode("ascii"))
            h.update(b";")
        return h.hexdigest()
