"""Tseitin bit-blasting from the term layer down to CNF.

Each Bool term maps to one packed SAT literal; each BitVec term maps to a
list of packed literals, least-significant bit first.  The blaster caches
per-term results so shared sub-terms are encoded once (terms are interned,
so the cache is an identity dict).
"""

from __future__ import annotations

from typing import Dict, List

from ..resilience.injection import fault_point
from .sat.clause import neg
from .sat.solver import SatSolver
from .terms import BOOL, Term

# Default for constant-aware gate folding (see BitBlaster).  Folding is
# semantics-preserving — it only short-circuits gates whose output is
# already determined — so this stays True; the flag exists so benchmarks
# can A/B the emitted-clause counts with folding disabled.
FOLD_CONSTANTS = True

# Default for the structural gate cache (see BitBlaster).  Also
# semantics-preserving, so it stays True; the flag lets benchmarks
# isolate one mechanism at a time — with both enabled, the gate cache
# absorbs most of the duplicate structure that folding would otherwise
# be credited for, and the fold A/B would read as a no-op.
GATE_CACHE = True


class BitBlaster:
    """Incrementally encodes terms into a :class:`SatSolver` instance.

    Gate encodings are **constant-aware**: once the constant literal
    exists, gates fold known-true/known-false inputs (and equal or
    complementary input pairs) before emitting Tseitin auxiliaries.
    Constant inputs are common in the synthesis encodings — test
    constraints substitute concrete input bits into the shared candidate
    circuit — and every folded gate saves an auxiliary variable and its
    defining clauses without changing any SAT/UNSAT answer.
    """

    def __init__(
        self,
        solver: SatSolver,
        fold_constants: bool | None = None,
        gate_cache: bool | None = None,
    ) -> None:
        self.solver = solver
        self._bool_cache: Dict[Term, int] = {}
        self._bv_cache: Dict[Term, List[int]] = {}
        self._true_lit: int | None = None
        self._fold = (
            FOLD_CONSTANTS if fold_constants is None else fold_constants
        )
        self._use_gate_cache = (
            GATE_CACHE if gate_cache is None else gate_cache
        )
        # Structural CNF cache: gate outputs keyed by (op, canonical
        # input-literal tuple).  The term caches above only hash-cons
        # whole terms; across CEGIS iterations the *terms* differ (fresh
        # test constants substituted into the shared candidate circuit)
        # while huge swaths of the gate structure repeat literal-for-
        # literal.  A Tseitin output is functionally determined by its
        # inputs and its defining clauses are never retracted (push/pop
        # is activation-literal based), so reusing the output literal is
        # always sound and emits each distinct gate exactly once.
        self._gate_cache: Dict[tuple, int] = {}
        self.gate_cache_hits = 0

    # ------------------------------------------------------------------
    # Literal helpers
    # ------------------------------------------------------------------
    def fresh_lit(self) -> int:
        return 2 * self.solver.new_var()

    def true_lit(self) -> int:
        if self._true_lit is None:
            self._true_lit = self.fresh_lit()
            self.solver.add_clause([self._true_lit])
        return self._true_lit

    def false_lit(self) -> int:
        return neg(self.true_lit())

    def const_lit(self, value: bool) -> int:
        return self.true_lit() if value else self.false_lit()

    def _lit_const(self, l: int) -> bool | None:
        """True/False when ``l`` is the constant literal (or its
        negation); None otherwise.  Never allocates the constant — before
        it exists, no literal can be it."""
        t = self._true_lit
        if t is None:
            return None
        if l == t:
            return True
        if l == (t ^ 1):
            return False
        return None

    # ------------------------------------------------------------------
    # Gate encodings
    # ------------------------------------------------------------------
    def _and_gate(self, inputs: List[int]) -> int:
        if self._fold:
            seen: set = set()
            folded: List[int] = []
            for l in inputs:
                c = self._lit_const(l)
                if c is False or (l ^ 1) in seen:
                    return self.false_lit()
                if c is True or l in seen:
                    continue
                seen.add(l)
                folded.append(l)
            inputs = folded
        else:
            inputs = [l for l in inputs]
        if not inputs:
            return self.true_lit()
        if len(inputs) == 1:
            return inputs[0]
        key = ("and", tuple(sorted(inputs)))
        hit = self._gate_cache.get(key) if self._use_gate_cache else None
        if hit is not None:
            self.gate_cache_hits += 1
            return hit
        out = self.fresh_lit()
        add = self.solver.add_clause
        for l in inputs:
            add([neg(out), l])
        add([out] + [neg(l) for l in inputs])
        if self._use_gate_cache:
            self._gate_cache[key] = out
        return out

    def _xor_gate(self, a: int, b: int) -> int:
        if self._fold:
            ca = self._lit_const(a)
            cb = self._lit_const(b)
            if ca is not None:
                if cb is not None:
                    return self.const_lit(ca != cb)
                return neg(b) if ca else b
            if cb is not None:
                return neg(a) if cb else a
            if a == b:
                return self.false_lit()
            if a == (b ^ 1):
                return self.true_lit()
        key = ("xor", a, b) if a <= b else ("xor", b, a)
        hit = self._gate_cache.get(key) if self._use_gate_cache else None
        if hit is not None:
            self.gate_cache_hits += 1
            return hit
        out = self.fresh_lit()
        add = self.solver.add_clause
        add([neg(out), a, b])
        add([neg(out), neg(a), neg(b)])
        add([out, neg(a), b])
        add([out, a, neg(b)])
        if self._use_gate_cache:
            self._gate_cache[key] = out
        return out

    def _ite_gate(self, c: int, t: int, e: int) -> int:
        if self._fold:
            cc = self._lit_const(c)
            if cc is not None:
                return t if cc else e
            if t == e:
                return t
            ct = self._lit_const(t)
            ce = self._lit_const(e)
            if ct is True:
                # (c ? 1 : e)  =  c ∨ e
                return self._or_gate_list([c, e])
            if ct is False:
                # (c ? 0 : e)  =  ¬c ∧ e
                return self._and_gate([neg(c), e])
            if ce is True:
                return self._or_gate_list([neg(c), t])
            if ce is False:
                return self._and_gate([c, t])
        # Canonical form: condition stored with positive polarity.
        key = ("ite", c, t, e) if not c & 1 else ("ite", c ^ 1, e, t)
        hit = self._gate_cache.get(key) if self._use_gate_cache else None
        if hit is not None:
            self.gate_cache_hits += 1
            return hit
        out = self.fresh_lit()
        add = self.solver.add_clause
        add([neg(c), neg(t), out])
        add([neg(c), t, neg(out)])
        add([c, neg(e), out])
        add([c, e, neg(out)])
        if self._use_gate_cache:
            self._gate_cache[key] = out
        return out

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        s = self._xor_gate(self._xor_gate(a, b), cin)
        carry = self._or_gate_list(
            [self._and_gate([a, b]), self._and_gate([a, cin]), self._and_gate([b, cin])]
        )
        return s, carry

    def _or_gate_list(self, inputs: List[int]) -> int:
        if self._fold:
            seen: set = set()
            folded: List[int] = []
            for l in inputs:
                c = self._lit_const(l)
                if c is True or (l ^ 1) in seen:
                    return self.true_lit()
                if c is False or l in seen:
                    continue
                seen.add(l)
                folded.append(l)
            inputs = folded
        if not inputs:
            return self.false_lit()
        if len(inputs) == 1:
            return inputs[0]
        key = ("or", tuple(sorted(inputs)))
        hit = self._gate_cache.get(key) if self._use_gate_cache else None
        if hit is not None:
            self.gate_cache_hits += 1
            return hit
        out = self.fresh_lit()
        add = self.solver.add_clause
        for l in inputs:
            add([neg(l), out])
        add([neg(out)] + inputs)
        if self._use_gate_cache:
            self._gate_cache[key] = out
        return out

    # ------------------------------------------------------------------
    # Term encoding
    # ------------------------------------------------------------------
    def bool_lit(self, term: Term) -> int:
        """The SAT literal representing a Bool term."""
        if term.sort != BOOL:
            raise TypeError(f"bool_lit on non-Bool term {term!r}")
        hit = self._bool_cache.get(term)
        if hit is not None:
            return hit
        op = term.op
        if op == "const":
            lit = self.const_lit(term.extra[0])
        elif op == "var":
            lit = self.fresh_lit()
        elif op == "not":
            lit = neg(self.bool_lit(term.args[0]))
        elif op == "and":
            lit = self._and_gate([self.bool_lit(a) for a in term.args])
        elif op == "or":
            lit = self._or_gate_list([self.bool_lit(a) for a in term.args])
        elif op == "xor":
            lit = self._xor_gate(
                self.bool_lit(term.args[0]), self.bool_lit(term.args[1])
            )
        elif op == "eq":
            lit = self._encode_eq(term.args[0], term.args[1])
        elif op == "ult":
            lit = self._encode_ult(term.args[0], term.args[1])
        else:
            raise NotImplementedError(f"bool_lit: op {op}")
        self._bool_cache[term] = lit
        return lit

    def bv_lits(self, term: Term) -> List[int]:
        """The SAT literals (LSB-first) representing a BitVec term."""
        if term.sort == BOOL:
            raise TypeError(f"bv_lits on Bool term {term!r}")
        hit = self._bv_cache.get(term)
        if hit is not None:
            return hit
        op = term.op
        if op == "const":
            value = term.extra[0]
            lits = [self.const_lit(bool((value >> i) & 1)) for i in range(term.width)]
        elif op == "var":
            lits = [self.fresh_lit() for _ in range(term.width)]
        elif op == "bvnot":
            lits = [neg(l) for l in self.bv_lits(term.args[0])]
        elif op in ("bvand", "bvor", "bvxor"):
            a = self.bv_lits(term.args[0])
            b = self.bv_lits(term.args[1])
            if op == "bvand":
                lits = [self._and_gate([x, y]) for x, y in zip(a, b)]
            elif op == "bvor":
                lits = [self._or_gate_list([x, y]) for x, y in zip(a, b)]
            else:
                lits = [self._xor_gate(x, y) for x, y in zip(a, b)]
        elif op == "bvadd":
            a = self.bv_lits(term.args[0])
            b = self.bv_lits(term.args[1])
            lits = []
            carry = self.false_lit()
            for x, y in zip(a, b):
                s, carry = self._full_adder(x, y, carry)
                lits.append(s)
        elif op == "bvsub":
            a = self.bv_lits(term.args[0])
            b = self.bv_lits(term.args[1])
            lits = []
            carry = self.true_lit()  # a + ~b + 1
            for x, y in zip(a, b):
                s, carry = self._full_adder(x, neg(y), carry)
                lits.append(s)
        elif op == "shl":
            a = self.bv_lits(term.args[0])
            k = term.extra[0]
            lits = [self.false_lit()] * k + a[: term.width - k]
        elif op == "lshr":
            a = self.bv_lits(term.args[0])
            k = term.extra[0]
            lits = a[k:] + [self.false_lit()] * k
        elif op == "concat":
            # First arg is most significant: reverse for LSB-first layout.
            lits = []
            for part in reversed(term.args):
                lits.extend(self.bv_lits(part))
        elif op == "extract":
            hi, lo = term.extra
            lits = self.bv_lits(term.args[0])[lo : hi + 1]
        elif op == "ite":
            c = self.bool_lit(term.args[0])
            t = self.bv_lits(term.args[1])
            e = self.bv_lits(term.args[2])
            lits = [self._ite_gate(c, x, y) for x, y in zip(t, e)]
        else:
            raise NotImplementedError(f"bv_lits: op {op}")
        self._bv_cache[term] = lits
        return lits

    def _encode_eq(self, a: Term, b: Term) -> int:
        la = self.bv_lits(a)
        lb = self.bv_lits(b)
        diffs = [self._xor_gate(x, y) for x, y in zip(la, lb)]
        return neg(self._or_gate_list(diffs))

    def _encode_ult(self, a: Term, b: Term) -> int:
        la = self.bv_lits(a)
        lb = self.bv_lits(b)
        # Ripple from LSB: lt_i = (~a_i & b_i) | (a_i==b_i) & lt_{i-1}
        lt = self.false_lit()
        for x, y in zip(la, lb):
            strictly = self._and_gate([neg(x), y])
            equal = neg(self._xor_gate(x, y))
            lt = self._or_gate_list([strictly, self._and_gate([equal, lt])])
        return lt

    # ------------------------------------------------------------------
    # Assertions and model extraction
    # ------------------------------------------------------------------
    def assert_term(self, term: Term, guard_lits: List[int] | None = None) -> None:
        """Assert a Bool term, optionally guarded: guard ∧ ... → term.

        Top-level conjunctions are asserted conjunct-by-conjunct and
        top-level disjunctions become a single clause over their arguments'
        literals — avoiding one Tseitin auxiliary variable per asserted
        constraint, which matters a great deal for the one-hot-heavy
        synthesis encodings."""
        fault_point("bitblast")
        prefix = [neg(g) for g in guard_lits] if guard_lits else []
        if term.op == "and":
            for arg in term.args:
                self.assert_term(arg, guard_lits)
            return
        if term.op == "or":
            clause = prefix + [self.bool_lit(a) for a in term.args]
            self.solver.add_clause(clause)
            return
        self.solver.add_clause(prefix + [self.bool_lit(term)])

    def model_bool(self, term: Term) -> bool:
        return self.solver.model_value(self.bool_lit(term))

    def model_bv(self, term: Term) -> int:
        value = 0
        for i, lit in enumerate(self.bv_lits(term)):
            if self.solver.model_value(lit):
                value |= 1 << i
        return value
