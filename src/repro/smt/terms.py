"""Term layer of the SMT substrate: Booleans and fixed-width bit-vectors.

This module provides a small, z3py-flavoured expression API (``BitVec``,
``BitVecVal``, ``Bool``, ``And``, ``If``, ``Extract`` ...) over immutable,
hash-consed terms with aggressive constant folding.  Terms are bit-blasted
to CNF by :mod:`repro.smt.bitblast` and solved with the CDCL solver in
:mod:`repro.smt.sat`.

The paper's ParserHawk builds all of its synthesis and verification formulas
in z3py; this layer is the drop-in substrate for the same role.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Union

# ---------------------------------------------------------------------------
# Sorts
# ---------------------------------------------------------------------------

BOOL = "Bool"


class Term:
    """An immutable expression node.

    ``sort`` is either the string ``"Bool"`` or an integer bit-width.
    Terms are interned: structurally identical terms are the same object,
    which makes equality checks and bit-blasting caches cheap.
    """

    __slots__ = ("op", "args", "extra", "sort", "_hash", "_neg")

    _interned: Dict[tuple, "Term"] = {}

    def __new__(
        cls,
        op: str,
        args: Tuple["Term", ...],
        extra: tuple,
        sort: Union[str, int],
    ) -> "Term":
        key = (op, args, extra, sort)
        found = cls._interned.get(key)
        if found is not None:
            return found
        self = object.__new__(cls)
        self.op = op
        self.args = args
        self.extra = extra
        self.sort = sort
        self._hash = hash(key)
        # Memoized negation (filled in by Not); the synthesis encodings
        # negate the same guard terms tens of thousands of times per
        # compile, so one slot beats re-interning a ("not", ...) key.
        self._neg = None
        cls._interned[key] = self
        return self

    # -- generic helpers -------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    @property
    def width(self) -> int:
        if self.sort == BOOL:
            raise TypeError("width of a Bool term")
        return self.sort

    @property
    def is_bool(self) -> bool:
        return self.sort == BOOL

    @property
    def is_const(self) -> bool:
        return self.op == "const"

    @property
    def value(self) -> int:
        if not self.is_const:
            raise TypeError(f"not a constant: {self!r}")
        return self.extra[0]

    @property
    def name(self) -> str:
        if self.op != "var":
            raise TypeError(f"not a variable: {self!r}")
        return self.extra[0]

    # -- operator overloading --------------------------------------------
    # NOTE: unlike z3py, ``==`` is *not* overloaded to build equations.
    # Terms are interned, so Python equality is structural equality via
    # identity, which keeps sets/dicts/`in` checks sound.  Build equations
    # with the explicit :func:`Eq`.
    def structurally_same(self, other: "Term") -> bool:
        """Identity check (terms are interned, so identity == structure)."""
        return self is other

    def __and__(self, other):
        other = _coerce(other, self.sort)
        return BvAnd(self, other) if not self.is_bool else And(self, other)

    def __rand__(self, other):
        return self.__and__(other)

    def __or__(self, other):
        other = _coerce(other, self.sort)
        return BvOr(self, other) if not self.is_bool else Or(self, other)

    def __ror__(self, other):
        return self.__or__(other)

    def __xor__(self, other):
        other = _coerce(other, self.sort)
        return BvXor(self, other) if not self.is_bool else Xor(self, other)

    def __invert__(self):
        return Not(self) if self.is_bool else BvNot(self)

    def __add__(self, other):
        return BvAdd(self, _coerce(other, self.sort))

    def __radd__(self, other):
        return BvAdd(_coerce(other, self.sort), self)

    def __sub__(self, other):
        return BvSub(self, _coerce(other, self.sort))

    def __rsub__(self, other):
        return BvSub(_coerce(other, self.sort), self)

    def __lshift__(self, amount: int):
        return Shl(self, amount)

    def __rshift__(self, amount: int):
        return Lshr(self, amount)

    def __repr__(self) -> str:
        return _render(self)


def _render(t: Term, depth: int = 0) -> str:
    if depth > 6:
        return "..."
    if t.op == "var":
        return t.extra[0]
    if t.op == "const":
        if t.sort == BOOL:
            return "true" if t.extra[0] else "false"
        return f"{t.extra[0]}#{t.sort}"
    if t.op == "extract":
        hi, lo = t.extra
        return f"{_render(t.args[0], depth + 1)}[{hi}:{lo}]"
    inner = " ".join(_render(a, depth + 1) for a in t.args)
    extra = "".join(f" {e}" for e in t.extra)
    return f"({t.op}{extra} {inner})"


def _coerce(value, sort) -> Term:
    if isinstance(value, Term):
        return value
    if sort == BOOL:
        return BoolVal(bool(value))
    return BitVecVal(int(value), sort)


_MASKS: Dict[int, int] = {}


def _mask(width: int) -> int:
    m = _MASKS.get(width)
    if m is None:
        m = (1 << width) - 1
        _MASKS[width] = m
    return m


# ---------------------------------------------------------------------------
# Constructors: atoms
# ---------------------------------------------------------------------------

def Bool(name: str) -> Term:
    """A fresh (named) Boolean variable."""
    return Term("var", (), (name,), BOOL)


def BoolVal(value: bool) -> Term:
    return Term("const", (), (bool(value),), BOOL)


TRUE = BoolVal(True)
FALSE = BoolVal(False)


def BitVec(name: str, width: int) -> Term:
    """A named bit-vector variable of the given width."""
    if width <= 0:
        raise ValueError(f"bit-vector width must be positive, got {width}")
    return Term("var", (), (name,), width)


def BitVecVal(value: int, width: int) -> Term:
    if width <= 0:
        raise ValueError(f"bit-vector width must be positive, got {width}")
    return Term("const", (), (value & _mask(width),), width)


# ---------------------------------------------------------------------------
# Boolean connectives (with folding)
# ---------------------------------------------------------------------------

def Not(a: Term) -> Term:
    try:
        neg = a._neg
    except AttributeError:
        _expect_bool(a, "Not")  # raises TypeError for non-Term inputs
        raise
    if neg is not None:
        return neg
    _expect_bool(a, "Not")
    if a.is_const:
        neg = BoolVal(not a.value)
    elif a.op == "not":
        neg = a.args[0]
    else:
        neg = Term("not", (a,), (), BOOL)
    a._neg = neg
    neg._neg = a
    return neg


def And(*args) -> Term:
    terms = _flatten_bool(args, "and")
    seen = set()
    out = []
    for t in terms:
        if t.is_const:
            if not t.value:
                return FALSE
            continue
        if t not in seen:
            seen.add(t)
            out.append(t)
    # Complementary-pair folding without constructing Not(t) per element:
    # if both x and ¬x survived dedup, the iteration reaches the "not"
    # node and finds its argument in `seen`.
    for t in out:
        if t.op == "not" and t.args[0] in seen:
            return FALSE
    if not out:
        return TRUE
    if len(out) == 1:
        return out[0]
    return Term("and", tuple(out), (), BOOL)


def Or(*args) -> Term:
    terms = _flatten_bool(args, "or")
    seen = set()
    out = []
    for t in terms:
        if t.is_const:
            if t.value:
                return TRUE
            continue
        if t not in seen:
            seen.add(t)
            out.append(t)
    for t in out:
        if t.op == "not" and t.args[0] in seen:
            return TRUE
    if not out:
        return FALSE
    if len(out) == 1:
        return out[0]
    return Term("or", tuple(out), (), BOOL)


def Xor(a: Term, b: Term) -> Term:
    _expect_bool(a, "Xor")
    _expect_bool(b, "Xor")
    if a.is_const and b.is_const:
        return BoolVal(a.value != b.value)
    if a.is_const:
        return Not(b) if a.value else b
    if b.is_const:
        return Not(a) if b.value else a
    if a is b:
        return FALSE
    return Term("xor", (a, b), (), BOOL)


def Implies(a: Term, b: Term) -> Term:
    return Or(Not(a), b)


def Iff(a: Term, b: Term) -> Term:
    return Not(Xor(a, b))


def _flatten_bool(args: Sequence, op: str):
    out = []
    stack = list(args)
    stack.reverse()
    while stack:
        item = stack.pop()
        if isinstance(item, (list, tuple)):
            stack.extend(reversed(item))
            continue
        if isinstance(item, bool):
            item = BoolVal(item)
        if not isinstance(item, Term) or not item.is_bool:
            raise TypeError(f"{op} expects Bool terms, got {item!r}")
        if item.op == op:
            out.extend(item.args)
        else:
            out.append(item)
    return out


def _expect_bool(t: Term, op: str) -> None:
    if not isinstance(t, Term) or not t.is_bool:
        raise TypeError(f"{op} expects a Bool term, got {t!r}")


def _expect_bv(t: Term, op: str) -> None:
    if not isinstance(t, Term) or t.is_bool:
        raise TypeError(f"{op} expects a BitVec term, got {t!r}")


def _expect_same_width(a: Term, b: Term, op: str) -> None:
    _expect_bv(a, op)
    _expect_bv(b, op)
    if a.width != b.width:
        raise TypeError(f"{op}: width mismatch {a.width} vs {b.width}")


# ---------------------------------------------------------------------------
# Bit-vector operations (with folding)
# ---------------------------------------------------------------------------

def BvNot(a: Term) -> Term:
    _expect_bv(a, "BvNot")
    if a.is_const:
        return BitVecVal(~a.value, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return Term("bvnot", (a,), (), a.width)


def _bv_binary(op: str, a: Term, b: Term, fold) -> Term:
    _expect_same_width(a, b, op)
    if a.is_const and b.is_const:
        return BitVecVal(fold(a.value, b.value), a.width)
    return Term(op, (a, b), (), a.width)


def BvAnd(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "bvand")
    if a.is_const and a.value == 0:
        return a
    if b.is_const and b.value == 0:
        return b
    if a.is_const and a.value == _mask(a.width):
        return b
    if b.is_const and b.value == _mask(b.width):
        return a
    if a is b:
        return a
    return _bv_binary("bvand", a, b, lambda x, y: x & y)


def BvOr(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "bvor")
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return a
    return _bv_binary("bvor", a, b, lambda x, y: x | y)


def BvXor(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "bvxor")
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return BitVecVal(0, a.width)
    return _bv_binary("bvxor", a, b, lambda x, y: x ^ y)


def BvAdd(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "bvadd")
    if a.is_const and a.value == 0:
        return b
    if b.is_const and b.value == 0:
        return a
    return _bv_binary("bvadd", a, b, lambda x, y: x + y)


def BvSub(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "bvsub")
    if b.is_const and b.value == 0:
        return a
    if a is b:
        return BitVecVal(0, a.width)
    return _bv_binary("bvsub", a, b, lambda x, y: x - y)


def Shl(a: Term, amount: int) -> Term:
    _expect_bv(a, "Shl")
    amount = int(amount)
    if amount == 0:
        return a
    if amount >= a.width:
        return BitVecVal(0, a.width)
    if a.is_const:
        return BitVecVal(a.value << amount, a.width)
    return Term("shl", (a,), (amount,), a.width)


def Lshr(a: Term, amount: int) -> Term:
    _expect_bv(a, "Lshr")
    amount = int(amount)
    if amount == 0:
        return a
    if amount >= a.width:
        return BitVecVal(0, a.width)
    if a.is_const:
        return BitVecVal(a.value >> amount, a.width)
    return Term("lshr", (a,), (amount,), a.width)


def Concat(*parts) -> Term:
    """Concatenate bit-vectors; the FIRST argument holds the MOST
    significant bits (matching z3/SMT-LIB convention)."""
    flat = []
    for p in parts:
        if isinstance(p, (list, tuple)):
            flat.extend(p)
        else:
            flat.append(p)
    if not flat:
        raise ValueError("Concat of nothing")
    for p in flat:
        _expect_bv(p, "Concat")
    if len(flat) == 1:
        return flat[0]
    if all(p.is_const for p in flat):
        value = 0
        width = 0
        for p in flat:
            value = (value << p.width) | p.value
            width += p.width
        return BitVecVal(value, width)
    width = sum(p.width for p in flat)
    return Term("concat", tuple(flat), (), width)


def Extract(hi: int, lo: int, a: Term) -> Term:
    """Bits a[hi:lo] inclusive (z3 convention), width hi-lo+1."""
    _expect_bv(a, "Extract")
    if not 0 <= lo <= hi < a.width:
        raise ValueError(f"Extract({hi}, {lo}) out of range for width {a.width}")
    if lo == 0 and hi == a.width - 1:
        return a
    if a.is_const:
        return BitVecVal(a.value >> lo, hi - lo + 1)
    if a.op == "extract":
        inner_hi, inner_lo = a.extra
        return Extract(inner_lo + hi, inner_lo + lo, a.args[0])
    if a.op == "concat":
        # Push extraction through concatenation when it stays in one part.
        offset = a.width
        for part in a.args:
            offset -= part.width
            if lo >= offset and hi < offset + part.width:
                return Extract(hi - offset, lo - offset, part)
    return Term("extract", (a,), (hi, lo), hi - lo + 1)


def ZeroExt(extra_bits: int, a: Term) -> Term:
    _expect_bv(a, "ZeroExt")
    if extra_bits == 0:
        return a
    if extra_bits < 0:
        raise ValueError("ZeroExt needs a non-negative bit count")
    return Concat(BitVecVal(0, extra_bits), a)


# ---------------------------------------------------------------------------
# Relations and conditionals
# ---------------------------------------------------------------------------

def Eq(a: Term, b: Term) -> Term:
    if isinstance(a, Term) and isinstance(b, (int, bool)):
        b = _coerce(b, a.sort)
    if isinstance(b, Term) and isinstance(a, (int, bool)):
        a = _coerce(a, b.sort)
    if a.sort != b.sort:
        raise TypeError(f"Eq: sort mismatch {a.sort} vs {b.sort}")
    if a is b:
        return TRUE
    if a.is_bool:
        return Iff(a, b)
    if a.is_const and b.is_const:
        return BoolVal(a.value == b.value)
    return Term("eq", (a, b), (), BOOL)


def ULT(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "ULT")
    if a.is_const and b.is_const:
        return BoolVal(a.value < b.value)
    if b.is_const and b.value == 0:
        return FALSE
    if a is b:
        return FALSE
    return Term("ult", (a, b), (), BOOL)


def ULE(a: Term, b: Term) -> Term:
    _expect_same_width(a, b, "ULE")
    if a.is_const and b.is_const:
        return BoolVal(a.value <= b.value)
    if a.is_const and a.value == 0:
        return TRUE
    if a is b:
        return TRUE
    return Not(ULT(b, a))


def UGT(a: Term, b: Term) -> Term:
    return ULT(b, a)


def UGE(a: Term, b: Term) -> Term:
    return ULE(b, a)


def If(cond: Term, then_t, else_t) -> Term:
    _expect_bool(cond, "If")
    if isinstance(then_t, Term):
        else_t = _coerce(else_t, then_t.sort)
    elif isinstance(else_t, Term):
        then_t = _coerce(then_t, else_t.sort)
    else:
        raise TypeError("If needs at least one Term branch")
    if then_t.sort != else_t.sort:
        raise TypeError(f"If: sort mismatch {then_t.sort} vs {else_t.sort}")
    if cond.is_const:
        return then_t if cond.value else else_t
    if then_t is else_t:
        return then_t
    if then_t.sort == BOOL:
        return Or(And(cond, then_t), And(Not(cond), else_t))
    return Term("ite", (cond, then_t, else_t), (), then_t.sort)


def BoolToBv(cond: Term) -> Term:
    """A 1-bit vector that is 1 exactly when ``cond`` holds."""
    return If(cond, BitVecVal(1, 1), BitVecVal(0, 1))


def PopCountAtMost(bits: Sequence[Term], k: int) -> Term:
    """True when at most ``k`` of the Bool terms are true (small-n encoding)."""
    bits = list(bits)
    if k >= len(bits):
        return TRUE
    if k < 0:
        return FALSE
    # Sequential counter would be smaller, but benchmark sizes are tiny.
    import itertools

    violations = []
    for combo in itertools.combinations(bits, k + 1):
        violations.append(And(*combo))
    return Not(Or(*violations))


_FRESH_COUNTER = [0]


def _fresh_bool(prefix: str) -> Term:
    _FRESH_COUNTER[0] += 1
    return Bool(f"__{prefix}{_FRESH_COUNTER[0]}")


# AtMostOne over the same input tuple recurs constantly in the synthesis
# encodings (every CEGIS iteration re-asserts the selector one-hots), and
# the large-input encoding mints fresh auxiliary variables per call —
# identical inputs would otherwise blow up the variable count linearly in
# the iteration count.  Memoizing on the interned input terms returns the
# exact same term (and the same auxiliaries), which downstream hash-consed
# bit-blasting then encodes exactly once.  Re-asserting a returned term is
# idempotent, so sharing auxiliaries keeps the documented positive-
# assertion-only contract sound.
_AMO_CACHE: Dict[Tuple["Term", ...], "Term"] = {}


def AtMostOne(bits: Sequence[Term]) -> Term:
    """At most one of the Bool terms holds.

    NOTE: the large-input encoding introduces implication-defined auxiliary
    variables and is only sound when the result is asserted POSITIVELY
    (top-level constraint); do not nest it under negation.

    Pairwise encoding for small inputs; the sequential (commander-chain)
    encoding with fresh auxiliary variables for larger ones, keeping the
    clause count linear — essential for the synthesis encodings' wide
    one-hot selectors."""
    bits = list(bits)
    key = tuple(bits)
    hit = _AMO_CACHE.get(key)
    if hit is not None:
        return hit
    result = _at_most_one(bits)
    _AMO_CACHE[key] = result
    return result


def _at_most_one(bits: Sequence[Term]) -> Term:
    n = len(bits)
    if n <= 1:
        return TRUE
    if n <= 6:
        pairs = []
        for i in range(n):
            for j in range(i + 1, n):
                pairs.append(Or(Not(bits[i]), Not(bits[j])))
        return And(*pairs)
    parts = []
    prev = None  # a_i: some of bits[0..i] is true
    for i, x in enumerate(bits[:-1]):
        aux = _fresh_bool("amo")
        parts.append(Or(Not(x), aux))
        if prev is not None:
            parts.append(Or(Not(prev), aux))
            parts.append(Or(Not(x), Not(prev)))
        prev = aux
    assert prev is not None
    parts.append(Or(Not(bits[-1]), Not(prev)))
    return And(*parts)


def ExactlyOne(bits: Sequence[Term]) -> Term:
    """True when exactly one of the Bool terms holds (one-hot)."""
    bits = list(bits)
    if not bits:
        return FALSE
    return And(Or(*bits), AtMostOne(bits))


# ---------------------------------------------------------------------------
# Concrete evaluation (used by tests and by model completion)
# ---------------------------------------------------------------------------

def evaluate(term: Term, env: Dict[Term, int], cache: Optional[dict] = None):
    """Evaluate a term under an environment mapping variable terms to
    Python ints/bools.  Returns an int (BitVec) or bool (Bool)."""
    if cache is None:
        cache = {}
    hit = cache.get(term)
    if hit is not None:
        return hit
    op = term.op
    if op == "const":
        result = term.extra[0]
    elif op == "var":
        if term not in env:
            raise KeyError(f"no value for variable {term!r}")
        result = env[term]
        if term.sort != BOOL:
            result = int(result) & _mask(term.width)
        else:
            result = bool(result)
    else:
        args = [evaluate(a, env, cache) for a in term.args]
        if op == "not":
            result = not args[0]
        elif op == "and":
            result = all(args)
        elif op == "or":
            result = any(args)
        elif op == "xor":
            result = args[0] != args[1]
        elif op == "eq":
            result = args[0] == args[1]
        elif op == "ult":
            result = args[0] < args[1]
        elif op == "bvnot":
            result = ~args[0] & _mask(term.width)
        elif op == "bvand":
            result = args[0] & args[1]
        elif op == "bvor":
            result = args[0] | args[1]
        elif op == "bvxor":
            result = args[0] ^ args[1]
        elif op == "bvadd":
            result = (args[0] + args[1]) & _mask(term.width)
        elif op == "bvsub":
            result = (args[0] - args[1]) & _mask(term.width)
        elif op == "shl":
            result = (args[0] << term.extra[0]) & _mask(term.width)
        elif op == "lshr":
            result = args[0] >> term.extra[0]
        elif op == "concat":
            result = 0
            for sub, val in zip(term.args, args):
                result = (result << sub.width) | val
        elif op == "extract":
            hi, lo = term.extra
            result = (args[0] >> lo) & _mask(hi - lo + 1)
        elif op == "ite":
            result = args[1] if args[0] else args[2]
        else:
            raise NotImplementedError(f"evaluate: op {op}")
    cache[term] = result
    return result


def collect_vars(
    term: Term, into: Optional[set] = None, seen: Optional[set] = None
) -> set:
    """All variable terms appearing in ``term``.

    ``seen`` may be a caller-owned set that persists across calls: terms
    are interned, so a term already in ``seen`` was fully scanned before
    and contributes nothing new — an incremental caller (the Solver
    facade, whose assertions share most of their sub-DAG) skips re-walking
    the shared structure on every assert."""
    if into is None:
        into = set()
    if seen is None:
        seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t in seen:
            continue
        seen.add(t)
        if t.op == "var":
            into.add(t)
        stack.extend(t.args)
    return into
