"""The compile service: admission, coalescing, retry, recovery.

:class:`CompileService` turns :class:`~repro.core.compiler.ParserHawkCompiler`
into a robust multi-tenant job runner.  One instance owns a service
directory::

    <root>/journal/jobs/*.json    the crash-safe job journal
    <root>/cache/                 the shared compile cache
    <root>/ckpt/<key16>/          per-compile-key CEGIS checkpoints

and a pool of worker *threads* (the compiler already fans out its own
portfolio subprocesses; service workers spend their time waiting on
them, so threads are the right grain and the journal/cache/checkpoint
state stays in one process).

Robustness properties, and where they live:

* **backpressure** — :class:`~repro.serve.admission.AdmissionQueue`
  bounds queued+running primaries and per-tenant live jobs; rejected
  submissions carry ``retry_after``;
* **coalescing** — identical ``compile_key``\\ s share one in-flight
  compile; waiters are journaled with ``coalesced_into`` and copy the
  primary's terminal state (counted as ``serve.coalesced``);
* **classified retry** — transient faults (worker crash, broken pool,
  solver resource exhaustion — :func:`repro.resilience.retry.transient_fault`,
  plus ``STATUS_FAULT`` results) re-run under the service
  :class:`~repro.resilience.retry.RetryPolicy` with deterministic
  jittered backoff; infeasible/invalid/timeout outcomes never retry;
* **circuit breaker** — repeatedly-faulting ``(tenant, compile_key)``
  pairs are rejected for a cooldown
  (:class:`~repro.serve.breaker.CircuitBreaker`);
* **deadline propagation** — a job deadline caps the compiler's
  ``total_max_seconds`` on every attempt; an already-expired deadline
  terminates the job without launching;
* **graceful degradation** — cache hits answer at submit time without
  burning a compile slot; after exhausted retries the cache is
  consulted once more (another process may have finished the same key)
  and a hit is served marked ``degraded`` (``serve.stale_served``);
* **crash safety** — every accepted job is journaled before its ack;
  :meth:`recover` re-adopts non-terminal jobs on restart, resuming
  their CEGIS checkpoints (``resume=True`` + per-key checkpoint dirs);
* **fleet mode** (``owner_id`` set) — N service processes share one
  root, coordinated by per-job leases (:mod:`repro.serve.lease`): every
  locally-owned job's lease is heartbeaten by a dedicated thread, every
  journal write carries the lease's fencing token (stale owners are
  fenced into no-ops), :meth:`reap` steals expired leases and resumes
  the jobs from their checkpoints, and a graceful :meth:`shutdown`
  releases held leases so the rest of the fleet reclaims unfinished
  work immediately instead of waiting out the TTL.

Threading note: :class:`~repro.obs.Tracer` span trees are **not**
thread-safe, so every worker attempt and every submit runs under its
own private tracer whose counters are merged into the service-owned
:class:`~repro.obs.CounterRegistry` afterwards.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from ..core.compiler import ParserHawkCompiler
from ..core.result import (
    STATUS_FAULT,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from ..hw.device import DeviceProfile
from ..obs import CounterRegistry, Tracer, use_tracer
from ..persist.cache import CompileCache
from ..persist.serialize import result_to_doc
from ..resilience.injection import fault_point
from ..resilience.retry import RetryPolicy, transient_fault
from .admission import AdmissionQueue, BreakerOpen, Rejected
from .breaker import CircuitBreaker
from .job import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    make_job,
)
from .journal import (
    JobJournal,
    JournalWriteError,
    WRITE_FENCED,
)
from .lease import DEFAULT_TTL, Lease, LeaseManager
from .reaper import Reaper

# Service-level retry policy for transient attempt failures.  Short
# base delay: the per-key checkpoint makes a re-run cheap, and the
# deterministic jitter de-synchronizes concurrent retriers.
SERVICE_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=2.0,
    jitter=0.25, seed=0,
)


class CompileService:
    """Admission-controlled, journaled compile-as-a-service."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        workers: int = 2,
        capacity: int = 32,
        per_tenant: int = 8,
        retry_policy: RetryPolicy = SERVICE_RETRY_POLICY,
        breaker: Optional[CircuitBreaker] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        use_cache: bool = True,
        sleep: Callable[[float], None] = time.sleep,
        owner_id: Optional[str] = None,
        lease_ttl: float = DEFAULT_TTL,
    ) -> None:
        self.root = Path(root)
        self.journal = JobJournal(self.root / "journal")
        self.owner_id = owner_id
        self.leases: Optional[LeaseManager] = (
            LeaseManager(self.root / "leases", owner_id, ttl=lease_ttl)
            if owner_id
            else None
        )
        self._reaper: Optional[Reaper] = (
            Reaper(self.journal, self.leases, self.adopt)
            if self.leases is not None
            else None
        )
        self.cache: Optional[CompileCache] = (
            CompileCache(self.root / "cache") if use_cache else None
        )
        self.admission = AdmissionQueue(
            capacity=capacity, per_tenant=per_tenant, workers=workers
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
        )
        self.retry_policy = retry_policy
        self.registry = CounterRegistry()
        self._sleep = sleep
        self._num_workers = max(1, workers)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[str] = deque()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}      # compile_key -> primary id
        self._waiters: Dict[str, List[str]] = {} # primary id -> waiter ids
        self._events: Dict[str, threading.Event] = {}
        self._threads: List[threading.Thread] = []
        self._stopping = False
        # Fleet bookkeeping: leases we hold, and jobs whose lease we
        # lost mid-flight (their writes are fenced; workers abandon
        # them instead of finishing).
        self._held: Dict[str, Lease] = {}
        self._abandoned: set = set()
        self._hb_thread: Optional[threading.Thread] = None
        self._hb_stop = threading.Event()

    # -- counter plumbing ----------------------------------------------
    @contextmanager
    def _capture(self, name: str):
        """Run a block under a private tracer; merge its counters into
        the service registry (span trees are per-thread, counters are
        the shared truth)."""
        tracer = Tracer(name)
        try:
            with use_tracer(tracer):
                yield tracer
        finally:
            self.registry.merge(tracer.registry.snapshot())

    def _count(self, name: str, delta: Union[int, float] = 1) -> None:
        self.registry.add(name, delta)

    # -- directories ---------------------------------------------------
    def checkpoint_dir_for(self, compile_key: str) -> Path:
        return self.root / "ckpt" / compile_key[:16]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> int:
        """Recover journaled work and start the worker pool.  Returns
        how many jobs were re-adopted.

        Single-node mode replays the whole journal (:meth:`recover`);
        fleet mode instead runs one reaper sweep — only jobs whose
        lease this instance can legitimately take are adopted, the rest
        belong to live peers — and starts the heartbeat thread.
        """
        with self._lock:
            self._stopping = False
        if self.leases is None:
            adopted = self.recover()
        else:
            adopted = self.reap()
            self._hb_stop = threading.Event()
            self._hb_thread = threading.Thread(
                target=self._heartbeat_loop,
                name=f"serve-heartbeat-{self.owner_id}",
                daemon=True,
            )
            self._hb_thread.start()
        for index in range(self._num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return adopted

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and (optionally) join the workers.
        Jobs still queued stay journaled and are re-adopted by the next
        :meth:`start` — shutdown never loses accepted work.

        In fleet mode a waited shutdown is a *graceful drain*: once the
        workers have finished (or the timeout passed), every still-held
        lease is released so peers reclaim the unfinished jobs
        immediately instead of waiting out the heartbeat TTL.
        """
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify_all()
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(remaining)
        self._threads = []
        if self.leases is not None:
            self._hb_stop.set()
            if self._hb_thread is not None:
                self._hb_thread.join(timeout=5.0)
                self._hb_thread = None
            if wait:
                with self._lock:
                    held = list(self._held.values())
                    self._held.clear()
                for lease in held:
                    if self.leases.release(lease):
                        self._count("serve.leases_handed_back")

    # -- fleet: heartbeats, reclamation, abandonment -------------------
    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.leases.ttl / 3.0)
        while not self._hb_stop.wait(interval):
            with self._lock:
                held = list(self._held.values())
            for lease in held:
                if self._hb_stop.is_set():
                    return
                with self._capture("serve.heartbeat"):
                    ok = self.leases.heartbeat(lease)
                if not ok:
                    self._on_lease_lost(lease.job_id)

    def reap(self) -> int:
        """One reclamation sweep over the shared journal: steal every
        expired/released lease and adopt its job.  Returns how many
        jobs were reclaimed.  No-op in single-node mode."""
        if self._reaper is None:
            return 0
        with self._capture("serve.reap"):
            with self._lock:
                skip = set(self._jobs) | set(self._held)
            return self._reaper.run_once(skip=skip)

    def adopt(self, job: Job, lease: Lease) -> None:
        """Take over a reclaimed job under a freshly-stolen lease.

        Re-journals the job under the new fencing token *immediately* —
        from that write on, the previous owner's writes are rejected —
        then enqueues it like recovered work (admission force-set; an
        already-cached answer finishes it on the spot).  The per-key
        checkpoint makes the re-run warm: recorded CEGIS progress
        replays instead of restarting cold.
        """
        with self._capture("serve.adopt"), self._lock:
            if job.job_id in self._jobs:
                self.leases.release(lease)
                return
            job.lease_owner = lease.owner_id
            job.lease_token = lease.token
            job.coalesced_into = None
            job.state = JOB_QUEUED
            if self._serve_from_cache(job):
                self.journal.transition(job)
                self._jobs[job.job_id] = job
                event = self._events.setdefault(
                    job.job_id, threading.Event()
                )
                event.set()
                self._count("serve.reclaim_cache_hits")
                self.leases.release(lease)
                return
            self._held[job.job_id] = lease
            self._jobs[job.job_id] = job
            self._events.setdefault(job.job_id, threading.Event())
            primary_id = self._inflight.get(job.compile_key)
            if primary_id is None:
                self._inflight[job.compile_key] = job.job_id
                self._queue.append(job.job_id)
                self.admission.primaries += 1
            else:
                job.coalesced_into = primary_id
                self._waiters.setdefault(primary_id, []).append(
                    job.job_id
                )
                self._count("serve.coalesced")
            self.admission.tenant_live[job.tenant] = (
                self.admission.tenant_live.get(job.tenant, 0) + 1
            )
            # The load-bearing write: the new token lands in the
            # journal, fencing out the old owner from here on.
            self.journal.transition(job)
            self._wakeup.notify_all()

    def _on_lease_lost(self, job_id: str) -> None:
        """Our lease was stolen (we were paused/slow past the TTL).
        The job now belongs to someone else: stop working on it.  A
        queued job detaches immediately; a running one is flagged and
        its worker abandons it at the next loop boundary (any write it
        still attempts is fenced by the journal)."""
        with self._lock:
            self._held.pop(job_id, None)
            job = self._jobs.get(job_id)
            if job is None or job.terminal:
                return
            self._abandoned.add(job_id)
            queued = job_id in self._queue
            if queued:
                self._queue.remove(job_id)
        if queued:
            self._abandon(job)

    def _is_abandoned(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._abandoned

    def _abandon(self, job: Job) -> None:
        """Drop a job whose lease we lost: detach it locally (promoting
        a coalesced waiter to primary if one exists — *our* waiters are
        still ours), release its slots, and let clients follow the new
        owner through the journal."""
        self._count("serve.jobs_abandoned")
        with self._lock:
            self._abandoned.discard(job.job_id)
            self._held.pop(job.job_id, None)
            was_primary = job.coalesced_into is None
            promoted = self._detach_locked(job)
            # The primary slot either transfers to the promoted waiter
            # or is released; a waiter only ever held a tenant slot.
            self.admission.release(
                job.tenant, primary=was_primary and not promoted
            )
            self._jobs.pop(job.job_id, None)
            event = self._events.pop(job.job_id, None)
        if event is not None:
            event.set()                   # waiters re-poll the journal

    def _detach_locked(self, job: Job) -> bool:
        """Unlink ``job`` from the coalescing tables (under the service
        lock).  Returns True when a waiter inherited its primary slot."""
        if job.coalesced_into is not None:
            siblings = self._waiters.get(job.coalesced_into, [])
            if job.job_id in siblings:
                siblings.remove(job.job_id)
            return False
        waiters = self._waiters.pop(job.job_id, [])
        if self._inflight.get(job.compile_key) == job.job_id:
            del self._inflight[job.compile_key]
        waiters = [w for w in waiters if w in self._jobs]
        if not waiters:
            return False
        promoted, rest = waiters[0], waiters[1:]
        promoted_job = self._jobs[promoted]
        promoted_job.coalesced_into = None
        self._inflight[job.compile_key] = promoted
        self._waiters[promoted] = rest
        for waiter_id in rest:
            self._jobs[waiter_id].coalesced_into = promoted
        self._queue.append(promoted)
        self._count("serve.waiters_promoted")
        self._wakeup.notify()
        return True

    def _release_lease(self, job_id: str) -> None:
        if self.leases is None:
            return
        with self._lock:
            lease = self._held.pop(job_id, None)
        if lease is not None:
            self.leases.release(lease)

    def recover(self) -> int:
        """Re-adopt every accepted-but-unfinished job from the journal.

        Jobs are grouped by ``compile_key``: the oldest becomes (or
        stays) the primary, the rest re-coalesce behind it.  Admission
        counters are force-set — this work was *already* accepted, so
        capacity cannot bounce it now.
        """
        with self._capture("serve.recover"), self._lock:
            pending = self.journal.recover()
            for job in pending:
                if job.job_id in self._jobs:
                    continue
                job.coalesced_into = None        # re-derived below
                if job.state != JOB_QUEUED:
                    job.state = JOB_QUEUED
                self._jobs[job.job_id] = job
                self._events.setdefault(job.job_id, threading.Event())
                primary_id = self._inflight.get(job.compile_key)
                if primary_id is None:
                    self._inflight[job.compile_key] = job.job_id
                    self._queue.append(job.job_id)
                    self.admission.primaries += 1
                else:
                    job.coalesced_into = primary_id
                    self._waiters.setdefault(primary_id, []).append(
                        job.job_id
                    )
                    self._count("serve.coalesced")
                self.admission.tenant_live[job.tenant] = (
                    self.admission.tenant_live.get(job.tenant, 0) + 1
                )
                self.journal.transition(job)
            self._wakeup.notify_all()
        return len(pending)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        spec_source: str,
        device: DeviceProfile,
        *,
        tenant: str = "default",
        spec_start: str = "start",
        options: Optional[Dict[str, Any]] = None,
        deadline_seconds: Optional[float] = None,
        job_id: Optional[str] = None,
        lease: Optional[Lease] = None,
    ) -> Job:
        """Admit one compile request; returns the journaled :class:`Job`.

        Raises ``ValueError`` for an invalid request (bad spec or
        unknown option override — permanent, never queued) and
        :class:`~repro.serve.admission.Rejected` for backpressure,
        quota, breaker and journal-unavailable refusals (all carry
        ``retry_after``).

        In fleet mode the job's lease is acquired before any slot is
        claimed (callers that already claimed one — the spool's inbox
        drain — pass it as ``lease``).  A refused admission releases
        the lease again, so a rejected request never stays owned.
        """
        with self._capture("serve.submit"):
            # Validation happens before any slot is claimed.
            job = make_job(
                spec_source,
                device,
                tenant=tenant,
                spec_start=spec_start,
                options=options,
                deadline_seconds=deadline_seconds,
                job_id=job_id,
            )
            fault_point("serve.enqueue", label=job.compile_key)
            return self._admit(job, lease=lease)

    def _admit(self, job: Job, lease: Optional[Lease] = None) -> Job:
        key = (job.tenant, job.compile_key)
        if self.leases is not None:
            if lease is None:
                lease = self.leases.acquire(job.job_id)
                if lease is None:
                    raise Rejected(
                        f"job {job.job_id} is owned by another server",
                        retry_after=self.leases.ttl,
                    )
            job.lease_owner = lease.owner_id
            job.lease_token = lease.token
        try:
            return self._admit_leased(job, key, lease)
        except BaseException:
            if lease is not None and self.leases is not None:
                self.leases.release(lease)
            raise

    def _admit_leased(
        self, job: Job, key: Any, lease: Optional[Lease]
    ) -> Job:
        with self._lock:
            if not self.breaker.allow(key):
                raise BreakerOpen(
                    f"breaker open for compile key {job.compile_key[:16]}…",
                    retry_after=max(1.0, self.breaker.retry_after(key)),
                )
            # Cache fast-path: an already-known answer is terminal at
            # admission and never consumes a compile slot.
            if self._serve_from_cache(job):
                try:
                    self.journal.record(job)   # accepted *and* terminal
                except JournalWriteError as exc:
                    # Same contract as the queue path below: a journal
                    # outage is a *transient* rejection, never a
                    # permanent one — the client must retry.
                    raise Rejected(
                        f"journal unavailable: {exc}",
                        retry_after=self.admission.retry_after(),
                    ) from exc
                self._events[job.job_id] = threading.Event()
                self._events[job.job_id].set()
                self._jobs[job.job_id] = job
                self.breaker.record_success(key)   # a served answer
                self._count("serve.cache_hits")
                if lease is not None and self.leases is not None:
                    self.leases.release(lease)     # terminal: nothing to own
                return job
            primary_id = self._inflight.get(job.compile_key)
            coalesced = primary_id is not None
            self.admission.admit(job.tenant, primary=not coalesced)
            try:
                if coalesced:
                    job.coalesced_into = primary_id
                self.journal.record(job)       # accepted => durable
            except JournalWriteError as exc:
                self.admission.release(job.tenant, primary=not coalesced)
                raise Rejected(
                    f"journal unavailable: {exc}",
                    retry_after=self.admission.retry_after(),
                ) from exc
            if lease is not None:
                self._held[job.job_id] = lease
            self._jobs[job.job_id] = job
            self._events[job.job_id] = threading.Event()
            if coalesced:
                self._waiters.setdefault(primary_id, []).append(job.job_id)
                self._count("serve.coalesced")
            else:
                self._inflight[job.compile_key] = job.job_id
                self._queue.append(job.job_id)
                self._count("serve.accepted")
                self._wakeup.notify()
        return job

    def _serve_from_cache(self, job: Job) -> bool:
        """Terminal-ize ``job`` from the compile cache; True on a hit.
        Called under the service lock."""
        if self.cache is None:
            return False
        result = self.cache.lookup(job.compile_key, job.build_device())
        if result is None:
            return False
        job.state = JOB_DONE
        job.result_doc = result_to_doc(result)
        job.finished_epoch = time.time()
        return True

    # -- introspection -------------------------------------------------
    def status(self, job_id: str) -> Optional[Job]:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        return self.journal.load(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until ``job_id`` is terminal (or timeout); returns it."""
        with self._lock:
            event = self._events.get(job_id)
        if event is not None:
            event.wait(timeout)
        return self.status(job_id)

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            gauges = {
                "queue_depth": len(self._queue),
                "inflight_keys": len(self._inflight),
                "jobs_tracked": len(self._jobs),
                "primaries_live": self.admission.primaries,
                "admission_queue_depth": self.admission.primaries,
                "estimated_compile_seconds": round(
                    self.admission.estimated_seconds(), 3
                ),
                "leases_held": len(self._held),
            }
        gauges["journal_quarantined"] = self.journal.quarantined_count()
        if self.leases is not None:
            gauges["leases_live"] = self.leases.live_count()
        doc: Dict[str, Any] = {
            "counters": self.registry.snapshot(),
            "gauges": gauges,
        }
        if self.owner_id is not None:
            doc["owner_id"] = self.owner_id
        return doc

    # -- the worker ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopping:
                    self._wakeup.wait(0.2)
                if self._stopping:
                    return
                job_id = self._queue.popleft()
                job = self._jobs.get(job_id)
                if job is None:            # abandoned while queued
                    continue
                queued_for = time.time() - job.submitted_epoch
            self._count("serve.queue_seconds", max(0.0, queued_for))
            with self._capture(f"serve.job.{job_id}"):
                try:
                    self._run_job(job)
                except Exception as exc:   # defense: a worker never dies
                    self._count("serve.worker_errors")
                    self._finish(
                        job,
                        JOB_FAILED,
                        failure_kind="fault",
                        message=f"worker error: {exc}",
                    )

    def _run_job(self, job: Job) -> None:
        started = time.time()
        while True:
            if self._is_abandoned(job.job_id):
                self._abandon(job)
                return
            remaining = job.remaining_seconds()
            if remaining is not None and remaining <= 0:
                self._count("serve.deadline_exceeded")
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="timeout",
                    message="deadline expired before the compile ran",
                )
                return
            job.state = JOB_RUNNING
            job.started_epoch = job.started_epoch or started
            job.attempts += 1
            if self.journal.transition(job) == WRITE_FENCED:
                # The journal already carries a newer owner's token:
                # our lease was stolen before we even started.
                self._abandon(job)
                return
            self._count("serve.attempts")
            try:
                result = self._attempt(job, remaining)
            except Exception as exc:
                if transient_fault(exc) and self._retry(job, exc):
                    continue
                self._record_outcome(job, success=False)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="fault",
                    message=f"{type(exc).__name__}: {exc}",
                )
                return
            if result.status == STATUS_OK:
                self._record_outcome(job, success=True)
                job.result_doc = result_to_doc(result)
                self._finish(job, JOB_DONE)
                return
            if result.status == STATUS_INFEASIBLE:
                # A clean verdict: the spec cannot fit the device.
                self._record_outcome(job, success=True)
                job.result_doc = result_to_doc(result)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="infeasible",
                    message=result.message,
                )
                return
            if result.status == STATUS_TIMEOUT:
                self._record_outcome(job, success=False)
                job.result_doc = result_to_doc(result)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="timeout",
                    message=result.message,
                )
                return
            # STATUS_FAULT: the compiler absorbed a transient failure
            # (its checkpoint makes the re-run cheap).
            assert result.status == STATUS_FAULT, result.status
            if self._retry(job, None):
                continue
            self._record_outcome(job, success=False)
            job.result_doc = result_to_doc(result)
            self._finish(
                job, JOB_FAILED, failure_kind="fault",
                message=result.message,
            )
            return

    def _attempt(self, job: Job, remaining: Optional[float]):
        """One compile attempt with deadline propagation + checkpointing."""
        fault_point("serve.worker", label=job.compile_key)
        overrides: Dict[str, Any] = {
            "cache_dir": str(self.cache.directory) if self.cache else None,
        }
        requested = job.options.get("total_max_seconds")
        if remaining is not None:
            overrides["total_max_seconds"] = (
                min(requested, remaining)
                if requested is not None
                else remaining
            )
        options = job.build_options(**overrides)
        compiler = ParserHawkCompiler(options)
        self._count("serve.compile_launched")
        return compiler.compile(
            job.build_spec(),
            job.build_device(),
            checkpoint_dir=str(self.checkpoint_dir_for(job.compile_key)),
            resume=True,
        )

    def _retry(self, job: Job, exc: Optional[BaseException]) -> bool:
        """Decide (and pace) a transient-failure retry; True = go again."""
        self._count("serve.transient_failures")
        if job.attempts >= self.retry_policy.max_attempts:
            self._count("serve.retries_exhausted")
            if self._degrade(job):
                return False
            return False
        remaining = job.remaining_seconds()
        delay = self.retry_policy.delay(job.attempts, key=job.job_id)
        if remaining is not None and delay >= remaining:
            self._count("serve.deadline_exceeded")
            return False
        job.state = JOB_QUEUED
        self.journal.transition(job)
        self._count("serve.retries")
        self._sleep(delay)
        return True

    def _degrade(self, job: Job) -> bool:
        """Last-resort cache consult after exhausted retries (another
        process may have completed the same key); True when served."""
        with self._lock:
            hit = self._serve_from_cache(job)
        if hit:
            job.degraded = True
            self._count("serve.stale_served")
            self._finish(job, JOB_DONE)
        return hit

    def _record_outcome(self, job: Job, *, success: bool) -> None:
        key = (job.tenant, job.compile_key)
        with self._lock:
            if success:
                self.breaker.record_success(key)
            else:
                self.breaker.record_failure(key)

    # -- completion ----------------------------------------------------
    def _finish(
        self,
        job: Job,
        state: str,
        *,
        failure_kind: str = "",
        message: str = "",
    ) -> None:
        if job.terminal:
            return
        job.state = state
        job.failure_kind = failure_kind
        if message:
            job.message = message
        job.finished_epoch = time.time()
        if self.journal.transition(job) == WRITE_FENCED:
            # A newer owner journaled first (stolen lease, or a
            # conflicting terminal).  Our outcome is void: drop the job
            # locally and let clients follow the journal's owner.  The
            # deterministic compile means any *result* we raced on is
            # identical anyway — only the bookkeeping was stale.
            self._count("serve.stale_finishes")
            self._abandon(job)
            return
        self._release_lease(job.job_id)
        self._count(f"serve.jobs_{state}")
        with self._lock:
            waiters = self._waiters.pop(job.job_id, [])
            if self._inflight.get(job.compile_key) == job.job_id:
                del self._inflight[job.compile_key]
            self.admission.release(job.tenant, primary=True)
            if job.started_epoch and job.finished_epoch:
                self.admission.observe_duration(
                    job.finished_epoch - job.started_epoch
                )
            event = self._events.get(job.job_id)
            waiter_jobs = [self._jobs[w] for w in waiters if w in self._jobs]
        if event is not None:
            event.set()
        for waiter in waiter_jobs:
            waiter.state = job.state
            waiter.failure_kind = job.failure_kind
            waiter.message = job.message
            waiter.result_doc = job.result_doc
            waiter.degraded = job.degraded
            waiter.finished_epoch = job.finished_epoch
            if self.journal.transition(waiter) == WRITE_FENCED:
                self._count("serve.stale_finishes")
            self._release_lease(waiter.job_id)
            self._count(f"serve.jobs_{waiter.state}")
            with self._lock:
                self.admission.release(waiter.tenant, primary=False)
                waiter_event = self._events.get(waiter.job_id)
            if waiter_event is not None:
                waiter_event.set()


__all__ = ["CompileService", "SERVICE_RETRY_POLICY"]
