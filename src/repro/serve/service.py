"""The compile service: admission, coalescing, retry, recovery.

:class:`CompileService` turns :class:`~repro.core.compiler.ParserHawkCompiler`
into a robust multi-tenant job runner.  One instance owns a service
directory::

    <root>/journal/jobs/*.json    the crash-safe job journal
    <root>/cache/                 the shared compile cache
    <root>/ckpt/<key16>/          per-compile-key CEGIS checkpoints

and a pool of worker *threads* (the compiler already fans out its own
portfolio subprocesses; service workers spend their time waiting on
them, so threads are the right grain and the journal/cache/checkpoint
state stays in one process).

Robustness properties, and where they live:

* **backpressure** — :class:`~repro.serve.admission.AdmissionQueue`
  bounds queued+running primaries and per-tenant live jobs; rejected
  submissions carry ``retry_after``;
* **coalescing** — identical ``compile_key``\\ s share one in-flight
  compile; waiters are journaled with ``coalesced_into`` and copy the
  primary's terminal state (counted as ``serve.coalesced``);
* **classified retry** — transient faults (worker crash, broken pool,
  solver resource exhaustion — :func:`repro.resilience.retry.transient_fault`,
  plus ``STATUS_FAULT`` results) re-run under the service
  :class:`~repro.resilience.retry.RetryPolicy` with deterministic
  jittered backoff; infeasible/invalid/timeout outcomes never retry;
* **circuit breaker** — repeatedly-faulting ``(tenant, compile_key)``
  pairs are rejected for a cooldown
  (:class:`~repro.serve.breaker.CircuitBreaker`);
* **deadline propagation** — a job deadline caps the compiler's
  ``total_max_seconds`` on every attempt; an already-expired deadline
  terminates the job without launching;
* **graceful degradation** — cache hits answer at submit time without
  burning a compile slot; after exhausted retries the cache is
  consulted once more (another process may have finished the same key)
  and a hit is served marked ``degraded`` (``serve.stale_served``);
* **crash safety** — every accepted job is journaled before its ack;
  :meth:`recover` re-adopts non-terminal jobs on restart, resuming
  their CEGIS checkpoints (``resume=True`` + per-key checkpoint dirs).

Threading note: :class:`~repro.obs.Tracer` span trees are **not**
thread-safe, so every worker attempt and every submit runs under its
own private tracer whose counters are merged into the service-owned
:class:`~repro.obs.CounterRegistry` afterwards.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from ..core.compiler import ParserHawkCompiler
from ..core.result import (
    STATUS_FAULT,
    STATUS_INFEASIBLE,
    STATUS_OK,
    STATUS_TIMEOUT,
)
from ..hw.device import DeviceProfile
from ..obs import CounterRegistry, Tracer, use_tracer
from ..persist.cache import CompileCache
from ..persist.serialize import result_to_doc
from ..resilience.injection import fault_point
from ..resilience.retry import RetryPolicy, transient_fault
from .admission import AdmissionQueue, BreakerOpen, Rejected
from .breaker import CircuitBreaker
from .job import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    make_job,
)
from .journal import JobJournal, JournalWriteError

# Service-level retry policy for transient attempt failures.  Short
# base delay: the per-key checkpoint makes a re-run cheap, and the
# deterministic jitter de-synchronizes concurrent retriers.
SERVICE_RETRY_POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.05, multiplier=2.0, max_delay=2.0,
    jitter=0.25, seed=0,
)


class CompileService:
    """Admission-controlled, journaled compile-as-a-service."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        workers: int = 2,
        capacity: int = 32,
        per_tenant: int = 8,
        retry_policy: RetryPolicy = SERVICE_RETRY_POLICY,
        breaker: Optional[CircuitBreaker] = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        use_cache: bool = True,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.root = Path(root)
        self.journal = JobJournal(self.root / "journal")
        self.cache: Optional[CompileCache] = (
            CompileCache(self.root / "cache") if use_cache else None
        )
        self.admission = AdmissionQueue(
            capacity=capacity, per_tenant=per_tenant, workers=workers
        )
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
        )
        self.retry_policy = retry_policy
        self.registry = CounterRegistry()
        self._sleep = sleep
        self._num_workers = max(1, workers)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._queue: Deque[str] = deque()
        self._jobs: Dict[str, Job] = {}
        self._inflight: Dict[str, str] = {}      # compile_key -> primary id
        self._waiters: Dict[str, List[str]] = {} # primary id -> waiter ids
        self._events: Dict[str, threading.Event] = {}
        self._threads: List[threading.Thread] = []
        self._stopping = False

    # -- counter plumbing ----------------------------------------------
    @contextmanager
    def _capture(self, name: str):
        """Run a block under a private tracer; merge its counters into
        the service registry (span trees are per-thread, counters are
        the shared truth)."""
        tracer = Tracer(name)
        try:
            with use_tracer(tracer):
                yield tracer
        finally:
            self.registry.merge(tracer.registry.snapshot())

    def _count(self, name: str, delta: Union[int, float] = 1) -> None:
        self.registry.add(name, delta)

    # -- directories ---------------------------------------------------
    def checkpoint_dir_for(self, compile_key: str) -> Path:
        return self.root / "ckpt" / compile_key[:16]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> int:
        """Recover journaled work and start the worker pool.  Returns
        how many jobs were re-adopted."""
        adopted = self.recover()
        with self._lock:
            self._stopping = False
        for index in range(self._num_workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return adopted

    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting work and (optionally) join the workers.
        Jobs still queued stay journaled and are re-adopted by the next
        :meth:`start` — shutdown never loses accepted work."""
        with self._wakeup:
            self._stopping = True
            self._wakeup.notify_all()
        if wait:
            deadline = time.monotonic() + timeout
            for thread in self._threads:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(remaining)
        self._threads = []

    def recover(self) -> int:
        """Re-adopt every accepted-but-unfinished job from the journal.

        Jobs are grouped by ``compile_key``: the oldest becomes (or
        stays) the primary, the rest re-coalesce behind it.  Admission
        counters are force-set — this work was *already* accepted, so
        capacity cannot bounce it now.
        """
        with self._capture("serve.recover"), self._lock:
            pending = self.journal.recover()
            for job in pending:
                if job.job_id in self._jobs:
                    continue
                job.coalesced_into = None        # re-derived below
                if job.state != JOB_QUEUED:
                    job.state = JOB_QUEUED
                self._jobs[job.job_id] = job
                self._events.setdefault(job.job_id, threading.Event())
                primary_id = self._inflight.get(job.compile_key)
                if primary_id is None:
                    self._inflight[job.compile_key] = job.job_id
                    self._queue.append(job.job_id)
                    self.admission.primaries += 1
                else:
                    job.coalesced_into = primary_id
                    self._waiters.setdefault(primary_id, []).append(
                        job.job_id
                    )
                    self._count("serve.coalesced")
                self.admission.tenant_live[job.tenant] = (
                    self.admission.tenant_live.get(job.tenant, 0) + 1
                )
                self.journal.transition(job)
            self._wakeup.notify_all()
        return len(pending)

    # -- submission ----------------------------------------------------
    def submit(
        self,
        spec_source: str,
        device: DeviceProfile,
        *,
        tenant: str = "default",
        spec_start: str = "start",
        options: Optional[Dict[str, Any]] = None,
        deadline_seconds: Optional[float] = None,
        job_id: Optional[str] = None,
    ) -> Job:
        """Admit one compile request; returns the journaled :class:`Job`.

        Raises ``ValueError`` for an invalid request (bad spec or
        unknown option override — permanent, never queued) and
        :class:`~repro.serve.admission.Rejected` for backpressure,
        quota, breaker and journal-unavailable refusals (all carry
        ``retry_after``).
        """
        with self._capture("serve.submit"):
            # Validation happens before any slot is claimed.
            job = make_job(
                spec_source,
                device,
                tenant=tenant,
                spec_start=spec_start,
                options=options,
                deadline_seconds=deadline_seconds,
                job_id=job_id,
            )
            fault_point("serve.enqueue", label=job.compile_key)
            return self._admit(job)

    def _admit(self, job: Job) -> Job:
        key = (job.tenant, job.compile_key)
        with self._lock:
            if not self.breaker.allow(key):
                raise BreakerOpen(
                    f"breaker open for compile key {job.compile_key[:16]}…",
                    retry_after=max(1.0, self.breaker.retry_after(key)),
                )
            # Cache fast-path: an already-known answer is terminal at
            # admission and never consumes a compile slot.
            if self._serve_from_cache(job):
                self.journal.record(job)       # accepted *and* terminal
                self._events[job.job_id] = threading.Event()
                self._events[job.job_id].set()
                self._jobs[job.job_id] = job
                self.breaker.record_success(key)   # a served answer
                self._count("serve.cache_hits")
                return job
            primary_id = self._inflight.get(job.compile_key)
            coalesced = primary_id is not None
            self.admission.admit(job.tenant, primary=not coalesced)
            try:
                if coalesced:
                    job.coalesced_into = primary_id
                self.journal.record(job)       # accepted => durable
            except JournalWriteError as exc:
                self.admission.release(job.tenant, primary=not coalesced)
                raise Rejected(
                    f"journal unavailable: {exc}",
                    retry_after=self.admission.retry_after(),
                ) from exc
            self._jobs[job.job_id] = job
            self._events[job.job_id] = threading.Event()
            if coalesced:
                self._waiters.setdefault(primary_id, []).append(job.job_id)
                self._count("serve.coalesced")
            else:
                self._inflight[job.compile_key] = job.job_id
                self._queue.append(job.job_id)
                self._count("serve.accepted")
                self._wakeup.notify()
        return job

    def _serve_from_cache(self, job: Job) -> bool:
        """Terminal-ize ``job`` from the compile cache; True on a hit.
        Called under the service lock."""
        if self.cache is None:
            return False
        result = self.cache.lookup(job.compile_key, job.build_device())
        if result is None:
            return False
        job.state = JOB_DONE
        job.result_doc = result_to_doc(result)
        job.finished_epoch = time.time()
        return True

    # -- introspection -------------------------------------------------
    def status(self, job_id: str) -> Optional[Job]:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is not None:
            return job
        return self.journal.load(job_id)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[Job]:
        """Block until ``job_id`` is terminal (or timeout); returns it."""
        with self._lock:
            event = self._events.get(job_id)
        if event is not None:
            event.wait(timeout)
        return self.status(job_id)

    def metrics(self) -> Dict[str, Any]:
        with self._lock:
            gauges = {
                "queue_depth": len(self._queue),
                "inflight_keys": len(self._inflight),
                "jobs_tracked": len(self._jobs),
                "primaries_live": self.admission.primaries,
                "estimated_compile_seconds": round(
                    self.admission.estimated_seconds(), 3
                ),
            }
        return {"counters": self.registry.snapshot(), "gauges": gauges}

    # -- the worker ----------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            with self._wakeup:
                while not self._queue and not self._stopping:
                    self._wakeup.wait(0.2)
                if self._stopping:
                    return
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                queued_for = time.time() - job.submitted_epoch
            self._count("serve.queue_seconds", max(0.0, queued_for))
            with self._capture(f"serve.job.{job_id}"):
                try:
                    self._run_job(job)
                except Exception as exc:   # defense: a worker never dies
                    self._count("serve.worker_errors")
                    self._finish(
                        job,
                        JOB_FAILED,
                        failure_kind="fault",
                        message=f"worker error: {exc}",
                    )

    def _run_job(self, job: Job) -> None:
        started = time.time()
        while True:
            remaining = job.remaining_seconds()
            if remaining is not None and remaining <= 0:
                self._count("serve.deadline_exceeded")
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="timeout",
                    message="deadline expired before the compile ran",
                )
                return
            job.state = JOB_RUNNING
            job.started_epoch = job.started_epoch or started
            job.attempts += 1
            self.journal.transition(job)
            self._count("serve.attempts")
            try:
                result = self._attempt(job, remaining)
            except Exception as exc:
                if transient_fault(exc) and self._retry(job, exc):
                    continue
                self._record_outcome(job, success=False)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="fault",
                    message=f"{type(exc).__name__}: {exc}",
                )
                return
            if result.status == STATUS_OK:
                self._record_outcome(job, success=True)
                job.result_doc = result_to_doc(result)
                self._finish(job, JOB_DONE)
                return
            if result.status == STATUS_INFEASIBLE:
                # A clean verdict: the spec cannot fit the device.
                self._record_outcome(job, success=True)
                job.result_doc = result_to_doc(result)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="infeasible",
                    message=result.message,
                )
                return
            if result.status == STATUS_TIMEOUT:
                self._record_outcome(job, success=False)
                job.result_doc = result_to_doc(result)
                self._finish(
                    job,
                    JOB_FAILED,
                    failure_kind="timeout",
                    message=result.message,
                )
                return
            # STATUS_FAULT: the compiler absorbed a transient failure
            # (its checkpoint makes the re-run cheap).
            assert result.status == STATUS_FAULT, result.status
            if self._retry(job, None):
                continue
            self._record_outcome(job, success=False)
            job.result_doc = result_to_doc(result)
            self._finish(
                job, JOB_FAILED, failure_kind="fault",
                message=result.message,
            )
            return

    def _attempt(self, job: Job, remaining: Optional[float]):
        """One compile attempt with deadline propagation + checkpointing."""
        fault_point("serve.worker", label=job.compile_key)
        overrides: Dict[str, Any] = {
            "cache_dir": str(self.cache.directory) if self.cache else None,
        }
        requested = job.options.get("total_max_seconds")
        if remaining is not None:
            overrides["total_max_seconds"] = (
                min(requested, remaining)
                if requested is not None
                else remaining
            )
        options = job.build_options(**overrides)
        compiler = ParserHawkCompiler(options)
        self._count("serve.compile_launched")
        return compiler.compile(
            job.build_spec(),
            job.build_device(),
            checkpoint_dir=str(self.checkpoint_dir_for(job.compile_key)),
            resume=True,
        )

    def _retry(self, job: Job, exc: Optional[BaseException]) -> bool:
        """Decide (and pace) a transient-failure retry; True = go again."""
        self._count("serve.transient_failures")
        if job.attempts >= self.retry_policy.max_attempts:
            self._count("serve.retries_exhausted")
            if self._degrade(job):
                return False
            return False
        remaining = job.remaining_seconds()
        delay = self.retry_policy.delay(job.attempts, key=job.job_id)
        if remaining is not None and delay >= remaining:
            self._count("serve.deadline_exceeded")
            return False
        job.state = JOB_QUEUED
        self.journal.transition(job)
        self._count("serve.retries")
        self._sleep(delay)
        return True

    def _degrade(self, job: Job) -> bool:
        """Last-resort cache consult after exhausted retries (another
        process may have completed the same key); True when served."""
        with self._lock:
            hit = self._serve_from_cache(job)
        if hit:
            job.degraded = True
            self._count("serve.stale_served")
            self._finish(job, JOB_DONE)
        return hit

    def _record_outcome(self, job: Job, *, success: bool) -> None:
        key = (job.tenant, job.compile_key)
        with self._lock:
            if success:
                self.breaker.record_success(key)
            else:
                self.breaker.record_failure(key)

    # -- completion ----------------------------------------------------
    def _finish(
        self,
        job: Job,
        state: str,
        *,
        failure_kind: str = "",
        message: str = "",
    ) -> None:
        if job.terminal:
            return
        job.state = state
        job.failure_kind = failure_kind
        if message:
            job.message = message
        job.finished_epoch = time.time()
        self.journal.transition(job)
        self._count(f"serve.jobs_{state}")
        with self._lock:
            waiters = self._waiters.pop(job.job_id, [])
            if self._inflight.get(job.compile_key) == job.job_id:
                del self._inflight[job.compile_key]
            self.admission.release(job.tenant, primary=True)
            if job.started_epoch and job.finished_epoch:
                self.admission.observe_duration(
                    job.finished_epoch - job.started_epoch
                )
            event = self._events.get(job.job_id)
            waiter_jobs = [self._jobs[w] for w in waiters if w in self._jobs]
        if event is not None:
            event.set()
        for waiter in waiter_jobs:
            waiter.state = job.state
            waiter.failure_kind = job.failure_kind
            waiter.message = job.message
            waiter.result_doc = job.result_doc
            waiter.degraded = job.degraded
            waiter.finished_epoch = job.finished_epoch
            self.journal.transition(waiter)
            self._count(f"serve.jobs_{waiter.state}")
            with self._lock:
                self.admission.release(waiter.tenant, primary=False)
                waiter_event = self._events.get(waiter.job_id)
            if waiter_event is not None:
                waiter_event.set()


__all__ = ["CompileService", "SERVICE_RETRY_POLICY"]
