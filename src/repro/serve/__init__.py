"""Compile-as-a-service: a robust job layer over the compiler.

Layering (each module usable and testable on its own):

* :mod:`repro.serve.job` — the journaled unit of work and its state
  machine;
* :mod:`repro.serve.journal` — crash-safe per-job persistence
  (atomic envelopes; accepted ⇒ durable), with per-job fencing;
* :mod:`repro.serve.lease` — per-job ownership leases with heartbeat
  deadlines and fencing tokens (the fleet coordination substrate);
* :mod:`repro.serve.reaper` — reclamation of dead owners' jobs;
* :mod:`repro.serve.admission` — bounded queue + per-tenant quotas
  with honest ``retry_after`` backpressure;
* :mod:`repro.serve.breaker` — per-(tenant, compile key) circuit
  breaker;
* :mod:`repro.serve.service` — the orchestrator: workers, coalescing,
  classified retry, deadline propagation, recovery, fleet mode;
* :mod:`repro.serve.spool` — the filesystem front-end protocol used by
  ``repro serve`` / ``repro submit`` / ``repro status`` /
  ``repro result``;
* :mod:`repro.serve.fleet` — the ``repro fleet`` supervisor: N serve
  processes on one spool root, restart budget, graceful drain.
"""

from .admission import (
    AdmissionQueue,
    BreakerOpen,
    QueueFull,
    QuotaExceeded,
    Rejected,
)
from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from .fleet import FleetSupervisor, read_fleet_pids
from .job import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    TERMINAL_STATES,
    make_job,
    new_job_id,
)
from .journal import (
    JobJournal,
    JournalWriteError,
    WRITE_DEGRADED,
    WRITE_FENCED,
    WRITE_OK,
)
from .lease import DEFAULT_TTL, Lease, LeaseManager
from .reaper import Reaper
from .service import SERVICE_RETRY_POLICY, CompileService
from .spool import SpoolClient, SpoolServer

__all__ = [
    "AdmissionQueue",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "CompileService",
    "DEFAULT_TTL",
    "FleetSupervisor",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobJournal",
    "JournalWriteError",
    "Lease",
    "LeaseManager",
    "QueueFull",
    "QuotaExceeded",
    "Reaper",
    "Rejected",
    "SERVICE_RETRY_POLICY",
    "SpoolClient",
    "SpoolServer",
    "TERMINAL_STATES",
    "WRITE_DEGRADED",
    "WRITE_FENCED",
    "WRITE_OK",
    "make_job",
    "new_job_id",
    "read_fleet_pids",
]
