"""Compile-as-a-service: a robust job layer over the compiler.

Layering (each module usable and testable on its own):

* :mod:`repro.serve.job` — the journaled unit of work and its state
  machine;
* :mod:`repro.serve.journal` — crash-safe per-job persistence
  (atomic envelopes; accepted ⇒ durable);
* :mod:`repro.serve.admission` — bounded queue + per-tenant quotas
  with honest ``retry_after`` backpressure;
* :mod:`repro.serve.breaker` — per-(tenant, compile key) circuit
  breaker;
* :mod:`repro.serve.service` — the orchestrator: workers, coalescing,
  classified retry, deadline propagation, recovery;
* :mod:`repro.serve.spool` — the filesystem front-end protocol used by
  ``repro serve`` / ``repro submit`` / ``repro status`` /
  ``repro result``.
"""

from .admission import (
    AdmissionQueue,
    BreakerOpen,
    QueueFull,
    QuotaExceeded,
    Rejected,
)
from .breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from .job import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    Job,
    TERMINAL_STATES,
    make_job,
    new_job_id,
)
from .journal import JobJournal, JournalWriteError
from .service import SERVICE_RETRY_POLICY, CompileService
from .spool import SpoolClient, SpoolServer

__all__ = [
    "AdmissionQueue",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerOpen",
    "CircuitBreaker",
    "CompileService",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "Job",
    "JobJournal",
    "JournalWriteError",
    "QueueFull",
    "QuotaExceeded",
    "Rejected",
    "SERVICE_RETRY_POLICY",
    "SpoolClient",
    "SpoolServer",
    "TERMINAL_STATES",
    "make_job",
    "new_job_id",
]
