"""Job reclamation: dead owners' work is stolen, not lost.

Every fleet worker runs the reaper opportunistically (the spool loop
calls :meth:`Reaper.run_once` between inbox drains).  A sweep walks the
shared journal for accepted-but-unfinished jobs and, for each one this
process doesn't already own, checks the job's lease:

* **held and live** — another worker is on it; skip;
* **absent / released / expired / our own previous incarnation's** —
  steal it (:meth:`~repro.serve.lease.LeaseManager.acquire`, which
  increments the fencing token under the per-job mutex, so exactly one
  contending reaper wins) and hand the job to the adopt callback.

The adopt callback (``CompileService.adopt``) re-journals the job under
the **new** token immediately — from that write on, anything the old
owner tries is fenced — and enqueues it with ``resume=True`` so the
per-key CEGIS checkpoint replays instead of restarting cold: reclaimed
work continues, it doesn't start over.

``min_token`` passed to acquire is ``journal token + 1``: even if the
lease file itself was lost (quarantined, or the job predates the
fleet), fencing still advances strictly.
"""

from __future__ import annotations

from typing import Callable, Container, List

from ..obs import get_tracer
from .job import TERMINAL_STATES, Job
from .journal import JobJournal
from .lease import Lease, LeaseManager


class Reaper:
    """Scan-and-steal over one (journal, lease table) pair."""

    def __init__(
        self,
        journal: JobJournal,
        leases: LeaseManager,
        adopt: Callable[[Job, Lease], None],
    ) -> None:
        self.journal = journal
        self.leases = leases
        self.adopt = adopt

    def run_once(self, skip: Container[str] = ()) -> int:
        """One sweep; returns how many jobs were reclaimed.

        ``skip`` is the set of job ids the caller already tracks
        locally (its own live work must not be stolen from itself).
        """
        tracer = get_tracer()
        reclaimed = 0
        for job in self.journal:
            if job.state in TERMINAL_STATES or job.job_id in skip:
                continue
            lease = self.leases.peek(job.job_id)
            if not self.leases.stealable(lease):
                continue
            taken = self.leases.acquire(
                job.job_id, min_token=job.lease_token + 1
            )
            if taken is None:
                continue               # lost the steal race; next sweep
            job.reclaims += 1
            tracer.count("serve.jobs_reclaimed")
            self.adopt(job, taken)
            reclaimed += 1
        return reclaimed

    def reclaimable(self, skip: Container[str] = ()) -> List[Job]:
        """Dry-run listing (introspection / tests): jobs a sweep would
        try to steal right now."""
        return [
            job
            for job in self.journal
            if job.state not in TERMINAL_STATES
            and job.job_id not in skip
            and self.leases.stealable(self.leases.peek(job.job_id))
        ]


__all__ = ["Reaper"]
