"""The fleet supervisor: N serve processes, one spool root.

``repro fleet --workers N`` turns the single-process spool server into
a small self-healing fleet.  The supervisor does exactly four things —
everything stateful lives in the shared spool directory, so the
supervisor itself carries no recovery burden:

* **spawn** — start N ``repro serve`` subprocesses, each with its own
  ``owner_id`` (``worker-0`` … ``worker-N-1``); pids are dropped into
  ``<root>/fleet/<owner>.pid`` so outside tooling (the chaos soak) can
  pick victims;
* **restart** — a worker that *exits non-zero* (crash, SIGKILL) is
  respawned under a restart budget, with the shared deterministic
  backoff from :mod:`repro.resilience.retry` so a crash-looping worker
  doesn't spin the box.  The replacement re-uses the dead worker's
  ``owner_id``: its first reaper sweep legally steals its predecessor's
  leases (same owner = provably dead) and resumes the jobs from their
  checkpoints;
* **drain** — SIGTERM (or the run duration elapsing) touches each
  worker's ``stop-<owner>`` file: workers stop claiming inbox work,
  finish or release their held leases, and exit 0.  Workers still
  alive after ``drain_timeout`` are terminated, then killed;
* **report** — :meth:`FleetSupervisor.run` returns a summary dict
  (spawned/restarted/exit codes) the CLI prints.

The supervisor deliberately does *not* route work: admission,
coalescing and reclamation are decided by the workers against the
shared journal/lease directories.  Killing the supervisor therefore
loses nothing — workers keep serving, and a new supervisor (or bare
``repro serve`` processes) can take over the same root.
"""

from __future__ import annotations

import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..obs import get_tracer
from ..resilience.retry import RetryPolicy
from .lease import DEFAULT_TTL
from .spool import STOP_FILENAME

# Backoff between respawns of the *same* worker slot; resets on a
# clean exit.  Deterministic jitter (keyed by owner id) keeps fleets
# from thundering-herd restarts.
RESTART_POLICY = RetryPolicy(
    max_attempts=8, base_delay=0.1, multiplier=2.0, max_delay=2.0,
    jitter=0.25, seed=0,
)


class FleetSupervisor:
    """Spawn-and-keep-alive for a fleet of spool servers."""

    def __init__(
        self,
        root: Union[str, Path],
        *,
        workers: int = 3,
        threads: int = 2,
        capacity: int = 32,
        per_tenant: int = 8,
        lease_ttl: float = DEFAULT_TTL,
        restart_budget: int = 8,
        drain_timeout: float = 30.0,
        inject: Optional[str] = None,
        python: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.fleet_dir = self.root / "fleet"
        self.workers = max(1, workers)
        self.threads = threads
        self.capacity = capacity
        self.per_tenant = per_tenant
        self.lease_ttl = lease_ttl
        self.restart_budget = restart_budget
        self.drain_timeout = drain_timeout
        self.inject = inject
        self.python = python or sys.executable
        self._procs: Dict[str, subprocess.Popen] = {}
        # _streaks drives the budget and is reset by a clean exit;
        # _restarts is the cumulative count the summary reports (a
        # clean exit must not erase history — workers racing the
        # supervisor to notice the global stop file would wipe it).
        self._streaks: Dict[str, int] = {}
        self._restarts: Dict[str, int] = {}
        self._exit_codes: Dict[str, List[int]] = {}
        self._draining = False

    # -- naming --------------------------------------------------------
    def owner_ids(self) -> List[str]:
        return [f"worker-{i}" for i in range(self.workers)]

    def pid_path(self, owner_id: str) -> Path:
        return self.fleet_dir / f"{owner_id}.pid"

    # -- process management --------------------------------------------
    def _command(self, owner_id: str) -> List[str]:
        cmd = [
            self.python, "-m", "repro", "serve", str(self.root),
            "--workers", str(self.threads),
            "--capacity", str(self.capacity),
            "--per-tenant", str(self.per_tenant),
            "--owner-id", owner_id,
            "--lease-ttl", str(self.lease_ttl),
        ]
        if self.inject:
            cmd += ["--inject", self.inject]
        return cmd

    def spawn(self, owner_id: str) -> subprocess.Popen:
        (self.root / f"{STOP_FILENAME}-{owner_id}").unlink(missing_ok=True)
        proc = subprocess.Popen(
            self._command(owner_id),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        self._procs[owner_id] = proc
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        self.pid_path(owner_id).write_text(str(proc.pid))
        get_tracer().count("serve.fleet_spawned")
        return proc

    def pids(self) -> Dict[str, int]:
        """Live worker pids by owner id (from this supervisor's table)."""
        return {
            owner: proc.pid
            for owner, proc in self._procs.items()
            if proc.poll() is None
        }

    def _reap_exits(self) -> None:
        """Collect exited workers; respawn crashers within budget."""
        for owner, proc in list(self._procs.items()):
            code = proc.poll()
            if code is None:
                continue
            self._exit_codes.setdefault(owner, []).append(code)
            self.pid_path(owner).unlink(missing_ok=True)
            del self._procs[owner]
            if self._draining:
                continue
            if code == 0:
                # Clean exit outside a drain: someone touched its stop
                # file (or a duration elapsed); respect it, and reset
                # the slot's crash streak.
                self._streaks.pop(owner, None)
                continue
            attempt = self._streaks.get(owner, 0) + 1
            if attempt > self.restart_budget:
                get_tracer().count("serve.fleet_budget_exhausted")
                continue
            self._streaks[owner] = attempt
            self._restarts[owner] = self._restarts.get(owner, 0) + 1
            get_tracer().count("serve.fleet_restarts")
            time.sleep(RESTART_POLICY.delay(attempt, key=owner))
            self.spawn(owner)

    # -- drain ---------------------------------------------------------
    def request_drain(self) -> None:
        """Ask every worker to stop claiming work and exit gracefully."""
        self._draining = True
        self.root.mkdir(parents=True, exist_ok=True)
        for owner in self.owner_ids():
            (self.root / f"{STOP_FILENAME}-{owner}").touch()

    def _drain_and_stop(self) -> None:
        self.request_drain()
        deadline = time.monotonic() + self.drain_timeout
        while self._procs and time.monotonic() < deadline:
            self._reap_exits()
            time.sleep(0.05)
        for owner, proc in list(self._procs.items()):
            if proc.poll() is None:
                proc.terminate()
        grace = time.monotonic() + 2.0
        while self._procs and time.monotonic() < grace:
            self._reap_exits()
            time.sleep(0.05)
        for owner, proc in list(self._procs.items()):
            if proc.poll() is None:
                proc.kill()
                proc.wait()
                self._exit_codes.setdefault(owner, []).append(-9)
                self.pid_path(owner).unlink(missing_ok=True)
                del self._procs[owner]

    # -- the loop ------------------------------------------------------
    def run(
        self,
        duration: Optional[float] = None,
        poll: float = 0.1,
    ) -> Dict[str, object]:
        """Supervise until SIGTERM/SIGINT, the global stop file, or
        ``duration``; then drain.  Returns a summary document."""
        # A stale global stop from a previous run must not instantly
        # kill the new fleet; the supervisor owns clearing it.
        (self.root / STOP_FILENAME).unlink(missing_ok=True)
        stop_signalled = {"flag": False}

        def _on_signal(signum, frame):  # noqa: ARG001
            stop_signalled["flag"] = True

        previous = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _on_signal)
            except ValueError:
                pass                    # not the main thread (tests)
        started = time.monotonic()
        try:
            for owner in self.owner_ids():
                self.spawn(owner)
            while True:
                self._reap_exits()
                if stop_signalled["flag"]:
                    break
                if (self.root / STOP_FILENAME).exists():
                    break
                if (
                    duration is not None
                    and time.monotonic() - started >= duration
                ):
                    break
                if not self._procs:
                    break               # everyone exited (budget spent)
                time.sleep(poll)
            self._drain_and_stop()
        finally:
            for signum, handler in previous.items():
                try:
                    signal.signal(signum, handler)
                except ValueError:
                    pass
        return {
            "workers": self.workers,
            "restarts": dict(self._restarts),
            "exit_codes": dict(self._exit_codes),
            "elapsed_seconds": round(time.monotonic() - started, 3),
        }


def read_fleet_pids(root: Union[str, Path]) -> Dict[str, int]:
    """Owner-id → pid map from the pid files (for outside tooling; a
    pid is only as live as the file is fresh)."""
    fleet_dir = Path(root) / "fleet"
    out: Dict[str, int] = {}
    if not fleet_dir.is_dir():
        return out
    for path in sorted(fleet_dir.glob("*.pid")):
        try:
            out[path.stem] = int(path.read_text().strip())
        except (OSError, ValueError):
            continue
    return out


__all__ = ["FleetSupervisor", "RESTART_POLICY", "read_fleet_pids"]
