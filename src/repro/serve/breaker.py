"""Per-(tenant, compile_key) circuit breaker.

A spec that keeps crashing the synthesis pipeline must not be allowed
to monopolize workers by resubmission.  Each ``(tenant, compile_key)``
pair gets the classic three-state breaker:

* **closed** — normal operation; consecutive faulting/timed-out
  outcomes are counted, successes (``ok`` *or* ``infeasible`` — a
  clean verdict either way) reset the streak;
* **open** — after ``failure_threshold`` consecutive failures; new
  submissions for the key are rejected (:class:`BreakerOpen`) with the
  remaining cooldown as ``retry_after``;
* **half-open** — once ``cooldown_seconds`` elapse, exactly one probe
  submission is let through.  Its success closes the breaker; its
  failure re-opens it for a fresh cooldown.

The probe itself is leased, not trusted: if the worker running it dies
without ever recording an outcome, ``probe_timeout_seconds`` (default:
the cooldown) bounds how long the half-open state may block the key —
after it elapses another submission may re-probe.  Without the
deadline, a crashed probe wedged the breaker half-open forever.

Everything is deterministic given the injected clock — tests drive
state transitions with a fake clock, no sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..obs import get_tracer

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

BreakerKey = Tuple[str, str]          # (tenant, compile_key)


@dataclass
class _Entry:
    state: str = BREAKER_CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0
    probe_in_flight: bool = False
    probe_started: float = 0.0


@dataclass
class CircuitBreaker:
    """Breaker table (serialized by the service's lock, like admission)."""

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0
    # How long a half-open probe may stay unresolved before another
    # submission is allowed to re-probe (a dead prober must not block
    # the key forever).  None = use cooldown_seconds.
    probe_timeout_seconds: Optional[float] = None
    clock: Callable[[], float] = time.monotonic
    _entries: Dict[BreakerKey, _Entry] = field(default_factory=dict)

    @property
    def _probe_timeout(self) -> float:
        if self.probe_timeout_seconds is not None:
            return self.probe_timeout_seconds
        return self.cooldown_seconds

    def _entry(self, key: BreakerKey) -> _Entry:
        return self._entries.setdefault(key, _Entry())

    # ------------------------------------------------------------------
    def state(self, key: BreakerKey) -> str:
        entry = self._entries.get(key)
        if entry is None:
            return BREAKER_CLOSED
        if (
            entry.state == BREAKER_OPEN
            and self.clock() - entry.opened_at >= self.cooldown_seconds
        ):
            return BREAKER_HALF_OPEN
        return entry.state

    def retry_after(self, key: BreakerKey) -> float:
        entry = self._entries.get(key)
        if entry is None or entry.state != BREAKER_OPEN:
            return 0.0
        remaining = self.cooldown_seconds - (self.clock() - entry.opened_at)
        return max(0.0, remaining)

    # ------------------------------------------------------------------
    def allow(self, key: BreakerKey) -> bool:
        """May a new submission for ``key`` proceed right now?

        In half-open state the first caller becomes the probe (True);
        subsequent callers are refused until the probe resolves.
        """
        entry = self._entries.get(key)
        if entry is None or entry.state == BREAKER_CLOSED:
            return True
        now = self.clock()
        if entry.state == BREAKER_OPEN:
            if now - entry.opened_at < self.cooldown_seconds:
                get_tracer().count("serve.breaker_rejections")
                return False
            entry.state = BREAKER_HALF_OPEN
            entry.probe_in_flight = False
        # half-open: admit exactly one probe — but a probe whose worker
        # died without recording an outcome expires, so the key is
        # never blocked forever by a dead prober.
        if entry.probe_in_flight:
            if now - entry.probe_started < self._probe_timeout:
                get_tracer().count("serve.breaker_rejections")
                return False
            get_tracer().count("serve.breaker_probe_expired")
        entry.probe_in_flight = True
        entry.probe_started = now
        get_tracer().count("serve.breaker_probes")
        return True

    # ------------------------------------------------------------------
    def record_success(self, key: BreakerKey) -> None:
        entry = self._entries.get(key)
        if entry is None:
            return
        if entry.state != BREAKER_CLOSED:
            get_tracer().count("serve.breaker_closed")
        self._entries.pop(key, None)     # closed + clean slate

    def record_failure(self, key: BreakerKey) -> None:
        entry = self._entry(key)
        entry.consecutive_failures += 1
        entry.probe_in_flight = False
        tripped = (
            entry.state == BREAKER_HALF_OPEN
            or entry.consecutive_failures >= self.failure_threshold
        )
        if tripped:
            if entry.state != BREAKER_OPEN:
                get_tracer().count("serve.breaker_opened")
            entry.state = BREAKER_OPEN
            entry.opened_at = self.clock()


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerKey",
    "CircuitBreaker",
]
